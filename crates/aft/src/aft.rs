//! The Amulet Firmware Toolchain driver.
//!
//! [`Aft`] ties the four analysis/transformation phases together, exactly as
//! §3 of the paper describes them:
//!
//! 1. **Analysis** — reject unsupported language features, enumerate memory
//!    accesses and OS API calls per app, build the call graph and estimate
//!    the maximum stack depth ([`crate::sema`]).
//! 2. **Instrumentation** — generate code with the isolation checks required
//!    by the selected method, using placeholder bound values
//!    ([`crate::codegen`]).
//! 3. **Sections** — mark each app's code and data for placement in high
//!    FRAM and prepare the per-app stack arrangement ([`crate::link`]).
//! 4. **Layout & patch** — compute the final memory map, patch the bound
//!    placeholders with each app's real `C_i`/`D_i`/`T_i`, and produce the
//!    firmware image plus the MPU register values the OS will install at
//!    every context switch ([`crate::link`]).

use crate::api::ApiSpec;
use crate::codegen::generate;
use crate::error::{AftResult, CompileError};
use crate::link::{link, AppUnit, LinkOutput};
use crate::parser::parse;
use crate::sema::analyze;
use amulet_core::checks::CheckPolicy;
use amulet_core::layout::{MemoryMap, OsImageSpec, PlatformSpec};
use amulet_core::method::IsolationMethod;
use amulet_core::platform::Platform;
use amulet_mcu::firmware::Firmware;
use std::collections::BTreeMap;
use std::fmt;

/// One application's source code, as submitted to the toolchain.
#[derive(Clone, Debug)]
pub struct AppSource {
    /// Application name (also the firmware symbol prefix).
    pub name: String,
    /// AmuletC source text.
    pub source: String,
    /// Names of functions the OS may call as event handlers.
    pub handlers: Vec<String>,
    /// Optional developer-provided stack size in bytes (needed for
    /// recursive applications).
    pub stack_override: Option<u32>,
}

impl AppSource {
    /// Creates an application from a name, source text, and handler list.
    pub fn new(name: impl Into<String>, source: impl Into<String>, handlers: &[&str]) -> Self {
        AppSource {
            name: name.into(),
            source: source.into(),
            handlers: handlers.iter().map(|s| s.to_string()).collect(),
            stack_override: None,
        }
    }

    /// Sets a developer-provided stack size.
    pub fn with_stack(mut self, bytes: u32) -> Self {
        self.stack_override = Some(bytes);
        self
    }
}

/// Per-application build report entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppReport {
    /// Application name.
    pub name: String,
    /// Final code size in bytes.
    pub code_bytes: u32,
    /// Final data size in bytes.
    pub data_bytes: u32,
    /// Reserved stack in bytes.
    pub stack_bytes: u32,
    /// Static count of pointer dereferences in the source.
    pub pointer_derefs: u32,
    /// Static count of array accesses in the source.
    pub array_accesses: u32,
    /// Static count of OS API call sites.
    pub api_calls: u32,
    /// Whether the app uses pointers.
    pub uses_pointers: bool,
    /// Whether the app is recursive.
    pub uses_recursion: bool,
    /// The AFT's maximum-stack estimate, if computable.
    pub max_stack_estimate: Option<u32>,
    /// Compiler-inserted checks by kind.
    pub inserted_checks: BTreeMap<String, u32>,
    /// Every inserted check sequence at its final absolute address (the
    /// static verifier's elision input).
    pub check_sites: Vec<amulet_core::checks::CheckSite>,
}

/// The whole build's report (ARP-view consumes this).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BuildReport {
    /// The isolation method the firmware was built for.
    pub method: IsolationMethod,
    /// One entry per application.
    pub apps: Vec<AppReport>,
}

impl fmt::Display for BuildReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "AFT build report ({} method)", self.method)?;
        writeln!(
            f,
            "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "app", "code B", "data B", "stack B", "ptr-drf", "arr-acc", "api"
        )?;
        for a in &self.apps {
            writeln!(
                f,
                "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                a.name,
                a.code_bytes,
                a.data_bytes,
                a.stack_bytes,
                a.pointer_derefs,
                a.array_accesses,
                a.api_calls
            )?;
        }
        Ok(())
    }
}

/// Output of a successful build.
#[derive(Clone, Debug)]
pub struct BuildOutput {
    /// The firmware image to load onto the device.
    pub firmware: Firmware,
    /// The final memory map.
    pub memory_map: MemoryMap,
    /// The build report.
    pub report: BuildReport,
}

/// The toolchain driver.
#[derive(Clone, Debug)]
pub struct Aft {
    method: IsolationMethod,
    platform: PlatformSpec,
    os_spec: OsImageSpec,
    api: ApiSpec,
    apps: Vec<AppSource>,
}

impl Aft {
    /// Creates a toolchain targeting the MSP430FR5969 with the default OS
    /// image size.
    pub fn new(method: IsolationMethod) -> Self {
        Self::for_platform(method, &amulet_core::platform::Msp430Fr5969)
    }

    /// Creates a toolchain targeting any [`Platform`] (a profile type such
    /// as [`amulet_core::platform::Msp430Fr5994`], or a `PlatformSpec`).
    /// The inserted-check policy follows the platform's MPU model: hardware
    /// that can bound apps from below needs no data-pointer lower-bound
    /// checks.
    pub fn for_platform(method: IsolationMethod, platform: &impl Platform) -> Self {
        Aft {
            method,
            platform: platform.spec(),
            os_spec: OsImageSpec::default(),
            api: ApiSpec::amulet(),
            apps: Vec::new(),
        }
    }

    /// Overrides the target platform (used by the advanced-MPU ablation).
    pub fn with_platform(mut self, platform: PlatformSpec) -> Self {
        self.platform = platform;
        self
    }

    /// Overrides the OS image sizes.
    pub fn with_os_spec(mut self, os_spec: OsImageSpec) -> Self {
        self.os_spec = os_spec;
        self
    }

    /// Adds an application to the build.
    pub fn add_app(mut self, app: AppSource) -> Self {
        self.apps.push(app);
        self
    }

    /// The isolation method this toolchain instance targets.
    pub fn method(&self) -> IsolationMethod {
        self.method
    }

    /// The platform this toolchain instance targets.
    pub fn platform(&self) -> &PlatformSpec {
        &self.platform
    }

    /// Runs all four phases and produces the firmware image.
    pub fn build(&self) -> AftResult<BuildOutput> {
        let mut units = Vec::with_capacity(self.apps.len());
        let mut reports = Vec::with_capacity(self.apps.len());

        for app in &self.apps {
            // Phase 1: parse + analyse.
            let program = parse(&app.source).map_err(|error| CompileError::Parse {
                app: app.name.clone(),
                error,
            })?;
            let analysis = analyze(&app.name, &program, &self.api, self.method)?;

            // The Feature Limited front end additionally rejects recursion:
            // without pointers the only stack hazard is unbounded call depth,
            // and the AFT cannot size the (shared) stack for it.
            if self.method == IsolationMethod::FeatureLimited && analysis.uses_recursion {
                return Err(CompileError::UnsupportedFeature {
                    app: app.name.clone(),
                    feature: "recursion".into(),
                    loc: crate::token::Loc { line: 0, col: 0 },
                });
            }

            // Phase 2: instrumented code generation, with the check policy
            // the method requires on this platform's MPU.
            let policy = CheckPolicy::for_method_on(self.method, &self.platform.mpu);
            let code = generate(
                &app.name,
                &program,
                &analysis,
                &self.api,
                self.method,
                policy,
            )?;

            units.push(AppUnit {
                code,
                handlers: app.handlers.clone(),
                stack_override: app.stack_override,
            });
        }

        // Phases 3 + 4: sections, layout, patching, emission.
        let LinkOutput {
            firmware,
            memory_map,
            apps: link_infos,
        } = link(self.method, &self.platform, &self.os_spec, &units)?;

        for (unit, info) in units.iter().zip(&link_infos) {
            let a = &unit.code.analysis;
            reports.push(AppReport {
                name: info.name.clone(),
                code_bytes: info.code_bytes,
                data_bytes: info.data_bytes,
                stack_bytes: info.stack_bytes,
                pointer_derefs: a.total_pointer_derefs,
                array_accesses: a.total_array_accesses,
                api_calls: a.total_api_calls,
                uses_pointers: a.uses_pointers,
                uses_recursion: a.uses_recursion,
                max_stack_estimate: a.max_stack_bytes,
                inserted_checks: info.inserted_checks.clone(),
                check_sites: info.check_sites.clone(),
            });
        }

        Ok(BuildOutput {
            firmware,
            memory_map,
            report: BuildReport {
                method: self.method,
                apps: reports,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PEDOMETER_LIKE: &str = r#"
        int steps = 0;
        int window[8];
        int threshold = 120;

        int detect(int *samples, int n) {
            int count = 0;
            for (int i = 0; i < n; i++) {
                if (samples[i] > threshold) { count++; }
            }
            return count;
        }

        void on_accel(void) {
            for (int i = 0; i < 8; i++) {
                window[i] = amulet_get_accel(0);
            }
            steps += detect(&window[0], 8);
        }

        void main(void) {
            amulet_subscribe(1);
        }
    "#;

    #[test]
    fn builds_firmware_for_every_pointer_capable_method() {
        for method in [
            IsolationMethod::NoIsolation,
            IsolationMethod::Mpu,
            IsolationMethod::SoftwareOnly,
        ] {
            let out = Aft::new(method)
                .add_app(AppSource::new(
                    "Pedometer",
                    PEDOMETER_LIKE,
                    &["main", "on_accel"],
                ))
                .build()
                .unwrap_or_else(|e| panic!("{method}: {e}"));
            assert_eq!(out.firmware.method, method);
            assert_eq!(out.firmware.apps.len(), 1);
            assert!(out.firmware.instruction_count() > 20);
            assert_eq!(out.report.apps[0].api_calls, 2);
        }
    }

    #[test]
    fn feature_limited_rejects_the_pointer_version_but_accepts_an_array_port() {
        let err = Aft::new(IsolationMethod::FeatureLimited)
            .add_app(AppSource::new("Pedometer", PEDOMETER_LIKE, &["main"]))
            .build()
            .unwrap_err();
        assert!(matches!(err, CompileError::UnsupportedFeature { .. }));

        let ported = r#"
            int steps = 0;
            int window[8];
            void on_accel(void) {
                int count = 0;
                for (int i = 0; i < 8; i++) {
                    window[i] = amulet_get_accel(0);
                    if (window[i] > 120) { count++; }
                }
                steps += count;
            }
            void main(void) { amulet_subscribe(1); }
        "#;
        let out = Aft::new(IsolationMethod::FeatureLimited)
            .add_app(AppSource::new("Pedometer", ported, &["main", "on_accel"]))
            .build()
            .unwrap();
        assert!(out.report.apps[0]
            .inserted_checks
            .contains_key("array bounds"));
    }

    #[test]
    fn feature_limited_rejects_recursion() {
        let src =
            "int f(int n) { if (n < 1) return 0; return f(n - 1); } void main(void) { f(3); }";
        let err = Aft::new(IsolationMethod::FeatureLimited)
            .add_app(AppSource::new("Rec", src, &["main"]))
            .build()
            .unwrap_err();
        assert!(matches!(err, CompileError::UnsupportedFeature { .. }));
        // The MPU method accepts it (with the default recursive stack).
        assert!(Aft::new(IsolationMethod::Mpu)
            .add_app(AppSource::new("Rec", src, &["main"]))
            .build()
            .is_ok());
    }

    #[test]
    fn multi_app_builds_isolate_each_app_in_its_own_region() {
        let other = r#"
            int ticks = 0;
            void tick(void) { ticks++; amulet_display_value(ticks); }
            void main(void) { amulet_set_timer(1000); }
        "#;
        let out = Aft::new(IsolationMethod::Mpu)
            .add_app(AppSource::new(
                "Pedometer",
                PEDOMETER_LIKE,
                &["main", "on_accel"],
            ))
            .add_app(AppSource::new("Clock", other, &["main", "tick"]))
            .build()
            .unwrap();
        assert_eq!(out.firmware.apps.len(), 2);
        let a = &out.firmware.apps[0].placement;
        let b = &out.firmware.apps[1].placement;
        assert!(!a.footprint().overlaps(&b.footprint()));
        assert!(a.upper_bound() <= b.code_lower_bound());
    }

    #[test]
    fn parse_errors_name_the_app() {
        let err = Aft::new(IsolationMethod::Mpu)
            .add_app(AppSource::new("Broken", "int main( {", &["main"]))
            .build()
            .unwrap_err();
        match err {
            CompileError::Parse { app, .. } => assert_eq!(app, "Broken"),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn report_renders_a_table() {
        let out = Aft::new(IsolationMethod::SoftwareOnly)
            .add_app(AppSource::new(
                "Pedometer",
                PEDOMETER_LIKE,
                &["main", "on_accel"],
            ))
            .build()
            .unwrap();
        let text = out.report.to_string();
        assert!(text.contains("Pedometer"));
        assert!(text.contains("Software Only"));
    }
}
