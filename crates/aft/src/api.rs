//! The approved AmuletOS system-call API.
//!
//! At compile time the AFT "verifies that the app only calls approved API
//! functions" (§3).  This module is the toolchain's view of that API: the
//! approved function names, their system-call numbers, arities and whether
//! they take pointer arguments (pointer arguments must be validated by the
//! OS on entry).  `amulet-os` implements the corresponding services against
//! the same numbers.

use crate::types::Type;

/// One approved OS API function.
#[derive(Clone, Debug, PartialEq)]
pub struct ApiFunction {
    /// C-visible name.
    pub name: &'static str,
    /// System-call number encoded in the generated `sys` instruction.
    pub num: u16,
    /// Parameter types (at most two; AmuletOS marshals them in registers).
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
    /// Rough cycle cost of the service body itself (excluding the context
    /// switch), used by the OS model.
    pub service_cycles: u64,
}

impl ApiFunction {
    /// Whether any parameter is a pointer the OS must validate.
    pub fn has_pointer_args(&self) -> bool {
        self.params.iter().any(|t| matches!(t, Type::Ptr(_)))
    }

    /// Number of pointer parameters.
    pub fn pointer_arg_count(&self) -> u32 {
        self.params
            .iter()
            .filter(|t| matches!(t, Type::Ptr(_)))
            .count() as u32
    }
}

/// The approved API surface.
#[derive(Clone, Debug, Default)]
pub struct ApiSpec {
    functions: Vec<ApiFunction>,
}

/// System-call numbers (shared with `amulet-os`).
pub mod sysno {
    /// Yield back to the scheduler.
    pub const YIELD: u16 = 0;
    /// Read the wall-clock time in ticks.
    pub const GET_TIME: u16 = 1;
    /// Read a raw sensor channel.
    pub const READ_SENSOR: u16 = 2;
    /// Log a value to the system log.
    pub const LOG_VALUE: u16 = 3;
    /// Arm an application timer.
    pub const SET_TIMER: u16 = 4;
    /// Read the battery level (percent).
    pub const GET_BATTERY: u16 = 5;
    /// Read the current heart-rate estimate.
    pub const GET_HEART_RATE: u16 = 6;
    /// Read one accelerometer axis.
    pub const GET_ACCEL: u16 = 7;
    /// Read the skin temperature sensor.
    pub const GET_TEMPERATURE: u16 = 8;
    /// Draw a value on the display.
    pub const DISPLAY_VALUE: u16 = 9;
    /// Copy a buffer into the system log (pointer argument).
    pub const LOG_BUFFER: u16 = 10;
    /// Read ambient light (used by the Sun / Rest apps).
    pub const GET_LIGHT: u16 = 11;
    /// Subscribe to an event stream.
    pub const SUBSCRIBE: u16 = 12;
}

impl ApiSpec {
    /// The standard AmuletOS API used by the applications in this
    /// reproduction.
    pub fn amulet() -> Self {
        use sysno::*;
        let f = |name, num, params: Vec<Type>, ret, service_cycles| ApiFunction {
            name,
            num,
            params,
            ret,
            service_cycles,
        };
        ApiSpec {
            functions: vec![
                f("amulet_yield", YIELD, vec![], Type::Void, 8),
                f("amulet_get_time", GET_TIME, vec![], Type::Uint, 12),
                f(
                    "amulet_read_sensor",
                    READ_SENSOR,
                    vec![Type::Uint],
                    Type::Int,
                    20,
                ),
                f(
                    "amulet_log_value",
                    LOG_VALUE,
                    vec![Type::Int],
                    Type::Void,
                    16,
                ),
                f(
                    "amulet_set_timer",
                    SET_TIMER,
                    vec![Type::Uint],
                    Type::Void,
                    14,
                ),
                f("amulet_get_battery", GET_BATTERY, vec![], Type::Uint, 10),
                f(
                    "amulet_get_heart_rate",
                    GET_HEART_RATE,
                    vec![],
                    Type::Uint,
                    18,
                ),
                f(
                    "amulet_get_accel",
                    GET_ACCEL,
                    vec![Type::Int],
                    Type::Int,
                    18,
                ),
                f(
                    "amulet_get_temperature",
                    GET_TEMPERATURE,
                    vec![],
                    Type::Int,
                    16,
                ),
                f(
                    "amulet_display_value",
                    DISPLAY_VALUE,
                    vec![Type::Int],
                    Type::Void,
                    24,
                ),
                f(
                    "amulet_log_buffer",
                    LOG_BUFFER,
                    vec![Type::Ptr(Box::new(Type::Int)), Type::Uint],
                    Type::Void,
                    30,
                ),
                f("amulet_get_light", GET_LIGHT, vec![], Type::Uint, 14),
                f(
                    "amulet_subscribe",
                    SUBSCRIBE,
                    vec![Type::Uint],
                    Type::Void,
                    12,
                ),
            ],
        }
    }

    /// Looks up an API function by its C-visible name.
    pub fn by_name(&self, name: &str) -> Option<&ApiFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up an API function by system-call number.
    pub fn by_num(&self, num: u16) -> Option<&ApiFunction> {
        self.functions.iter().find(|f| f.num == num)
    }

    /// All approved functions.
    pub fn functions(&self) -> &[ApiFunction] {
        &self.functions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_numbers_are_unique() {
        let api = ApiSpec::amulet();
        let mut nums: Vec<u16> = api.functions().iter().map(|f| f.num).collect();
        nums.sort_unstable();
        nums.dedup();
        assert_eq!(nums.len(), api.functions().len());
    }

    #[test]
    fn lookup_by_name_and_number_agree() {
        let api = ApiSpec::amulet();
        for f in api.functions() {
            assert_eq!(api.by_name(f.name).unwrap().num, f.num);
            assert_eq!(api.by_num(f.num).unwrap().name, f.name);
        }
        assert!(api.by_name("not_an_api").is_none());
    }

    #[test]
    fn pointer_argument_classification() {
        let api = ApiSpec::amulet();
        assert!(api.by_name("amulet_log_buffer").unwrap().has_pointer_args());
        assert_eq!(
            api.by_name("amulet_log_buffer")
                .unwrap()
                .pointer_arg_count(),
            1
        );
        assert!(!api.by_name("amulet_get_time").unwrap().has_pointer_args());
    }

    #[test]
    fn arities_fit_the_two_register_convention() {
        for f in ApiSpec::amulet().functions() {
            assert!(f.params.len() <= 2, "{} has too many parameters", f.name);
        }
    }
}
