//! The AmuletC abstract syntax tree.

use crate::token::Loc;
use crate::types::Type;

/// A whole translation unit (one application's source).
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Global variable declarations, in source order.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions, in source order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A global variable declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Initialiser values (a single value for scalars, one per element for
    /// arrays; shorter initialiser lists are zero-extended as in C).
    pub init: Vec<i64>,
    /// Source location.
    pub loc: Loc,
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// Body.
    pub body: Block,
    /// Source location of the definition.
    pub loc: Loc,
}

/// A brace-delimited block.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// A local variable declaration, possibly with an initialiser.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initialiser expression.
        init: Option<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// An expression evaluated for its side effects.
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_block: Block,
        /// Optional else-branch.
        else_block: Option<Block>,
    },
    /// `while (cond) { .. }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `for (init; cond; step) { .. }`.
    For {
        /// Optional initialiser (declaration or expression statement).
        init: Option<Box<Stmt>>,
        /// Optional condition (defaults to true).
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `return expr;` / `return;`.
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// `break;`.
    Break(Loc),
    /// `continue;`.
    Continue(Loc),
    /// A nested block.
    Block(Block),
    /// `goto label;` — parsed so the feature analysis can reject it with a
    /// useful diagnostic, never compiled.
    Goto {
        /// Target label name.
        label: String,
        /// Source location.
        loc: Loc,
    },
    /// `asm("...");` — parsed so the feature analysis can reject it, never
    /// compiled.
    Asm {
        /// The assembly text.
        text: String,
        /// Source location.
        loc: Loc,
    },
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`).
    LogicalNot,
    /// Bitwise complement (`~`).
    BitNot,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    LogicalAnd,
    /// `||` (short-circuit)
    LogicalOr,
}

impl BinOp {
    /// Whether the operator produces a boolean (0/1) result.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer (or character) literal.
    IntLit {
        /// The value.
        value: i64,
        /// Source location.
        loc: Loc,
    },
    /// A variable or function reference.
    Ident {
        /// The name.
        name: String,
        /// Source location.
        loc: Loc,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Assignment (`=`, `+=`, `-=`), and the `++`/`--` sugar.
    Assign {
        /// Assignment target (identifier, array element or dereference).
        target: Box<Expr>,
        /// Value expression.
        value: Box<Expr>,
        /// Compound operator, when the assignment is `+=`/`-=` style.
        op: Option<BinOp>,
        /// Source location.
        loc: Loc,
    },
    /// Array indexing (`base[index]`).
    Index {
        /// Array or pointer expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Function call (direct or through a function pointer).
    Call {
        /// Callee expression (an identifier for direct calls).
        callee: Box<Expr>,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Pointer dereference (`*ptr`).
    Deref {
        /// Pointer expression.
        expr: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Address-of (`&lvalue`).
    AddrOf {
        /// Operand (identifier, array element or dereference).
        expr: Box<Expr>,
        /// Source location.
        loc: Loc,
    },
}

impl Expr {
    /// The source location of the expression.
    pub fn loc(&self) -> Loc {
        match self {
            Expr::IntLit { loc, .. }
            | Expr::Ident { loc, .. }
            | Expr::Unary { loc, .. }
            | Expr::Binary { loc, .. }
            | Expr::Assign { loc, .. }
            | Expr::Index { loc, .. }
            | Expr::Call { loc, .. }
            | Expr::Deref { loc, .. }
            | Expr::AddrOf { loc, .. } => *loc,
        }
    }

    /// Whether the expression syntactically uses pointers (dereference,
    /// address-of, or a call through something other than a plain name).
    pub fn uses_pointer_syntax(&self) -> bool {
        match self {
            Expr::Deref { .. } | Expr::AddrOf { .. } => true,
            Expr::IntLit { .. } | Expr::Ident { .. } => false,
            Expr::Unary { expr, .. } => expr.uses_pointer_syntax(),
            Expr::Binary { lhs, rhs, .. } => lhs.uses_pointer_syntax() || rhs.uses_pointer_syntax(),
            Expr::Assign { target, value, .. } => {
                target.uses_pointer_syntax() || value.uses_pointer_syntax()
            }
            Expr::Index { base, index, .. } => {
                base.uses_pointer_syntax() || index.uses_pointer_syntax()
            }
            Expr::Call { callee, args, .. } => {
                (!matches!(**callee, Expr::Ident { .. }))
                    || args.iter().any(|a| a.uses_pointer_syntax())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(name: &str) -> Expr {
        Expr::Ident {
            name: name.into(),
            loc: Loc::default(),
        }
    }

    #[test]
    fn pointer_syntax_detection() {
        let deref = Expr::Deref {
            expr: Box::new(ident("p")),
            loc: Loc::default(),
        };
        assert!(deref.uses_pointer_syntax());
        assert!(!ident("x").uses_pointer_syntax());
        let call = Expr::Call {
            callee: Box::new(ident("f")),
            args: vec![deref.clone()],
            loc: Loc::default(),
        };
        assert!(call.uses_pointer_syntax(), "pointer argument counts");
        let direct = Expr::Call {
            callee: Box::new(ident("f")),
            args: vec![],
            loc: Loc::default(),
        };
        assert!(!direct.uses_pointer_syntax());
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Ne.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::LogicalAnd.is_comparison());
    }

    #[test]
    fn program_function_lookup() {
        let p = Program {
            globals: vec![],
            functions: vec![Function {
                name: "main".into(),
                ret: Type::Void,
                params: vec![],
                body: Block::default(),
                loc: Loc::default(),
            }],
        };
        assert!(p.function("main").is_some());
        assert!(p.function("other").is_none());
    }
}
