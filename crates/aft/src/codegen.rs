//! Phase 2 of the AFT: code generation with isolation checks.
//!
//! Each application function is compiled to the simulator ISA.  Wherever the
//! selected isolation method's [`CheckPolicy`] requires it, the generator
//! injects the paper's check sequences — a compare against a (placeholder)
//! bound constant followed by a conditional branch to a `FAULT` stub.  The
//! placeholders are recorded as [`Reloc`]s and patched by the linker in
//! phase 4 once the final memory layout (and therefore every app's `C_i`,
//! `D_i` and `T_i`) is known.

use crate::api::ApiSpec;
use crate::ast::{BinOp, Block, Expr, Function, Program, Stmt, UnOp};
use crate::error::{AftResult, CompileError};
use crate::sema::Analysis;
use crate::token::Loc;
use crate::types::Type;
use amulet_core::checks::{CheckKind, CheckPolicy};
use amulet_core::fault::FaultClass;
use amulet_core::method::IsolationMethod;
use amulet_mcu::cpu::HANDLER_RETURN;
use amulet_mcu::isa::{AluOp, Cond, Instr, Reg, UnaryOp, Width};
use std::collections::{BTreeMap, HashMap};

/// What a placeholder in an emitted instruction must be patched to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelocKind {
    /// The absolute address of an application function.
    FuncAddr(String),
    /// The absolute address of an application global plus a byte offset
    /// (the offset is used for array length descriptors).
    GlobalAddr {
        /// Global variable name.
        name: String,
        /// Extra byte offset.
        add: u32,
    },
    /// A local label inside the same function (jump targets).
    Label(usize),
    /// The app's data/stack lower bound `D_i`.
    BoundDataLower,
    /// The app's upper bound `T_i`.
    BoundDataUpper,
    /// The app's code lower bound `C_i`.
    BoundCodeLower,
    /// The app's code upper bound (`D_i`).
    BoundCodeUpper,
}

/// A patch the linker must apply to one emitted instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reloc {
    /// Index of the instruction within the function's instruction list.
    pub index: usize,
    /// What to patch it with.
    pub kind: RelocKind,
}

/// One inserted check sequence, located by instruction index within its
/// function.  The linker rebases these into the absolute
/// [`amulet_core::checks::CheckSite`]s the static verifier consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalCheckSite {
    /// Which check the sequence implements.
    pub kind: CheckKind,
    /// Index of the sequence's first instruction in
    /// [`FunctionCode::instrs`].
    pub index: usize,
    /// Number of instructions in the sequence.
    pub len: u32,
}

/// The compiled form of one function, before linking.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionCode {
    /// Function name.
    pub name: String,
    /// Emitted instructions (some operands are placeholders).
    pub instrs: Vec<Instr>,
    /// Pending relocations.
    pub relocs: Vec<Reloc>,
    /// Label table: label id → instruction index.
    pub labels: Vec<Option<usize>>,
    /// Count of compiler-inserted check sequences, by description (for the
    /// build report).
    pub inserted_checks: BTreeMap<String, u32>,
    /// Every inserted check sequence, in emission order.
    pub check_sites: Vec<LocalCheckSite>,
}

impl FunctionCode {
    /// Total encoded size in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.instrs.iter().map(|i| i.size_bytes()).sum()
    }

    /// Byte offset of the instruction at `index` from the function start.
    pub fn offset_of(&self, index: usize) -> u32 {
        self.instrs[..index].iter().map(|i| i.size_bytes()).sum()
    }
}

/// The compiled (but not yet linked) form of one application.
#[derive(Clone, Debug, PartialEq)]
pub struct AppCode {
    /// Application name.
    pub name: String,
    /// Compiled functions in source order.
    pub functions: Vec<FunctionCode>,
    /// Byte size of the app's global data area (elements plus array length
    /// descriptors), before stack is added.
    pub data_bytes: u32,
    /// Initial contents of the data area (little-endian bytes).
    pub data_image: Vec<u8>,
    /// The analysis that phase 1 produced for this app.
    pub analysis: Analysis,
}

impl AppCode {
    /// Total code size in bytes.
    pub fn code_bytes(&self) -> u32 {
        self.functions.iter().map(|f| f.size_bytes()).sum()
    }

    /// Looks up a compiled function.
    pub fn function(&self, name: &str) -> Option<&FunctionCode> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Compiles every function of an application, inserting the run-time
/// checks `policy` requires (derive it with
/// [`CheckPolicy::for_method_on`] so it reflects both the isolation method
/// and the target platform's MPU capabilities).
pub fn generate(
    app: &str,
    program: &Program,
    analysis: &Analysis,
    api: &ApiSpec,
    method: IsolationMethod,
    policy: CheckPolicy,
) -> AftResult<AppCode> {
    let mut functions = Vec::new();
    for f in &program.functions {
        let code = FnCodegen::new(app, f, analysis, api, method, policy).generate()?;
        functions.push(code);
    }

    // Build the initial data image: globals in offset order, with array
    // length descriptors following each array's elements.
    let mut data_image = vec![0u8; analysis.globals_bytes as usize];
    for g in &program.globals {
        let (ty, offset) = &analysis.global_offsets[&g.name];
        match ty {
            Type::Array(elem, len) => {
                let esz = elem.size_bytes() as usize;
                for (i, v) in g.init.iter().enumerate().take(*len as usize) {
                    let base = *offset as usize + i * esz;
                    data_image[base] = (*v & 0xFF) as u8;
                    if esz == 2 {
                        data_image[base + 1] = ((*v >> 8) & 0xFF) as u8;
                    }
                }
                // Length descriptor word right after the elements.
                let desc = *offset as usize + ty.size_bytes() as usize;
                data_image[desc] = (*len & 0xFF) as u8;
                data_image[desc + 1] = ((*len >> 8) & 0xFF) as u8;
            }
            _ => {
                if let Some(v) = g.init.first() {
                    let base = *offset as usize;
                    data_image[base] = (*v & 0xFF) as u8;
                    data_image[base + 1] = ((*v >> 8) & 0xFF) as u8;
                }
            }
        }
    }

    Ok(AppCode {
        name: app.to_string(),
        functions,
        data_bytes: analysis.globals_bytes,
        data_image,
        analysis: analysis.clone(),
    })
}

/// A local variable or parameter slot.
#[derive(Clone, Debug)]
struct LocalVar {
    ty: Type,
    /// Byte offset relative to the frame pointer (positive for parameters,
    /// negative for locals).
    offset: i16,
    /// For local arrays: FP-relative offset of the hidden length word.
    desc_offset: Option<i16>,
}

struct FnCodegen<'a> {
    app: String,
    func: &'a Function,
    analysis: &'a Analysis,
    api: &'a ApiSpec,
    /// Kept for diagnostics and future method-specific lowering decisions.
    #[allow(dead_code)]
    method: IsolationMethod,
    policy: CheckPolicy,
    instrs: Vec<Instr>,
    relocs: Vec<Reloc>,
    labels: Vec<Option<usize>>,
    scopes: Vec<HashMap<String, LocalVar>>,
    next_local: i16,
    max_locals: i16,
    loop_stack: Vec<(usize, usize)>,
    fault_labels: HashMap<FaultClass, usize>,
    ret_label: usize,
    inserted_checks: BTreeMap<String, u32>,
    check_sites: Vec<LocalCheckSite>,
}

impl<'a> FnCodegen<'a> {
    fn new(
        app: &str,
        func: &'a Function,
        analysis: &'a Analysis,
        api: &'a ApiSpec,
        method: IsolationMethod,
        policy: CheckPolicy,
    ) -> Self {
        FnCodegen {
            app: app.to_string(),
            func,
            analysis,
            api,
            method,
            policy,
            instrs: Vec::new(),
            relocs: Vec::new(),
            labels: vec![None],
            scopes: Vec::new(),
            next_local: 0,
            max_locals: 0,
            loop_stack: Vec::new(),
            fault_labels: HashMap::new(),
            ret_label: 0,
            inserted_checks: BTreeMap::new(),
            check_sites: Vec::new(),
        }
    }

    // ---- low-level emission helpers -------------------------------------

    fn emit(&mut self, i: Instr) -> usize {
        self.instrs.push(i);
        self.instrs.len() - 1
    }

    fn new_label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    fn bind_label(&mut self, label: usize) {
        self.labels[label] = Some(self.instrs.len());
    }

    fn emit_jmp(&mut self, label: usize) {
        let idx = self.emit(Instr::Jmp { target: 0 });
        self.relocs.push(Reloc {
            index: idx,
            kind: RelocKind::Label(label),
        });
    }

    fn emit_jcc(&mut self, cond: Cond, label: usize) {
        let idx = self.emit(Instr::Jcc { cond, target: 0 });
        self.relocs.push(Reloc {
            index: idx,
            kind: RelocKind::Label(label),
        });
    }

    fn emit_reloc(&mut self, i: Instr, kind: RelocKind) -> usize {
        let idx = self.emit(i);
        self.relocs.push(Reloc { index: idx, kind });
        idx
    }

    fn note_check(&mut self, what: &str) {
        *self.inserted_checks.entry(what.to_string()).or_insert(0) += 1;
    }

    /// Records that the instructions from `start` to the current end of the
    /// stream form one `kind` check sequence.
    fn note_site(&mut self, kind: CheckKind, start: usize) {
        self.check_sites.push(LocalCheckSite {
            kind,
            index: start,
            len: (self.instrs.len() - start) as u32,
        });
    }

    fn fault_label(&mut self, class: FaultClass) -> usize {
        if let Some(&l) = self.fault_labels.get(&class) {
            return l;
        }
        let l = self.new_label();
        self.fault_labels.insert(class, l);
        l
    }

    fn internal(&self, message: impl Into<String>) -> CompileError {
        CompileError::Internal {
            message: format!("[{}::{}] {}", self.app, self.func.name, message.into()),
        }
    }

    // ---- scopes ----------------------------------------------------------

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn declare_local(&mut self, name: &str, ty: Type) -> LocalVar {
        let desc_offset = if matches!(ty, Type::Array(..)) {
            self.next_local -= 2;
            Some(self.next_local)
        } else {
            None
        };
        self.next_local -= ty.stack_size_bytes() as i16;
        let var = LocalVar {
            ty,
            offset: self.next_local,
            desc_offset,
        };
        self.max_locals = self.max_locals.min(self.next_local);
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), var.clone());
        var
    }

    fn lookup_local(&self, name: &str) -> Option<LocalVar> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn lookup_global(&self, name: &str) -> Option<(Type, u32)> {
        self.analysis.global_offsets.get(name).cloned()
    }

    // ---- type reconstruction (sema has already validated) ---------------

    fn type_of(&self, e: &Expr) -> Type {
        match e {
            Expr::IntLit { .. } => Type::Int,
            Expr::Ident { name, .. } => {
                if let Some(v) = self.lookup_local(name) {
                    v.ty
                } else if let Some((t, _)) = self.lookup_global(name) {
                    t
                } else {
                    Type::FnPtr
                }
            }
            Expr::Unary { .. } => Type::Int,
            Expr::Binary { op, lhs, rhs, .. } => {
                if op.is_comparison() {
                    Type::Int
                } else {
                    let lt = self.type_of(lhs);
                    let rt = self.type_of(rhs);
                    if matches!(lt, Type::Ptr(_)) {
                        lt
                    } else if matches!(rt, Type::Ptr(_)) {
                        rt
                    } else if lt.is_unsigned() || rt.is_unsigned() {
                        Type::Uint
                    } else {
                        Type::Int
                    }
                }
            }
            Expr::Assign { target, .. } => self.type_of(target),
            Expr::Index { base, .. } => self.type_of(base).pointee().cloned().unwrap_or(Type::Int),
            Expr::Call { callee, .. } => {
                if let Expr::Ident { name, .. } = callee.as_ref() {
                    if let Some(sig) = self.analysis.signatures.get(name) {
                        return sig.ret.clone();
                    }
                    if let Some(api) = self.api.by_name(name) {
                        return api.ret.clone();
                    }
                }
                Type::Int
            }
            Expr::Deref { expr, .. } => self.type_of(expr).pointee().cloned().unwrap_or(Type::Int),
            Expr::AddrOf { expr, .. } => Type::Ptr(Box::new(self.type_of(expr))),
        }
    }

    fn width_of(ty: &Type) -> Width {
        if ty.access_width_bytes() == 1 {
            Width::Byte
        } else {
            Width::Word
        }
    }

    // ---- check insertion --------------------------------------------------

    /// Emits the data-pointer checks required by the policy against the
    /// address in `R14`.
    fn emit_data_pointer_checks(&mut self) {
        if self.policy.data_pointer_lower {
            let fault = self.fault_label(FaultClass::DataPointerLowerBound);
            let start = self.instrs.len();
            self.emit_reloc(
                Instr::CmpImm {
                    a: Reg::R14,
                    imm: 0,
                },
                RelocKind::BoundDataLower,
            );
            self.emit_jcc(Cond::Lo, fault);
            self.note_site(CheckKind::DataPointerLower, start);
            self.note_check("data pointer lower bound");
        }
        if self.policy.data_pointer_upper {
            let fault = self.fault_label(FaultClass::DataPointerUpperBound);
            let start = self.instrs.len();
            self.emit_reloc(
                Instr::CmpImm {
                    a: Reg::R14,
                    imm: 0,
                },
                RelocKind::BoundDataUpper,
            );
            self.emit_jcc(Cond::Hs, fault);
            self.note_site(CheckKind::DataPointerUpper, start);
            self.note_check("data pointer upper bound");
        }
    }

    /// Emits the Feature Limited array-bounds check: the (signed) index in
    /// `R14` is checked against zero, then against the array length loaded
    /// from the array's descriptor into `R13`.
    ///
    /// The Amulet tool treats indexes as the signed C `int`s they are, so it
    /// emits both the negative-index check and the length check and reloads
    /// the length from the array descriptor on every access — which is why
    /// Table 1 reports the Feature Limited memory access as the most
    /// expensive of the four memory models.
    fn emit_array_bounds_check(&mut self, descriptor: DescriptorLoc) {
        if !self.policy.array_bounds {
            return;
        }
        let fault = self.fault_label(FaultClass::ArrayBounds);
        let start = self.instrs.len();
        self.emit(Instr::CmpImm {
            a: Reg::R14,
            imm: 0,
        });
        self.emit_jcc(Cond::Lt, fault);
        match descriptor {
            DescriptorLoc::Global { name, add } => {
                self.emit_reloc(
                    Instr::LoadAbs {
                        dst: Reg::R13,
                        addr: 0,
                        width: Width::Word,
                    },
                    RelocKind::GlobalAddr { name, add },
                );
            }
            DescriptorLoc::Local { offset } => {
                self.emit(Instr::Load {
                    dst: Reg::R13,
                    base: Reg::FP,
                    offset,
                    width: Width::Word,
                });
            }
        }
        self.emit(Instr::Cmp {
            a: Reg::R14,
            b: Reg::R13,
        });
        self.emit_jcc(Cond::Hs, fault);
        self.note_site(CheckKind::ArrayBounds, start);
        self.note_check("array bounds");
    }

    /// Emits the function-pointer checks required by the policy against the
    /// call target in `R14`.
    fn emit_function_pointer_checks(&mut self) {
        if self.policy.function_pointer_lower {
            let fault = self.fault_label(FaultClass::FunctionPointerLowerBound);
            let start = self.instrs.len();
            self.emit_reloc(
                Instr::CmpImm {
                    a: Reg::R14,
                    imm: 0,
                },
                RelocKind::BoundCodeLower,
            );
            self.emit_jcc(Cond::Lo, fault);
            self.note_site(CheckKind::FunctionPointerLower, start);
            self.note_check("function pointer lower bound");
        }
        if self.policy.function_pointer_upper {
            let fault = self.fault_label(FaultClass::FunctionPointerUpperBound);
            let start = self.instrs.len();
            self.emit_reloc(
                Instr::CmpImm {
                    a: Reg::R14,
                    imm: 0,
                },
                RelocKind::BoundCodeUpper,
            );
            self.emit_jcc(Cond::Hs, fault);
            self.note_site(CheckKind::FunctionPointerUpper, start);
            self.note_check("function pointer upper bound");
        }
    }

    /// Emits the return-address check: the return address (now at `0(SP)`,
    /// just before `ret` pops it) must point back into this app's code
    /// region, or be the OS's handler-return sentinel.
    fn emit_return_address_check(&mut self) {
        if !self.policy.return_address {
            return;
        }
        let fault = self.fault_label(FaultClass::ReturnAddress);
        let ok = self.new_label();
        let start = self.instrs.len();
        self.emit(Instr::Load {
            dst: Reg::R3,
            base: Reg::SP,
            offset: 0,
            width: Width::Word,
        });
        // The OS invokes handlers with a sentinel return address; that value
        // is always legitimate.
        self.emit(Instr::CmpImm {
            a: Reg::R3,
            imm: HANDLER_RETURN as u16,
        });
        self.emit_jcc(Cond::Eq, ok);
        self.emit_reloc(
            Instr::CmpImm { a: Reg::R3, imm: 0 },
            RelocKind::BoundCodeLower,
        );
        self.emit_jcc(Cond::Lo, fault);
        self.emit_reloc(
            Instr::CmpImm { a: Reg::R3, imm: 0 },
            RelocKind::BoundCodeUpper,
        );
        self.emit_jcc(Cond::Hs, fault);
        self.bind_label(ok);
        self.note_site(CheckKind::ReturnAddress, start);
        self.note_check("return address");
    }

    // ---- function body ----------------------------------------------------

    fn generate(mut self) -> AftResult<FunctionCode> {
        self.ret_label = self.new_label();
        self.push_scope();

        // Parameters: pushed right-to-left by the caller, so the first
        // parameter sits closest to the frame pointer.
        for (i, p) in self.func.params.iter().enumerate() {
            let var = LocalVar {
                ty: p.ty.clone(),
                offset: 4 + 2 * i as i16,
                desc_offset: None,
            };
            self.scopes.last_mut().unwrap().insert(p.name.clone(), var);
        }

        // Prologue: save the caller's frame pointer and claim the frame.  The
        // frame size is patched after the body is generated (we only then
        // know how many locals were declared).
        self.emit(Instr::Push { src: Reg::FP });
        self.emit(Instr::Mov {
            dst: Reg::FP,
            src: Reg::SP,
        });
        let frame_alloc_idx = self.emit(Instr::AluImm {
            op: AluOp::Sub,
            dst: Reg::SP,
            imm: 0,
        });

        let body = self.func.body.clone();
        self.gen_block(&body)?;

        // Implicit `return 0` / `return` when control falls off the end.
        self.emit(Instr::MovImm {
            dst: Reg::R14,
            imm: 0,
        });
        self.bind_label(self.ret_label);
        // Epilogue: tear down the frame, verify the return address, return.
        self.emit(Instr::Mov {
            dst: Reg::SP,
            src: Reg::FP,
        });
        self.emit(Instr::Pop { dst: Reg::FP });
        self.emit_return_address_check();
        self.emit(Instr::Ret);

        // Fault stubs.
        let mut fault_labels: Vec<(FaultClass, usize)> =
            self.fault_labels.iter().map(|(c, l)| (*c, *l)).collect();
        fault_labels.sort_by_key(|(c, _)| format!("{c:?}"));
        for (class, label) in fault_labels {
            self.bind_label(label);
            let code = FaultClass::ALL
                .iter()
                .position(|c| *c == class)
                .unwrap_or(0) as u16;
            self.emit(Instr::Fault { code });
        }

        // Patch the frame allocation now that the frame size is known.
        let frame_bytes = (-self.max_locals) as u16;
        if frame_bytes == 0 {
            self.instrs[frame_alloc_idx] = Instr::Nop;
        } else {
            self.instrs[frame_alloc_idx] = Instr::AluImm {
                op: AluOp::Sub,
                dst: Reg::SP,
                imm: frame_bytes,
            };
        }

        self.pop_scope();
        Ok(FunctionCode {
            name: self.func.name.clone(),
            instrs: self.instrs,
            relocs: self.relocs,
            labels: self.labels,
            inserted_checks: self.inserted_checks,
            check_sites: self.check_sites,
        })
    }

    fn gen_block(&mut self, block: &Block) -> AftResult<()> {
        self.push_scope();
        let saved_next_local = self.next_local;
        for stmt in &block.stmts {
            self.gen_stmt(stmt)?;
        }
        // Locals of the block go out of scope; their stack slots can be
        // reused by sibling blocks (the frame size keeps the maximum).
        self.next_local = saved_next_local;
        self.pop_scope();
        Ok(())
    }

    fn gen_stmt(&mut self, stmt: &Stmt) -> AftResult<()> {
        match stmt {
            Stmt::Decl { name, ty, init, .. } => {
                let var = self.declare_local(name, ty.clone());
                // Local arrays carry their length in a hidden descriptor slot
                // so the Feature Limited bounds check can read it.
                if let (Some(desc), Type::Array(_, len)) = (var.desc_offset, ty) {
                    self.emit(Instr::MovImm {
                        dst: Reg::R3,
                        imm: *len as u16,
                    });
                    self.emit(Instr::Store {
                        src: Reg::R3,
                        base: Reg::FP,
                        offset: desc,
                        width: Width::Word,
                    });
                }
                if let Some(init) = init {
                    self.gen_expr(init)?;
                    self.emit(Instr::Store {
                        src: Reg::R14,
                        base: Reg::FP,
                        offset: var.offset,
                        width: Self::width_of(ty),
                    });
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.gen_expr(e)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                let else_label = self.new_label();
                let end_label = self.new_label();
                self.gen_cond_jump_if_false(cond, else_label)?;
                self.gen_block(then_block)?;
                if let Some(else_block) = else_block {
                    self.emit_jmp(end_label);
                    self.bind_label(else_label);
                    self.gen_block(else_block)?;
                    self.bind_label(end_label);
                } else {
                    self.bind_label(else_label);
                    self.bind_label(end_label);
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let head = self.new_label();
                let exit = self.new_label();
                self.bind_label(head);
                self.gen_cond_jump_if_false(cond, exit)?;
                self.loop_stack.push((head, exit));
                self.gen_block(body)?;
                self.loop_stack.pop();
                self.emit_jmp(head);
                self.bind_label(exit);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.push_scope();
                if let Some(init) = init {
                    self.gen_stmt(init)?;
                }
                let head = self.new_label();
                let continue_label = self.new_label();
                let exit = self.new_label();
                self.bind_label(head);
                if let Some(cond) = cond {
                    self.gen_cond_jump_if_false(cond, exit)?;
                }
                self.loop_stack.push((continue_label, exit));
                self.gen_block(body)?;
                self.loop_stack.pop();
                self.bind_label(continue_label);
                if let Some(step) = step {
                    self.gen_expr(step)?;
                }
                self.emit_jmp(head);
                self.bind_label(exit);
                self.pop_scope();
                Ok(())
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    self.gen_expr(v)?;
                } else {
                    self.emit(Instr::MovImm {
                        dst: Reg::R14,
                        imm: 0,
                    });
                }
                self.emit_jmp(self.ret_label);
                Ok(())
            }
            Stmt::Break(loc) => {
                let Some(&(_, exit)) = self.loop_stack.last() else {
                    return Err(self.internal(format!("break outside loop at {loc}")));
                };
                self.emit_jmp(exit);
                Ok(())
            }
            Stmt::Continue(loc) => {
                let Some(&(cont, _)) = self.loop_stack.last() else {
                    return Err(self.internal(format!("continue outside loop at {loc}")));
                };
                self.emit_jmp(cont);
                Ok(())
            }
            Stmt::Block(b) => self.gen_block(b),
            Stmt::Goto { loc, .. } | Stmt::Asm { loc, .. } => {
                Err(self.internal(format!("unsupported statement reached codegen at {loc}")))
            }
        }
    }

    /// Evaluates `cond` and jumps to `target` when it is false (zero).
    fn gen_cond_jump_if_false(&mut self, cond: &Expr, target: usize) -> AftResult<()> {
        self.gen_expr(cond)?;
        self.emit(Instr::CmpImm {
            a: Reg::R14,
            imm: 0,
        });
        self.emit_jcc(Cond::Eq, target);
        Ok(())
    }

    /// Compiles an expression, leaving its value in `R14`.
    fn gen_expr(&mut self, e: &Expr) -> AftResult<Type> {
        match e {
            Expr::IntLit { value, .. } => {
                self.emit(Instr::MovImm {
                    dst: Reg::R14,
                    imm: *value as u16,
                });
                Ok(Type::Int)
            }
            Expr::Ident { name, loc } => self.gen_ident_load(name, *loc),
            Expr::Unary { op, expr, .. } => {
                self.gen_expr(expr)?;
                match op {
                    UnOp::Neg => {
                        self.emit(Instr::Unary {
                            op: UnaryOp::Neg,
                            reg: Reg::R14,
                        });
                    }
                    UnOp::BitNot => {
                        self.emit(Instr::Unary {
                            op: UnaryOp::Not,
                            reg: Reg::R14,
                        });
                    }
                    UnOp::LogicalNot => {
                        let one = self.new_label();
                        self.emit(Instr::CmpImm {
                            a: Reg::R14,
                            imm: 0,
                        });
                        self.emit(Instr::MovImm {
                            dst: Reg::R14,
                            imm: 1,
                        });
                        self.emit_jcc(Cond::Eq, one);
                        self.emit(Instr::MovImm {
                            dst: Reg::R14,
                            imm: 0,
                        });
                        self.bind_label(one);
                    }
                }
                Ok(Type::Int)
            }
            Expr::Binary { op, lhs, rhs, .. } => self.gen_binary(*op, lhs, rhs),
            Expr::Assign {
                target, value, op, ..
            } => {
                // Compound assignment desugars to `target = target op value`.
                if let Some(op) = op {
                    let desugared = Expr::Assign {
                        target: target.clone(),
                        value: Box::new(Expr::Binary {
                            op: *op,
                            lhs: target.clone(),
                            rhs: value.clone(),
                            loc: value.loc(),
                        }),
                        op: None,
                        loc: value.loc(),
                    };
                    return self.gen_expr(&desugared);
                }
                self.gen_assign(target, value)
            }
            Expr::Index { base, index, .. } => {
                let elem_ty = self.gen_element_address(base, index, true)?;
                self.emit(Instr::Load {
                    dst: Reg::R14,
                    base: Reg::R14,
                    offset: 0,
                    width: Self::width_of(&elem_ty),
                });
                Ok(elem_ty)
            }
            Expr::Call { callee, args, loc } => self.gen_call(callee, args, *loc),
            Expr::Deref { expr, .. } => {
                let pointee = self.type_of(expr).pointee().cloned().unwrap_or(Type::Int);
                self.gen_expr(expr)?;
                self.emit_data_pointer_checks();
                self.emit(Instr::Load {
                    dst: Reg::R14,
                    base: Reg::R14,
                    offset: 0,
                    width: Self::width_of(&pointee),
                });
                Ok(pointee)
            }
            Expr::AddrOf { expr, loc } => self.gen_addr_of(expr, *loc),
        }
    }

    fn gen_ident_load(&mut self, name: &str, loc: Loc) -> AftResult<Type> {
        if let Some(var) = self.lookup_local(name) {
            match &var.ty {
                Type::Array(..) => {
                    // Arrays decay to the address of their first element.
                    self.emit(Instr::Mov {
                        dst: Reg::R14,
                        src: Reg::FP,
                    });
                    self.emit(Instr::AluImm {
                        op: AluOp::Add,
                        dst: Reg::R14,
                        imm: var.offset as u16,
                    });
                    Ok(Type::Ptr(Box::new(
                        var.ty.pointee().cloned().unwrap_or(Type::Int),
                    )))
                }
                ty => {
                    self.emit(Instr::Load {
                        dst: Reg::R14,
                        base: Reg::FP,
                        offset: var.offset,
                        width: Self::width_of(ty),
                    });
                    Ok(ty.clone())
                }
            }
        } else if let Some((ty, offset)) = self.lookup_global(name) {
            match &ty {
                Type::Array(..) => {
                    self.emit_reloc(
                        Instr::MovImm {
                            dst: Reg::R14,
                            imm: 0,
                        },
                        RelocKind::GlobalAddr {
                            name: name.to_string(),
                            add: offset,
                        },
                    );
                    Ok(Type::Ptr(Box::new(
                        ty.pointee().cloned().unwrap_or(Type::Int),
                    )))
                }
                other => {
                    self.emit_reloc(
                        Instr::LoadAbs {
                            dst: Reg::R14,
                            addr: 0,
                            width: Self::width_of(other),
                        },
                        RelocKind::GlobalAddr {
                            name: name.to_string(),
                            add: offset,
                        },
                    );
                    Ok(other.clone())
                }
            }
        } else if self.analysis.signatures.contains_key(name) {
            self.emit_reloc(
                Instr::MovImm {
                    dst: Reg::R14,
                    imm: 0,
                },
                RelocKind::FuncAddr(name.to_string()),
            );
            Ok(Type::FnPtr)
        } else {
            Err(CompileError::unknown(&self.app, name, loc))
        }
    }

    fn gen_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> AftResult<Type> {
        match op {
            BinOp::LogicalAnd => {
                let false_label = self.new_label();
                let end = self.new_label();
                self.gen_expr(lhs)?;
                self.emit(Instr::CmpImm {
                    a: Reg::R14,
                    imm: 0,
                });
                self.emit_jcc(Cond::Eq, false_label);
                self.gen_expr(rhs)?;
                self.emit(Instr::CmpImm {
                    a: Reg::R14,
                    imm: 0,
                });
                self.emit_jcc(Cond::Eq, false_label);
                self.emit(Instr::MovImm {
                    dst: Reg::R14,
                    imm: 1,
                });
                self.emit_jmp(end);
                self.bind_label(false_label);
                self.emit(Instr::MovImm {
                    dst: Reg::R14,
                    imm: 0,
                });
                self.bind_label(end);
                return Ok(Type::Int);
            }
            BinOp::LogicalOr => {
                let true_label = self.new_label();
                let end = self.new_label();
                self.gen_expr(lhs)?;
                self.emit(Instr::CmpImm {
                    a: Reg::R14,
                    imm: 0,
                });
                self.emit_jcc(Cond::Ne, true_label);
                self.gen_expr(rhs)?;
                self.emit(Instr::CmpImm {
                    a: Reg::R14,
                    imm: 0,
                });
                self.emit_jcc(Cond::Ne, true_label);
                self.emit(Instr::MovImm {
                    dst: Reg::R14,
                    imm: 0,
                });
                self.emit_jmp(end);
                self.bind_label(true_label);
                self.emit(Instr::MovImm {
                    dst: Reg::R14,
                    imm: 1,
                });
                self.bind_label(end);
                return Ok(Type::Int);
            }
            _ => {}
        }

        let lt = self.type_of(lhs);
        let rt = self.type_of(rhs);
        let unsigned = lt.is_unsigned() || rt.is_unsigned();

        self.gen_expr(lhs)?;
        self.emit(Instr::Push { src: Reg::R14 });
        self.gen_expr(rhs)?;
        self.emit(Instr::Pop { dst: Reg::R15 });
        // Now: left operand in R15, right operand in R14.

        if op.is_comparison() {
            let (swap, cond) = match (op, unsigned) {
                (BinOp::Eq, _) => (false, Cond::Eq),
                (BinOp::Ne, _) => (false, Cond::Ne),
                (BinOp::Lt, false) => (false, Cond::Lt),
                (BinOp::Lt, true) => (false, Cond::Lo),
                (BinOp::Ge, false) => (false, Cond::Ge),
                (BinOp::Ge, true) => (false, Cond::Hs),
                (BinOp::Gt, false) => (true, Cond::Lt),
                (BinOp::Gt, true) => (true, Cond::Lo),
                (BinOp::Le, false) => (true, Cond::Ge),
                (BinOp::Le, true) => (true, Cond::Hs),
                _ => (false, Cond::Eq),
            };
            if swap {
                // a > b  computed as  b < a.
                self.emit(Instr::Cmp {
                    a: Reg::R14,
                    b: Reg::R15,
                });
            } else {
                self.emit(Instr::Cmp {
                    a: Reg::R15,
                    b: Reg::R14,
                });
            }
            let true_label = self.new_label();
            self.emit(Instr::MovImm {
                dst: Reg::R14,
                imm: 1,
            });
            self.emit_jcc(cond, true_label);
            self.emit(Instr::MovImm {
                dst: Reg::R14,
                imm: 0,
            });
            self.bind_label(true_label);
            return Ok(Type::Int);
        }

        let alu = match op {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::Mul => AluOp::Mul,
            BinOp::Div => AluOp::Div,
            BinOp::Rem => AluOp::Rem,
            BinOp::BitAnd => AluOp::And,
            BinOp::BitOr => AluOp::Or,
            BinOp::BitXor => AluOp::Xor,
            BinOp::Shl | BinOp::Shr => {
                // Shifts by a constant amount are by far the common case in
                // the benchmark code; variable shifts are compiled as a
                // (slow) multiply/divide by a power of two when they appear.
                if let Expr::IntLit { value, .. } = rhs {
                    let amount = (*value as u8).min(15);
                    self.emit(Instr::Mov {
                        dst: Reg::R14,
                        src: Reg::R15,
                    });
                    let unary = if matches!(op, BinOp::Shl) {
                        UnaryOp::Shl(amount)
                    } else if unsigned {
                        UnaryOp::Shr(amount)
                    } else {
                        UnaryOp::Sar(amount)
                    };
                    self.emit(Instr::Unary {
                        op: unary,
                        reg: Reg::R14,
                    });
                    return Ok(if unsigned { Type::Uint } else { Type::Int });
                }
                let factor = AluOp::Mul;
                let _ = factor;
                // Variable shift: fall back to repeated doubling is not worth
                // the code size; use multiply/divide semantics.
                let opk = if matches!(op, BinOp::Shl) {
                    AluOp::Mul
                } else {
                    AluOp::Div
                };
                // R14 holds the shift amount; convert to 2^amount via a tiny
                // loop-free approximation is out of scope — the dialect
                // restricts variable shifts, so reject.
                let _ = opk;
                return Err(self.internal("variable shift amounts are not supported by AmuletC"));
            }
            _ => return Err(self.internal(format!("unhandled binary operator {op:?}"))),
        };
        self.emit(Instr::Alu {
            op: alu,
            dst: Reg::R15,
            src: Reg::R14,
        });
        self.emit(Instr::Mov {
            dst: Reg::R14,
            src: Reg::R15,
        });
        Ok(if matches!(lt, Type::Ptr(_)) {
            lt
        } else if matches!(rt, Type::Ptr(_)) {
            rt
        } else if unsigned {
            Type::Uint
        } else {
            Type::Int
        })
    }

    fn gen_assign(&mut self, target: &Expr, value: &Expr) -> AftResult<Type> {
        match target {
            Expr::Ident { name, loc } => {
                let vty = self.gen_expr(value)?;
                if let Some(var) = self.lookup_local(name) {
                    self.emit(Instr::Store {
                        src: Reg::R14,
                        base: Reg::FP,
                        offset: var.offset,
                        width: Self::width_of(&var.ty),
                    });
                    Ok(var.ty)
                } else if let Some((ty, offset)) = self.lookup_global(name) {
                    self.emit_reloc(
                        Instr::StoreAbs {
                            src: Reg::R14,
                            addr: 0,
                            width: Self::width_of(&ty),
                        },
                        RelocKind::GlobalAddr {
                            name: name.clone(),
                            add: offset,
                        },
                    );
                    Ok(ty)
                } else {
                    Err(CompileError::unknown(&self.app, name.clone(), *loc))
                }
                .map(|t| if matches!(t, Type::Void) { vty } else { t })
            }
            Expr::Index { base, index, .. } => {
                self.gen_expr(value)?;
                self.emit(Instr::Push { src: Reg::R14 });
                let elem_ty = self.gen_element_address(base, index, true)?;
                self.emit(Instr::Pop { dst: Reg::R15 });
                self.emit(Instr::Store {
                    src: Reg::R15,
                    base: Reg::R14,
                    offset: 0,
                    width: Self::width_of(&elem_ty),
                });
                self.emit(Instr::Mov {
                    dst: Reg::R14,
                    src: Reg::R15,
                });
                Ok(elem_ty)
            }
            Expr::Deref { expr, .. } => {
                let pointee = self.type_of(expr).pointee().cloned().unwrap_or(Type::Int);
                self.gen_expr(value)?;
                self.emit(Instr::Push { src: Reg::R14 });
                self.gen_expr(expr)?;
                self.emit_data_pointer_checks();
                self.emit(Instr::Pop { dst: Reg::R15 });
                self.emit(Instr::Store {
                    src: Reg::R15,
                    base: Reg::R14,
                    offset: 0,
                    width: Self::width_of(&pointee),
                });
                self.emit(Instr::Mov {
                    dst: Reg::R14,
                    src: Reg::R15,
                });
                Ok(pointee)
            }
            other => Err(self.internal(format!("invalid assignment target at {}", other.loc()))),
        }
    }

    /// Computes the address of `base[index]` into `R14`, emitting whichever
    /// checks the policy requires.  `for_access` is false when the address is
    /// only being taken (`&a[i]`), in which case no access checks are
    /// emitted.
    fn gen_element_address(
        &mut self,
        base: &Expr,
        index: &Expr,
        for_access: bool,
    ) -> AftResult<Type> {
        let base_ty = self.type_of(base);
        let elem_ty = base_ty.pointee().cloned().unwrap_or(Type::Int);
        let elem_size = elem_ty.size_bytes().max(1);

        match (&base_ty, base) {
            // Indexing a named array: the Feature Limited tool checks the
            // index against the array's length descriptor.
            (Type::Array(_, _), Expr::Ident { name, .. }) => {
                self.gen_expr(index)?;
                if for_access {
                    if let Some(var) = self.lookup_local(name) {
                        self.emit_array_bounds_check(DescriptorLoc::Local {
                            offset: var.desc_offset.unwrap_or(var.offset),
                        });
                    } else if let Some((gty, offset)) = self.lookup_global(name) {
                        self.emit_array_bounds_check(DescriptorLoc::Global {
                            name: name.clone(),
                            add: offset + gty.size_bytes(),
                        });
                    }
                }
                // Scale the index.
                if elem_size == 2 {
                    self.emit(Instr::Unary {
                        op: UnaryOp::Shl(1),
                        reg: Reg::R14,
                    });
                }
                // Add the array base address.
                if let Some(var) = self.lookup_local(name) {
                    self.emit(Instr::Mov {
                        dst: Reg::R13,
                        src: Reg::FP,
                    });
                    self.emit(Instr::AluImm {
                        op: AluOp::Add,
                        dst: Reg::R13,
                        imm: var.offset as u16,
                    });
                    self.emit(Instr::Alu {
                        op: AluOp::Add,
                        dst: Reg::R14,
                        src: Reg::R13,
                    });
                } else if let Some((_, offset)) = self.lookup_global(name) {
                    self.emit_reloc(
                        Instr::AluImm {
                            op: AluOp::Add,
                            dst: Reg::R14,
                            imm: 0,
                        },
                        RelocKind::GlobalAddr {
                            name: name.clone(),
                            add: offset,
                        },
                    );
                }
                // Under the pointer-checking methods the computed address is
                // a data pointer like any other.
                if for_access {
                    self.emit_data_pointer_checks();
                }
                Ok(elem_ty)
            }
            // Indexing through a pointer (or a computed array expression):
            // plain pointer arithmetic followed by the pointer checks.
            _ => {
                self.gen_expr(base)?;
                self.emit(Instr::Push { src: Reg::R14 });
                self.gen_expr(index)?;
                if elem_size == 2 {
                    self.emit(Instr::Unary {
                        op: UnaryOp::Shl(1),
                        reg: Reg::R14,
                    });
                }
                self.emit(Instr::Pop { dst: Reg::R15 });
                self.emit(Instr::Alu {
                    op: AluOp::Add,
                    dst: Reg::R14,
                    src: Reg::R15,
                });
                if for_access {
                    self.emit_data_pointer_checks();
                }
                Ok(elem_ty)
            }
        }
    }

    fn gen_addr_of(&mut self, expr: &Expr, loc: Loc) -> AftResult<Type> {
        match expr {
            Expr::Ident { name, .. } => {
                if let Some(var) = self.lookup_local(name) {
                    self.emit(Instr::Mov {
                        dst: Reg::R14,
                        src: Reg::FP,
                    });
                    self.emit(Instr::AluImm {
                        op: AluOp::Add,
                        dst: Reg::R14,
                        imm: var.offset as u16,
                    });
                    Ok(Type::Ptr(Box::new(var.ty)))
                } else if let Some((ty, offset)) = self.lookup_global(name) {
                    self.emit_reloc(
                        Instr::MovImm {
                            dst: Reg::R14,
                            imm: 0,
                        },
                        RelocKind::GlobalAddr {
                            name: name.clone(),
                            add: offset,
                        },
                    );
                    Ok(Type::Ptr(Box::new(ty)))
                } else if self.analysis.signatures.contains_key(name) {
                    self.emit_reloc(
                        Instr::MovImm {
                            dst: Reg::R14,
                            imm: 0,
                        },
                        RelocKind::FuncAddr(name.clone()),
                    );
                    Ok(Type::FnPtr)
                } else {
                    Err(CompileError::unknown(&self.app, name.clone(), loc))
                }
            }
            Expr::Index { base, index, .. } => {
                let elem = self.gen_element_address(base, index, false)?;
                Ok(Type::Ptr(Box::new(elem)))
            }
            Expr::Deref { expr, .. } => {
                // `&*p` is just `p`.
                self.gen_expr(expr)
            }
            other => Err(self.internal(format!("cannot take the address of {other:?}"))),
        }
    }

    fn gen_call(&mut self, callee: &Expr, args: &[Expr], loc: Loc) -> AftResult<Type> {
        if let Expr::Ident { name, .. } = callee {
            // OS API call: marshal up to two arguments into registers and
            // trap.
            if let Some(api) = self.api.by_name(name).cloned() {
                match args.len() {
                    0 => {}
                    1 => {
                        self.gen_expr(&args[0])?;
                    }
                    2 => {
                        self.gen_expr(&args[0])?;
                        self.emit(Instr::Push { src: Reg::R14 });
                        self.gen_expr(&args[1])?;
                        self.emit(Instr::Mov {
                            dst: Reg::R15,
                            src: Reg::R14,
                        });
                        self.emit(Instr::Pop { dst: Reg::R14 });
                    }
                    n => {
                        return Err(self
                            .internal(format!("API `{name}` called with {n} arguments at {loc}")))
                    }
                }
                self.emit(Instr::Syscall { num: api.num });
                return Ok(api.ret.clone());
            }
            // Direct call to another function in the same app.
            if let Some(sig) = self.analysis.signatures.get(name).cloned() {
                for a in args.iter().rev() {
                    self.gen_expr(a)?;
                    self.emit(Instr::Push { src: Reg::R14 });
                }
                self.emit_reloc(Instr::Call { target: 0 }, RelocKind::FuncAddr(name.clone()));
                if !args.is_empty() {
                    self.emit(Instr::AluImm {
                        op: AluOp::Add,
                        dst: Reg::SP,
                        imm: 2 * args.len() as u16,
                    });
                }
                return Ok(sig.ret);
            }
        }

        // Indirect call through a function pointer.
        for a in args.iter().rev() {
            self.gen_expr(a)?;
            self.emit(Instr::Push { src: Reg::R14 });
        }
        self.gen_expr(callee)?;
        self.emit_function_pointer_checks();
        self.emit(Instr::CallReg { reg: Reg::R14 });
        if !args.is_empty() {
            self.emit(Instr::AluImm {
                op: AluOp::Add,
                dst: Reg::SP,
                imm: 2 * args.len() as u16,
            });
        }
        Ok(Type::Int)
    }
}

/// Where an array's length descriptor lives.
enum DescriptorLoc {
    /// A global array: descriptor at the global's address plus `add`.
    Global {
        /// Global name.
        name: String,
        /// Byte offset of the descriptor from the app's data base.
        add: u32,
    },
    /// A local array: descriptor at an FP-relative offset.
    Local {
        /// FP-relative offset.
        offset: i16,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::analyze;

    fn compile(src: &str, method: IsolationMethod) -> AppCode {
        let program = parse(src).unwrap();
        let api = ApiSpec::amulet();
        let analysis = analyze("Test", &program, &api, method).unwrap();
        generate(
            "Test",
            &program,
            &analysis,
            &api,
            method,
            CheckPolicy::for_method(method),
        )
        .unwrap()
    }

    const DEREF_APP: &str = r#"
        int g;
        void main(void) {
            int *p;
            p = &g;
            *p = 7;
            g = *p + 1;
        }
    "#;

    fn count_bound_relocs(app: &AppCode, kind: &RelocKind) -> usize {
        app.functions
            .iter()
            .flat_map(|f| f.relocs.iter())
            .filter(|r| r.kind == *kind)
            .count()
    }

    #[test]
    fn software_only_inserts_twice_as_many_pointer_checks_as_mpu() {
        let mpu = compile(DEREF_APP, IsolationMethod::Mpu);
        let sw = compile(DEREF_APP, IsolationMethod::SoftwareOnly);
        let none = compile(DEREF_APP, IsolationMethod::NoIsolation);

        let mpu_lower = count_bound_relocs(&mpu, &RelocKind::BoundDataLower);
        let mpu_upper = count_bound_relocs(&mpu, &RelocKind::BoundDataUpper);
        let sw_lower = count_bound_relocs(&sw, &RelocKind::BoundDataLower);
        let sw_upper = count_bound_relocs(&sw, &RelocKind::BoundDataUpper);

        assert!(mpu_lower >= 2, "one per dereference");
        assert_eq!(mpu_upper, 0, "the MPU protects the upper bound in hardware");
        assert_eq!(sw_lower, mpu_lower);
        assert_eq!(sw_upper, sw_lower, "software-only checks both bounds");
        assert_eq!(count_bound_relocs(&none, &RelocKind::BoundDataLower), 0);
        assert_eq!(count_bound_relocs(&none, &RelocKind::BoundDataUpper), 0);
    }

    #[test]
    fn feature_limited_inserts_array_checks_only() {
        let src = r#"
            int data[8];
            void main(void) {
                for (int i = 0; i < 8; i++) { data[i] = i; }
            }
        "#;
        let fl = compile(src, IsolationMethod::FeatureLimited);
        let main = fl.function("main").unwrap();
        assert!(*main.inserted_checks.get("array bounds").unwrap_or(&0) >= 1);
        assert!(!main
            .inserted_checks
            .contains_key("data pointer lower bound"));
        // No-isolation build of the same program has no checks at all.
        let none = compile(src, IsolationMethod::NoIsolation);
        assert!(none.function("main").unwrap().inserted_checks.is_empty());
    }

    #[test]
    fn return_address_checks_present_for_pointer_methods() {
        let src = "int f(int x) { return x + 1; } void main(void) { f(1); }";
        for (method, expected) in [
            (IsolationMethod::Mpu, true),
            (IsolationMethod::SoftwareOnly, true),
            (IsolationMethod::FeatureLimited, false),
            (IsolationMethod::NoIsolation, false),
        ] {
            let app = compile(src, method);
            let has = app
                .functions
                .iter()
                .any(|f| f.inserted_checks.contains_key("return address"));
            assert_eq!(has, expected, "{method}");
        }
    }

    #[test]
    fn function_pointer_calls_get_code_bound_checks() {
        let src = r#"
            int twice(int x) { return x + x; }
            void main(void) {
                fnptr f;
                f = &twice;
                f(3);
            }
        "#;
        let mpu = compile(src, IsolationMethod::Mpu);
        let sw = compile(src, IsolationMethod::SoftwareOnly);
        assert!(count_bound_relocs(&mpu, &RelocKind::BoundCodeLower) > 0);
        assert!(count_bound_relocs(&sw, &RelocKind::BoundCodeUpper) >= 1);
        // The MPU method adds return-address checks which also reference the
        // code bounds, but never the *upper* function-pointer bound beyond
        // the return check count.
        let mpu_fn_upper: usize = mpu
            .functions
            .iter()
            .map(|f| {
                *f.inserted_checks
                    .get("function pointer upper bound")
                    .unwrap_or(&0) as usize
            })
            .sum();
        assert_eq!(mpu_fn_upper, 0);
    }

    #[test]
    fn api_calls_become_syscalls_with_the_right_number() {
        let src = "void main(void) { amulet_log_value(3); amulet_get_time(); }";
        let app = compile(src, IsolationMethod::Mpu);
        let main = app.function("main").unwrap();
        let syscalls: Vec<u16> = main
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Syscall { num } => Some(*num),
                _ => None,
            })
            .collect();
        assert_eq!(
            syscalls,
            vec![crate::api::sysno::LOG_VALUE, crate::api::sysno::GET_TIME]
        );
    }

    #[test]
    fn global_initialisers_and_array_descriptors_land_in_the_data_image() {
        let src = "int x = 513; int arr[3] = {1, 2, 3}; void main(void) { }";
        let app = compile(src, IsolationMethod::Mpu);
        // x at offset 0: 513 = 0x0201 little endian.
        assert_eq!(&app.data_image[0..2], &[0x01, 0x02]);
        // arr at offset 2..8, then the descriptor (length 3).
        assert_eq!(&app.data_image[2..8], &[1, 0, 2, 0, 3, 0]);
        assert_eq!(&app.data_image[8..10], &[3, 0]);
    }

    #[test]
    fn every_label_referenced_by_a_reloc_is_bound() {
        let src = r#"
            int work(int n) {
                int total = 0;
                for (int i = 0; i < n; i++) {
                    if (i % 3 == 0 && i != 6) { total += i; } else { total -= 1; }
                    while (total > 100) { total = total - 10; }
                }
                return total;
            }
            void main(void) { work(20); }
        "#;
        for method in IsolationMethod::ALL {
            let app = compile(src, method);
            for f in &app.functions {
                for r in &f.relocs {
                    if let RelocKind::Label(l) = r.kind {
                        assert!(
                            f.labels[l].is_some(),
                            "{method}: unbound label {l} in {}",
                            f.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn code_size_grows_with_check_insertion() {
        let none = compile(DEREF_APP, IsolationMethod::NoIsolation).code_bytes();
        let mpu = compile(DEREF_APP, IsolationMethod::Mpu).code_bytes();
        let sw = compile(DEREF_APP, IsolationMethod::SoftwareOnly).code_bytes();
        assert!(none < mpu, "{none} < {mpu}");
        assert!(mpu < sw, "{mpu} < {sw}");
    }
}
