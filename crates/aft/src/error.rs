//! Compilation errors.

use crate::parser::ParseError;
use crate::token::Loc;
use std::fmt;

/// Result alias for toolchain operations.
pub type AftResult<T> = Result<T, CompileError>;

/// An error raised by any phase of the Amulet Firmware Toolchain.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// Lexical or syntactic error.
    Parse {
        /// The application whose source failed to parse (empty for
        /// stand-alone compilations).
        app: String,
        /// The underlying parse error.
        error: ParseError,
    },
    /// An application uses a language feature the selected isolation method
    /// does not support (phase 1 of the AFT analysis).
    UnsupportedFeature {
        /// The application.
        app: String,
        /// A description of the feature, e.g. "inline assembly".
        feature: String,
        /// Where it was used.
        loc: Loc,
    },
    /// A type error.
    Type {
        /// The application.
        app: String,
        /// Explanation.
        message: String,
        /// Where it occurred.
        loc: Loc,
    },
    /// Reference to an unknown variable or function.
    Unknown {
        /// The application.
        app: String,
        /// The unknown name.
        name: String,
        /// Where it was referenced.
        loc: Loc,
    },
    /// A call to a system function outside the approved API.
    UnapprovedApiCall {
        /// The application.
        app: String,
        /// The offending function name.
        name: String,
        /// Where the call occurs.
        loc: Loc,
    },
    /// The linker could not place the build (delegates to the memory-map
    /// planner's error).
    Layout {
        /// The underlying planner error.
        error: amulet_core::error::CoreError,
    },
    /// The produced firmware image failed validation.
    Firmware {
        /// Explanation from the firmware validator.
        message: String,
    },
    /// An internal invariant was violated (a bug in the toolchain).
    Internal {
        /// Explanation.
        message: String,
    },
}

impl CompileError {
    /// Convenience constructor for type errors.
    pub fn type_error(app: &str, message: impl Into<String>, loc: Loc) -> Self {
        CompileError::Type {
            app: app.to_string(),
            message: message.into(),
            loc,
        }
    }

    /// Convenience constructor for unknown-name errors.
    pub fn unknown(app: &str, name: impl Into<String>, loc: Loc) -> Self {
        CompileError::Unknown {
            app: app.to_string(),
            name: name.into(),
            loc,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse { app, error } => write!(f, "[{app}] {error}"),
            CompileError::UnsupportedFeature { app, feature, loc } => {
                write!(
                    f,
                    "[{app}] unsupported language feature at {loc}: {feature}"
                )
            }
            CompileError::Type { app, message, loc } => {
                write!(f, "[{app}] type error at {loc}: {message}")
            }
            CompileError::Unknown { app, name, loc } => {
                write!(f, "[{app}] unknown identifier `{name}` at {loc}")
            }
            CompileError::UnapprovedApiCall { app, name, loc } => {
                write!(
                    f,
                    "[{app}] call to `{name}` at {loc} is outside the approved system API"
                )
            }
            CompileError::Layout { error } => write!(f, "layout failed: {error}"),
            CompileError::Firmware { message } => {
                write!(f, "firmware validation failed: {message}")
            }
            CompileError::Internal { message } => write!(f, "internal toolchain error: {message}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<amulet_core::error::CoreError> for CompileError {
    fn from(error: amulet_core::error::CoreError) -> Self {
        CompileError::Layout { error }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_app_and_location() {
        let e = CompileError::UnsupportedFeature {
            app: "HR".into(),
            feature: "inline assembly".into(),
            loc: Loc { line: 3, col: 7 },
        };
        let s = e.to_string();
        assert!(s.contains("HR"));
        assert!(s.contains("3:7"));
        assert!(s.contains("inline assembly"));
    }

    #[test]
    fn layout_errors_convert() {
        let core_err = amulet_core::error::CoreError::DuplicateApp("X".into());
        let e: CompileError = core_err.into();
        assert!(matches!(e, CompileError::Layout { .. }));
    }
}
