//! # amulet-aft
//!
//! The Amulet Firmware Toolchain (AFT): a from-scratch compiler for the
//! AmuletC application language that analyzes, transforms, merges and
//! compiles the user's desired applications into a firmware image for the
//! simulated MSP430FR5969-class device — reproducing the toolchain described
//! in "Application Memory Isolation on Ultra-Low-Power MCUs" (USENIX ATC
//! 2018).
//!
//! The pipeline mirrors the paper's four phases:
//!
//! 1. [`sema`] — feature/legality analysis, type checking, call-graph and
//!    maximum-stack analysis, memory-access and API-call enumeration;
//! 2. [`codegen`] — code generation with compiler-inserted isolation checks
//!    (with placeholder bounds);
//! 3. [`link`] (phases 3 + 4) — section assignment, final memory layout via
//!    the Figure-1 planner, bound patching, and firmware emission.
//!
//! The [`aft::Aft`] driver runs the whole pipeline; [`aft::AppSource`] is
//! the unit of input.
//!
//! ```
//! use amulet_aft::aft::{Aft, AppSource};
//! use amulet_core::method::IsolationMethod;
//!
//! let out = Aft::new(IsolationMethod::Mpu)
//!     .add_app(AppSource::new(
//!         "Hello",
//!         "int x = 1; void main(void) { amulet_log_value(x); }",
//!         &["main"],
//!     ))
//!     .build()
//!     .unwrap();
//! assert_eq!(out.firmware.apps.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aft;
pub mod api;
pub mod ast;
pub mod codegen;
pub mod error;
pub mod link;
pub mod parser;
pub mod sema;
pub mod token;
pub mod types;

pub use aft::{Aft, AppSource, BuildOutput, BuildReport};
pub use api::{sysno, ApiSpec};
pub use error::{AftResult, CompileError};
