//! Phases 3 and 4 of the AFT: section assignment, final memory layout,
//! bound patching and firmware emission.
//!
//! Phase 3 marks each application's code and data for placement in high FRAM
//! (per the Figure-1 memory map); phase 4 measures the final code size of
//! each app, runs the memory-map planner, patches every placeholder the code
//! generator left behind (function addresses, global addresses, jump targets
//! and — crucially — the per-app bounds `C_i`, `D_i`, `T_i` used by the
//! compiler-inserted checks), and emits the firmware image together with the
//! per-app MPU register values the OS installs at context switches.

use crate::codegen::{AppCode, FunctionCode, Reloc, RelocKind};
use crate::error::{AftResult, CompileError};
use amulet_core::addr::Addr;
use amulet_core::checks::CheckSite;
use amulet_core::layout::{
    AppImageSpec, AppPlacement, MemoryMap, MemoryMapPlanner, OsImageSpec, PlatformSpec,
};
use amulet_core::method::IsolationMethod;
use amulet_core::mpu_plan::MpuPlan;
use amulet_mcu::firmware::{AppBinary, Firmware, FirmwareBuilder, OsBinary};
use amulet_mcu::isa::Instr;
use std::collections::BTreeMap;

/// Default stack reservation for applications whose maximum stack depth the
/// AFT cannot bound (recursive apps), in bytes.
pub const DEFAULT_RECURSIVE_STACK_BYTES: u32 = 768;

/// Safety margin added to every computed stack bound, covering the OS call
/// veneer (handler arguments plus the sentinel return address) and interrupt
/// headroom.
pub const STACK_MARGIN_BYTES: u32 = 32;

/// One application entering the link phase.
#[derive(Clone, Debug)]
pub struct AppUnit {
    /// The compiled application.
    pub code: AppCode,
    /// Names of the functions the OS may invoke as event handlers.
    pub handlers: Vec<String>,
    /// Developer-provided stack-size override in bytes (required in practice
    /// for recursive applications, where the AFT cannot bound the stack).
    pub stack_override: Option<u32>,
}

/// Per-application link results, for the build report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppLinkInfo {
    /// Application name.
    pub name: String,
    /// Final code size in bytes.
    pub code_bytes: u32,
    /// Final data size in bytes (globals plus array descriptors).
    pub data_bytes: u32,
    /// Reserved stack bytes.
    pub stack_bytes: u32,
    /// Where the app landed.
    pub placement: AppPlacement,
    /// Total compiler-inserted checks by kind.
    pub inserted_checks: BTreeMap<String, u32>,
    /// Every inserted check sequence at its final absolute address, in
    /// ascending address order — the static verifier's elision input.
    pub check_sites: Vec<CheckSite>,
}

/// Output of the link phase.
#[derive(Clone, Debug)]
pub struct LinkOutput {
    /// The final firmware image.
    pub firmware: Firmware,
    /// The memory map it was linked against.
    pub memory_map: MemoryMap,
    /// Per-application link information.
    pub apps: Vec<AppLinkInfo>,
}

/// Links compiled applications into a firmware image for the given method.
pub fn link(
    method: IsolationMethod,
    platform: &PlatformSpec,
    os_spec: &OsImageSpec,
    apps: &[AppUnit],
) -> AftResult<LinkOutput> {
    // Phase 3/4a: measure each app and plan the memory map.
    let mut image_specs = Vec::with_capacity(apps.len());
    for unit in apps {
        let stack = unit.stack_override.unwrap_or_else(|| {
            unit.code
                .analysis
                .max_stack_bytes
                .map(|b| b + STACK_MARGIN_BYTES)
                .unwrap_or(DEFAULT_RECURSIVE_STACK_BYTES)
        });
        image_specs.push(AppImageSpec::new(
            unit.code.name.clone(),
            unit.code.code_bytes().max(2),
            unit.code.data_bytes.max(2),
            stack.max(STACK_MARGIN_BYTES),
        ));
    }
    let planner = MemoryMapPlanner::new(platform.clone())?;
    let memory_map = planner.plan(os_spec, &image_specs)?;

    // Phase 4b: assign function addresses.
    //
    // `func_addrs[app_name][func_name]` is the absolute entry address.
    let mut func_addrs: BTreeMap<String, BTreeMap<String, Addr>> = BTreeMap::new();
    for (unit, placement) in apps.iter().zip(&memory_map.apps) {
        let mut cursor = placement.code.start;
        let mut table = BTreeMap::new();
        for f in &unit.code.functions {
            table.insert(f.name.clone(), cursor);
            cursor += f.size_bytes();
        }
        func_addrs.insert(unit.code.name.clone(), table);
    }

    // Phase 4c: patch relocations and emit.
    let os_binary = OsBinary {
        mpu_config: MpuPlan::for_os_on(&memory_map)?.config(&platform.mpu),
        initial_sp: memory_map.os_initial_stack_pointer(),
    };
    let mut builder = FirmwareBuilder::new(method, memory_map.clone(), os_binary);
    let mut infos = Vec::new();

    for (unit, placement) in apps.iter().zip(&memory_map.apps) {
        let app_name = &unit.code.name;
        let table = &func_addrs[app_name];
        let mut inserted_checks: BTreeMap<String, u32> = BTreeMap::new();
        let mut check_sites: Vec<CheckSite> = Vec::new();

        for f in &unit.code.functions {
            let base = table[&f.name];
            let patched = patch_function(f, base, placement, table, app_name)?;
            builder.emit(base, &patched);
            builder.define_symbol(format!("{app_name}::{}", f.name), base);
            for (k, v) in &f.inserted_checks {
                *inserted_checks.entry(k.clone()).or_insert(0) += v;
            }
            for site in &f.check_sites {
                check_sites.push(CheckSite {
                    kind: site.kind,
                    addr: base + byte_offset(&f.instrs, site.index),
                    len: site.len,
                });
            }
        }

        // Initial data image (globals + array descriptors) at the start of
        // the app's data region.
        if !unit.code.data_image.is_empty() {
            builder.add_data(placement.data.start, unit.code.data_image.clone());
        }

        // Handlers must exist.
        let mut handlers = BTreeMap::new();
        for h in &unit.handlers {
            let Some(&addr) = table.get(h) else {
                return Err(CompileError::Internal {
                    message: format!("app `{app_name}` declares unknown handler `{h}`"),
                });
            };
            handlers.insert(h.clone(), addr);
        }

        let initial_sp = if method.uses_per_app_stacks() {
            placement.initial_stack_pointer()
        } else {
            memory_map.os_initial_stack_pointer()
        };

        builder.add_app(AppBinary {
            name: app_name.clone(),
            index: placement.index,
            placement: placement.clone(),
            handlers,
            mpu_config: MpuPlan::for_app_on(&memory_map, placement.index)?.config(&platform.mpu),
            initial_sp,
            max_stack_estimate: unit.code.analysis.max_stack_bytes,
        });

        infos.push(AppLinkInfo {
            name: app_name.clone(),
            code_bytes: unit.code.code_bytes(),
            data_bytes: unit.code.data_bytes,
            stack_bytes: placement.stack.len(),
            placement: placement.clone(),
            inserted_checks,
            check_sites,
        });
    }

    let firmware = builder.build().map_err(|e| CompileError::Firmware {
        message: e.to_string(),
    })?;
    Ok(LinkOutput {
        firmware,
        memory_map,
        apps: infos,
    })
}

/// Applies every relocation of one function, producing the final instruction
/// sequence to place at `base`.
fn patch_function(
    f: &FunctionCode,
    base: Addr,
    placement: &AppPlacement,
    func_table: &BTreeMap<String, Addr>,
    app_name: &str,
) -> AftResult<Vec<Instr>> {
    let mut instrs = f.instrs.clone();
    for Reloc { index, kind } in &f.relocs {
        let value: Addr =
            match kind {
                RelocKind::FuncAddr(name) => {
                    *func_table.get(name).ok_or_else(|| CompileError::Internal {
                        message: format!("[{app_name}] reference to unknown function `{name}`"),
                    })?
                }
                RelocKind::GlobalAddr { add, .. } => placement.data.start + add,
                RelocKind::Label(l) => {
                    let target_index = f.labels.get(*l).copied().flatten().ok_or_else(|| {
                        CompileError::Internal {
                            message: format!("[{app_name}::{}] unbound label {l}", f.name),
                        }
                    })?;
                    base + byte_offset(&f.instrs, target_index)
                }
                RelocKind::BoundDataLower => placement.data_lower_bound(),
                RelocKind::BoundDataUpper => placement.upper_bound(),
                RelocKind::BoundCodeLower => placement.code_lower_bound(),
                RelocKind::BoundCodeUpper => placement.data_lower_bound(),
            };
        patch_instr(&mut instrs[*index], value as u16).map_err(|msg| CompileError::Internal {
            message: format!("[{app_name}::{}] {msg}", f.name),
        })?;
    }
    Ok(instrs)
}

fn byte_offset(instrs: &[Instr], index: usize) -> u32 {
    instrs[..index].iter().map(|i| i.size_bytes()).sum()
}

/// Writes a resolved value into the placeholder field of an instruction.
fn patch_instr(instr: &mut Instr, value: u16) -> Result<(), String> {
    match instr {
        Instr::MovImm { imm, .. } | Instr::AluImm { imm, .. } | Instr::CmpImm { imm, .. } => {
            *imm = value
        }
        Instr::LoadAbs { addr, .. } | Instr::StoreAbs { addr, .. } => *addr = value,
        Instr::Call { target } | Instr::Jmp { target } | Instr::Jcc { target, .. } => {
            *target = value
        }
        other => return Err(format!("cannot relocate instruction `{other}`")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ApiSpec;
    use crate::codegen::generate;
    use crate::parser::parse;
    use crate::sema::analyze;

    fn unit(name: &str, src: &str, handlers: &[&str], method: IsolationMethod) -> AppUnit {
        let program = parse(src).unwrap();
        let api = ApiSpec::amulet();
        let analysis = analyze(name, &program, &api, method).unwrap();
        let policy = amulet_core::checks::CheckPolicy::for_method(method);
        let code = generate(name, &program, &analysis, &api, method, policy).unwrap();
        AppUnit {
            code,
            handlers: handlers.iter().map(|s| s.to_string()).collect(),
            stack_override: None,
        }
    }

    const APP_A: &str = r#"
        int counter = 5;
        int bump(int by) { counter = counter + by; return counter; }
        void main(void) { bump(2); amulet_log_value(counter); }
    "#;

    const APP_B: &str = r#"
        int table[4] = {10, 20, 30, 40};
        void main(void) {
            int sum = 0;
            for (int i = 0; i < 4; i++) { sum += table[i]; }
            amulet_log_value(sum);
        }
    "#;

    fn link_two(method: IsolationMethod) -> LinkOutput {
        let apps = vec![
            unit("AppA", APP_A, &["main"], method),
            unit("AppB", APP_B, &["main"], method),
        ];
        link(
            method,
            &PlatformSpec::msp430fr5969(),
            &OsImageSpec::default(),
            &apps,
        )
        .unwrap()
    }

    #[test]
    fn links_two_apps_into_a_valid_image() {
        for method in IsolationMethod::ALL {
            let out = link_two(method);
            assert!(out.firmware.validate().is_ok());
            assert_eq!(out.firmware.apps.len(), 2);
            assert_eq!(out.memory_map.apps.len(), 2);
            // Every handler resolves to a symbol inside its app's code
            // region.
            for app in &out.firmware.apps {
                for &addr in app.handlers.values() {
                    assert!(app.placement.code.contains(addr));
                }
            }
        }
    }

    #[test]
    fn bounds_are_patched_to_the_apps_own_placement() {
        let out = link_two(IsolationMethod::SoftwareOnly);
        let fw = &out.firmware;
        for app in &fw.apps {
            // Find check instructions inside this app's code region and make
            // sure the immediates equal the app's bounds.
            let lower = app.placement.data_lower_bound() as u16;
            let upper = app.placement.upper_bound() as u16;
            let mut saw_lower = false;
            let mut saw_upper = false;
            for (_, instr) in fw
                .code
                .range(app.placement.code.start..app.placement.code.end)
            {
                if let Instr::CmpImm { imm, .. } = instr {
                    if *imm == lower {
                        saw_lower = true;
                    }
                    if *imm == upper {
                        saw_upper = true;
                    }
                }
            }
            // AppA dereferences no pointers, so only AppB-style array checks
            // appear under SoftwareOnly when arrays are indexed; at minimum
            // the return-address checks reference the code bounds, so assert
            // on the app with pointer-free code loosely.
            if app.name == "AppB" {
                assert!(saw_lower || saw_upper, "AppB has patched bound immediates");
            }
        }
    }

    #[test]
    fn check_sites_land_on_compare_instructions_with_patched_bounds() {
        let out = link_two(IsolationMethod::SoftwareOnly);
        for (info, app) in out.apps.iter().zip(&out.firmware.apps) {
            assert_eq!(
                info.check_sites.len() as u32,
                info.inserted_checks.values().sum::<u32>(),
                "{}: one site per counted check",
                info.name
            );
            let mut prev = 0;
            for site in &info.check_sites {
                assert!(site.addr >= prev, "sites in ascending address order");
                prev = site.addr;
                assert!(app.placement.code.contains(site.addr));
                // An elidable site's first instruction is the CmpImm whose
                // immediate the linker patched to the app's own bound.
                if site.kind.is_elidable() {
                    let (_, instr) = out
                        .firmware
                        .code
                        .range(site.addr..site.addr + 2)
                        .next()
                        .expect("site address holds an instruction");
                    let Instr::CmpImm { imm, .. } = instr else {
                        panic!("{}: elidable site starts with {instr}", info.name);
                    };
                    let expected = match site.kind {
                        amulet_core::checks::CheckKind::DataPointerLower => {
                            app.placement.data_lower_bound()
                        }
                        amulet_core::checks::CheckKind::DataPointerUpper => {
                            app.placement.upper_bound()
                        }
                        amulet_core::checks::CheckKind::FunctionPointerLower => {
                            app.placement.code_lower_bound()
                        }
                        amulet_core::checks::CheckKind::FunctionPointerUpper => {
                            app.placement.data_lower_bound()
                        }
                        _ => unreachable!(),
                    };
                    assert_eq!(u32::from(*imm), expected, "{}: {}", info.name, site);
                }
            }
        }
    }

    #[test]
    fn per_app_stacks_only_under_pointer_methods() {
        let mpu = link_two(IsolationMethod::Mpu);
        for app in &mpu.firmware.apps {
            assert_eq!(app.initial_sp, app.placement.initial_stack_pointer());
        }
        let fl = link_two(IsolationMethod::FeatureLimited);
        for app in &fl.firmware.apps {
            assert_eq!(app.initial_sp, fl.memory_map.os_initial_stack_pointer());
        }
    }

    #[test]
    fn data_initialisers_are_emitted_at_the_data_region() {
        let out = link_two(IsolationMethod::Mpu);
        let app_b = out.firmware.app("AppB").unwrap();
        let seg = out
            .firmware
            .data
            .iter()
            .find(|s| s.addr == app_b.placement.data.start)
            .expect("AppB data segment present");
        assert_eq!(&seg.bytes[0..8], &[10, 0, 20, 0, 30, 0, 40, 0]);
        assert_eq!(&seg.bytes[8..10], &[4, 0], "array length descriptor");
    }

    #[test]
    fn unknown_handler_is_reported() {
        let mut apps = vec![unit("AppA", APP_A, &["main"], IsolationMethod::Mpu)];
        apps[0].handlers.push("does_not_exist".into());
        let err = link(
            IsolationMethod::Mpu,
            &PlatformSpec::msp430fr5969(),
            &OsImageSpec::default(),
            &apps,
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::Internal { .. }));
    }

    #[test]
    fn recursive_apps_get_the_default_stack_unless_overridden() {
        let src = r#"
            int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
            void main(void) { amulet_log_value(fib(8)); }
        "#;
        let apps = vec![unit("Rec", src, &["main"], IsolationMethod::Mpu)];
        let out = link(
            IsolationMethod::Mpu,
            &PlatformSpec::msp430fr5969(),
            &OsImageSpec::default(),
            &apps,
        )
        .unwrap();
        assert!(out.apps[0].stack_bytes >= DEFAULT_RECURSIVE_STACK_BYTES);

        let mut apps = vec![unit("Rec", src, &["main"], IsolationMethod::Mpu)];
        apps[0].stack_override = Some(1024);
        let out = link(
            IsolationMethod::Mpu,
            &PlatformSpec::msp430fr5969(),
            &OsImageSpec::default(),
            &apps,
        )
        .unwrap();
        assert!(out.apps[0].stack_bytes >= 1024);
    }

    #[test]
    fn mpu_register_values_bracket_each_app() {
        let out = link_two(IsolationMethod::Mpu);
        for app in &out.firmware.apps {
            let amulet_core::mpu_plan::MpuConfig::Segmented(regs) = &app.mpu_config else {
                panic!("FR5969 firmware must carry segmented register values");
            };
            assert_eq!(
                (regs.mpusegb1 as u32) << 4,
                app.placement.data_lower_bound()
            );
            assert_eq!((regs.mpusegb2 as u32) << 4, app.placement.upper_bound());
        }
    }
}
