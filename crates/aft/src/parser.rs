//! Recursive-descent parser for AmuletC.

use crate::ast::{BinOp, Block, Expr, Function, GlobalDecl, Param, Program, Stmt, UnOp};
use crate::token::{lex, Kw, Loc, Tok, Token};
use crate::types::Type;
use std::fmt;

/// A parse error with location information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// Where the error occurred.
    pub loc: Loc,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.loc, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole AmuletC translation unit.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source).map_err(|e| ParseError {
        message: e.message,
        loc: e.loc,
    })?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn loc(&self) -> Loc {
        self.tokens[self.pos].loc
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Tok) -> Result<(), ParseError> {
        if self.peek() == expected {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{expected:?}`, found `{:?}`",
                self.peek()
            )))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            message,
            loc: self.loc(),
        }
    }

    fn at_type_keyword(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw(Kw::Int)
                | Tok::Kw(Kw::Uint)
                | Tok::Kw(Kw::Char)
                | Tok::Kw(Kw::Void)
                | Tok::Kw(Kw::Fnptr)
                | Tok::Kw(Kw::Const)
                | Tok::Kw(Kw::Static)
                | Tok::Kw(Kw::Unsigned)
        )
    }

    // type := (const|static)* (unsigned)? base '*'*
    fn parse_type(&mut self) -> Result<Type, ParseError> {
        // Qualifiers carry no semantic weight in this dialect.
        while matches!(self.peek(), Tok::Kw(Kw::Const) | Tok::Kw(Kw::Static)) {
            self.bump();
        }
        let mut unsigned = false;
        if matches!(self.peek(), Tok::Kw(Kw::Unsigned)) {
            unsigned = true;
            self.bump();
        }
        let base = match self.bump() {
            Tok::Kw(Kw::Int) => {
                if unsigned {
                    Type::Uint
                } else {
                    Type::Int
                }
            }
            Tok::Kw(Kw::Uint) => Type::Uint,
            Tok::Kw(Kw::Char) => Type::Char,
            Tok::Kw(Kw::Void) => Type::Void,
            Tok::Kw(Kw::Fnptr) => Type::FnPtr,
            other => return Err(self.error(format!("expected a type, found `{other:?}`"))),
        };
        let mut ty = base;
        while matches!(self.peek(), Tok::Star) {
            self.bump();
            ty = Type::Ptr(Box::new(ty));
        }
        Ok(ty)
    }

    fn parse_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(name) => Ok(name),
            other => Err(self.error(format!("expected an identifier, found `{other:?}`"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut globals = Vec::new();
        let mut functions = Vec::new();
        while !matches!(self.peek(), Tok::Eof) {
            let loc = self.loc();
            let ty = self.parse_type()?;
            let name = self.parse_ident()?;
            if matches!(self.peek(), Tok::LParen) {
                functions.push(self.function(ty, name, loc)?);
            } else {
                globals.push(self.global(ty, name, loc)?);
            }
        }
        Ok(Program { globals, functions })
    }

    fn global(&mut self, mut ty: Type, name: String, loc: Loc) -> Result<GlobalDecl, ParseError> {
        if matches!(self.peek(), Tok::LBracket) {
            self.bump();
            let len = self.const_int()?;
            self.eat(&Tok::RBracket)?;
            ty = Type::Array(Box::new(ty), len as u32);
        }
        let mut init = Vec::new();
        if matches!(self.peek(), Tok::Assign) {
            self.bump();
            if matches!(self.peek(), Tok::LBrace) {
                self.bump();
                loop {
                    init.push(self.const_int()?);
                    if matches!(self.peek(), Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.eat(&Tok::RBrace)?;
            } else {
                init.push(self.const_int()?);
            }
        }
        self.eat(&Tok::Semi)?;
        Ok(GlobalDecl {
            name,
            ty,
            init,
            loc,
        })
    }

    fn const_int(&mut self) -> Result<i64, ParseError> {
        let negative = if matches!(self.peek(), Tok::Minus) {
            self.bump();
            true
        } else {
            false
        };
        match self.bump() {
            Tok::Int(v) | Tok::Char(v) => Ok(if negative { -v } else { v }),
            other => Err(self.error(format!("expected a constant, found `{other:?}`"))),
        }
    }

    fn function(&mut self, ret: Type, name: String, loc: Loc) -> Result<Function, ParseError> {
        self.eat(&Tok::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            if matches!(self.peek(), Tok::Kw(Kw::Void)) && matches!(self.peek2(), Tok::RParen) {
                self.bump();
            } else {
                loop {
                    let pty = self.parse_type()?;
                    let pname = self.parse_ident()?;
                    params.push(Param {
                        name: pname,
                        ty: pty,
                    });
                    if matches!(self.peek(), Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        self.eat(&Tok::RParen)?;
        let body = self.block()?;
        Ok(Function {
            name,
            ret,
            params,
            body,
            loc,
        })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.eat(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
            stmts.push(self.statement()?);
        }
        self.eat(&Tok::RBrace)?;
        Ok(Block { stmts })
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let loc = self.loc();
        match self.peek() {
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::Kw(Kw::If) => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.expression()?;
                self.eat(&Tok::RParen)?;
                let then_block = self.block_or_single()?;
                let else_block = if matches!(self.peek(), Tok::Kw(Kw::Else)) {
                    self.bump();
                    Some(self.block_or_single()?)
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_block,
                    else_block,
                })
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.expression()?;
                self.eat(&Tok::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let init = if matches!(self.peek(), Tok::Semi) {
                    self.bump();
                    None
                } else if self.at_type_keyword() {
                    Some(Box::new(self.declaration()?))
                } else {
                    let e = self.expression()?;
                    self.eat(&Tok::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if matches!(self.peek(), Tok::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.eat(&Tok::Semi)?;
                let step = if matches!(self.peek(), Tok::RParen) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.eat(&Tok::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let value = if matches!(self.peek(), Tok::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Return { value, loc })
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Break(loc))
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Continue(loc))
            }
            Tok::Kw(Kw::Goto) => {
                self.bump();
                let label = self.parse_ident()?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Goto { label, loc })
            }
            Tok::Kw(Kw::Asm) => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let text = match self.bump() {
                    Tok::Str(s) => s,
                    other => {
                        return Err(
                            self.error(format!("expected a string in asm(), found `{other:?}`"))
                        )
                    }
                };
                self.eat(&Tok::RParen)?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Asm { text, loc })
            }
            _ if self.at_type_keyword() => self.declaration(),
            _ => {
                let e = self.expression()?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    /// A block, or a single statement promoted to a block (so `if (c) x = 1;`
    /// parses as expected).
    fn block_or_single(&mut self) -> Result<Block, ParseError> {
        if matches!(self.peek(), Tok::LBrace) {
            self.block()
        } else {
            Ok(Block {
                stmts: vec![self.statement()?],
            })
        }
    }

    fn declaration(&mut self) -> Result<Stmt, ParseError> {
        let loc = self.loc();
        let mut ty = self.parse_type()?;
        let name = self.parse_ident()?;
        if matches!(self.peek(), Tok::LBracket) {
            self.bump();
            let len = self.const_int()?;
            self.eat(&Tok::RBracket)?;
            ty = Type::Array(Box::new(ty), len as u32);
        }
        let init = if matches!(self.peek(), Tok::Assign) {
            self.bump();
            Some(self.expression()?)
        } else {
            None
        };
        self.eat(&Tok::Semi)?;
        Ok(Stmt::Decl {
            name,
            ty,
            init,
            loc,
        })
    }

    // Expression parsing: assignment is right-associative and lowest
    // precedence; the binary tiers use precedence climbing.
    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.binary(0)?;
        let loc = self.loc();
        match self.peek() {
            Tok::Assign => {
                self.bump();
                let value = self.assignment()?;
                Ok(Expr::Assign {
                    target: Box::new(lhs),
                    value: Box::new(value),
                    op: None,
                    loc,
                })
            }
            Tok::PlusAssign => {
                self.bump();
                let value = self.assignment()?;
                Ok(Expr::Assign {
                    target: Box::new(lhs),
                    value: Box::new(value),
                    op: Some(BinOp::Add),
                    loc,
                })
            }
            Tok::MinusAssign => {
                self.bump();
                let value = self.assignment()?;
                Ok(Expr::Assign {
                    target: Box::new(lhs),
                    value: Box::new(value),
                    op: Some(BinOp::Sub),
                    loc,
                })
            }
            _ => Ok(lhs),
        }
    }

    fn binop_for(tok: &Tok) -> Option<(BinOp, u8)> {
        // Higher binding power binds tighter.
        Some(match tok {
            Tok::OrOr => (BinOp::LogicalOr, 1),
            Tok::AndAnd => (BinOp::LogicalAnd, 2),
            Tok::Pipe => (BinOp::BitOr, 3),
            Tok::Caret => (BinOp::BitXor, 4),
            Tok::Amp => (BinOp::BitAnd, 5),
            Tok::Eq => (BinOp::Eq, 6),
            Tok::Ne => (BinOp::Ne, 6),
            Tok::Lt => (BinOp::Lt, 7),
            Tok::Le => (BinOp::Le, 7),
            Tok::Gt => (BinOp::Gt, 7),
            Tok::Ge => (BinOp::Ge, 7),
            Tok::Shl => (BinOp::Shl, 8),
            Tok::Shr => (BinOp::Shr, 8),
            Tok::Plus => (BinOp::Add, 9),
            Tok::Minus => (BinOp::Sub, 9),
            Tok::Star => (BinOp::Mul, 10),
            Tok::Slash => (BinOp::Div, 10),
            Tok::Percent => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_bp: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some((op, bp)) = Self::binop_for(self.peek()) {
            if bp < min_bp {
                break;
            }
            let loc = self.loc();
            self.bump();
            let rhs = self.binary(bp + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                loc,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let loc = self.loc();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(self.unary()?),
                    loc,
                })
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::LogicalNot,
                    expr: Box::new(self.unary()?),
                    loc,
                })
            }
            Tok::Tilde => {
                self.bump();
                Ok(Expr::Unary {
                    op: UnOp::BitNot,
                    expr: Box::new(self.unary()?),
                    loc,
                })
            }
            Tok::Star => {
                self.bump();
                Ok(Expr::Deref {
                    expr: Box::new(self.unary()?),
                    loc,
                })
            }
            Tok::Amp => {
                self.bump();
                Ok(Expr::AddrOf {
                    expr: Box::new(self.unary()?),
                    loc,
                })
            }
            Tok::PlusPlus => {
                self.bump();
                let target = self.unary()?;
                Ok(Expr::Assign {
                    target: Box::new(target),
                    value: Box::new(Expr::IntLit { value: 1, loc }),
                    op: Some(BinOp::Add),
                    loc,
                })
            }
            Tok::MinusMinus => {
                self.bump();
                let target = self.unary()?;
                Ok(Expr::Assign {
                    target: Box::new(target),
                    value: Box::new(Expr::IntLit { value: 1, loc }),
                    op: Some(BinOp::Sub),
                    loc,
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary()?;
        loop {
            let loc = self.loc();
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let index = self.expression()?;
                    self.eat(&Tok::RBracket)?;
                    expr = Expr::Index {
                        base: Box::new(expr),
                        index: Box::new(index),
                        loc,
                    };
                }
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Tok::RParen) {
                        loop {
                            args.push(self.expression()?);
                            if matches!(self.peek(), Tok::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat(&Tok::RParen)?;
                    expr = Expr::Call {
                        callee: Box::new(expr),
                        args,
                        loc,
                    };
                }
                Tok::PlusPlus => {
                    // Post-increment: compiled as `target = target + 1`; the
                    // benchmark code only uses the value-discarding form.
                    self.bump();
                    expr = Expr::Assign {
                        target: Box::new(expr.clone()),
                        value: Box::new(Expr::IntLit { value: 1, loc }),
                        op: Some(BinOp::Add),
                        loc,
                    };
                }
                Tok::MinusMinus => {
                    self.bump();
                    expr = Expr::Assign {
                        target: Box::new(expr.clone()),
                        value: Box::new(Expr::IntLit { value: 1, loc }),
                        op: Some(BinOp::Sub),
                        loc,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let loc = self.loc();
        match self.bump() {
            Tok::Int(value) | Tok::Char(value) => Ok(Expr::IntLit { value, loc }),
            Tok::Ident(name) => Ok(Expr::Ident { name, loc }),
            Tok::LParen => {
                let e = self.expression()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(ParseError {
                message: format!("unexpected token `{other:?}`"),
                loc,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals_functions_and_arrays() {
        let src = r#"
            int counter = 0;
            uint table[4] = {1, 2, 3, 4};

            int add(int a, int b) {
                return a + b;
            }

            void main(void) {
                counter = add(counter, 1);
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[1].ty, Type::Array(Box::new(Type::Uint), 4));
        assert_eq!(p.globals[1].init, vec![1, 2, 3, 4]);
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.function("add").unwrap().params.len(), 2);
        assert!(p.function("main").unwrap().params.is_empty());
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse("int f() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return {
            value: Some(Expr::Binary { op, rhs, .. }),
            ..
        } = &p.functions[0].body.stmts[0]
        else {
            panic!("expected return of a binary expression");
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_pointers_and_derefs() {
        let src = r#"
            int read(int *p) { return *p; }
            void write(int *p, int v) { *p = v; }
            int takeaddr(int x) { int *q; q = &x; return *q; }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.functions[0].params[0].ty, Type::Ptr(Box::new(Type::Int)));
        assert!(matches!(
            p.functions[0].body.stmts[0],
            Stmt::Return {
                value: Some(Expr::Deref { .. }),
                ..
            }
        ));
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            int f(int n) {
                int total = 0;
                for (int i = 0; i < n; i++) {
                    if (i % 2 == 0) total += i; else total -= 1;
                }
                while (total > 100) { total = total - 10; }
                return total;
            }
        "#;
        let p = parse(src).unwrap();
        let body = &p.functions[0].body;
        assert!(matches!(body.stmts[1], Stmt::For { .. }));
        assert!(matches!(body.stmts[2], Stmt::While { .. }));
    }

    #[test]
    fn parses_function_pointers_and_indirect_calls() {
        let src = r#"
            int twice(int x) { return x + x; }
            int apply(fnptr f, int v) { return f(v); }
            int main() { fnptr g; g = &twice; return apply(g, 21); }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.functions[1].params[0].ty, Type::FnPtr);
    }

    #[test]
    fn parses_goto_and_asm_for_later_rejection() {
        let p = parse("void f() { goto out; asm(\"nop\"); }").unwrap();
        assert!(matches!(p.functions[0].body.stmts[0], Stmt::Goto { .. }));
        assert!(matches!(p.functions[0].body.stmts[1], Stmt::Asm { .. }));
    }

    #[test]
    fn single_statement_bodies_are_promoted_to_blocks() {
        let p = parse("int abs(int x) { if (x < 0) return 0 - x; return x; }").unwrap();
        let Stmt::If { then_block, .. } = &p.functions[0].body.stmts[0] else {
            panic!("expected if");
        };
        assert_eq!(then_block.stmts.len(), 1);
    }

    #[test]
    fn reports_errors_with_location() {
        let err = parse("int f( { }").unwrap_err();
        assert!(err.loc.line >= 1);
        assert!(!err.message.is_empty());
        assert!(parse("int x = ;").is_err());
        assert!(parse("void f() { return 1 + ; }").is_err());
    }

    #[test]
    fn unsigned_int_is_uint() {
        let p = parse("unsigned int x; void f() { }").unwrap();
        assert_eq!(p.globals[0].ty, Type::Uint);
    }

    #[test]
    fn postfix_increment_desugars_to_assignment() {
        let p = parse("void f() { int i = 0; i++; }").unwrap();
        assert!(matches!(
            p.functions[0].body.stmts[1],
            Stmt::Expr(Expr::Assign {
                op: Some(BinOp::Add),
                ..
            })
        ));
    }
}
