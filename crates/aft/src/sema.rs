//! Phase 1 of the AFT's code analysis: legality checking, type checking,
//! feature detection, call-graph construction, stack-depth estimation and
//! memory-access / API-call enumeration.
//!
//! The paper (§3, "AFT Implementation"): *"In the first phase, the AFT checks
//! for any still unsupported language features – such as inline assembly and
//! GOTO statements.  In addition, the AFT enumerates each memory access and
//! OS API call on an app by app basis.  Examination of the application call
//! graph and the stack frame for each function determines the maximum stack
//! size for each app.  In the event of recursion, the maximum stack size
//! cannot be determined."*

use crate::api::ApiSpec;
use crate::ast::{Block, Expr, Function, Program, Stmt};
use crate::error::{AftResult, CompileError};
use crate::types::Type;
use std::collections::{BTreeMap, BTreeSet};

use amulet_core::method::IsolationMethod;

/// Per-function results of the analysis.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FunctionAnalysis {
    /// Bytes of stack the function's frame needs (saved frame pointer,
    /// locals, and the return-address slot pushed by `call`).
    pub frame_bytes: u32,
    /// Names of functions this function calls directly (excluding API
    /// calls).
    pub callees: BTreeSet<String>,
    /// Number of pointer dereferences (reads or writes through a pointer,
    /// including pointer-style array indexing).
    pub pointer_derefs: u32,
    /// Number of accesses to declared arrays (the accesses the Feature
    /// Limited tool guards).
    pub array_accesses: u32,
    /// Number of OS API calls.
    pub api_calls: u32,
    /// Number of calls through function pointers.
    pub fnptr_calls: u32,
    /// Whether the function syntactically uses pointers anywhere.
    pub uses_pointers: bool,
}

impl FunctionAnalysis {
    /// Total memory accesses the isolation machinery must police.
    pub fn memory_accesses(&self) -> u32 {
        self.pointer_derefs + self.array_accesses
    }
}

/// A signature in the function symbol table.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionSig {
    /// Return type.
    pub ret: Type,
    /// Parameter types in order.
    pub params: Vec<Type>,
}

/// Program-wide analysis results for one application.
#[derive(Clone, Debug, PartialEq)]
pub struct Analysis {
    /// Global variables in declaration order with their byte offsets within
    /// the app's data area.
    pub global_offsets: BTreeMap<String, (Type, u32)>,
    /// Total bytes of global data (before the linker adds padding).
    pub globals_bytes: u32,
    /// Function signatures.
    pub signatures: BTreeMap<String, FunctionSig>,
    /// Per-function analysis.
    pub functions: BTreeMap<String, FunctionAnalysis>,
    /// Whether the app uses pointers anywhere.
    pub uses_pointers: bool,
    /// Whether the call graph contains recursion (direct or mutual).
    pub uses_recursion: bool,
    /// Maximum stack usage in bytes starting from any single entry function,
    /// or `None` when recursion makes it impossible to bound.
    pub max_stack_bytes: Option<u32>,
    /// Total counts across all functions (used by the ARP and the report).
    pub total_pointer_derefs: u32,
    /// Total array accesses.
    pub total_array_accesses: u32,
    /// Total API calls.
    pub total_api_calls: u32,
}

/// Analyzes one application's program for the given isolation method.
///
/// Returns an error if the program is ill-typed, refers to unknown names,
/// calls unapproved system functions, or uses features the method forbids.
pub fn analyze(
    app: &str,
    program: &Program,
    api: &ApiSpec,
    method: IsolationMethod,
) -> AftResult<Analysis> {
    let mut a = Analyzer::new(app, program, api, method);
    a.run()?;
    Ok(a.finish())
}

struct Analyzer<'a> {
    app: String,
    program: &'a Program,
    api: &'a ApiSpec,
    method: IsolationMethod,
    global_offsets: BTreeMap<String, (Type, u32)>,
    globals_bytes: u32,
    signatures: BTreeMap<String, FunctionSig>,
    functions: BTreeMap<String, FunctionAnalysis>,
}

/// A lexical scope of local variables.
type Scope = Vec<BTreeMap<String, Type>>;

impl<'a> Analyzer<'a> {
    fn new(app: &str, program: &'a Program, api: &'a ApiSpec, method: IsolationMethod) -> Self {
        Analyzer {
            app: app.to_string(),
            program,
            api,
            method,
            global_offsets: BTreeMap::new(),
            globals_bytes: 0,
            signatures: BTreeMap::new(),
            functions: BTreeMap::new(),
        }
    }

    fn run(&mut self) -> AftResult<()> {
        // Globals: assign data-area offsets in declaration order, word
        // aligned.
        let mut offset = 0u32;
        for g in &self.program.globals {
            if self.global_offsets.contains_key(&g.name) {
                return Err(CompileError::type_error(
                    &self.app,
                    format!("global `{}` declared twice", g.name),
                    g.loc,
                ));
            }
            if matches!(self.method, IsolationMethod::FeatureLimited) && contains_pointer(&g.ty) {
                return Err(self.feature_error("pointer-typed global variable", g.loc));
            }
            let size = g.ty.size_bytes().max(2).div_ceil(2) * 2;
            self.global_offsets
                .insert(g.name.clone(), (g.ty.clone(), offset));
            offset += size;
            // Arrays additionally carry a hidden length word used by the
            // Feature Limited bounds checks (the "array descriptor").
            if matches!(g.ty, Type::Array(..)) {
                offset += 2;
            }
        }
        self.globals_bytes = offset;

        // Function signatures first (so forward references and recursion
        // type-check).
        for f in &self.program.functions {
            if self.signatures.contains_key(&f.name) {
                return Err(CompileError::type_error(
                    &self.app,
                    format!("function `{}` defined twice", f.name),
                    f.loc,
                ));
            }
            if self.api.by_name(&f.name).is_some() {
                return Err(CompileError::type_error(
                    &self.app,
                    format!("function `{}` shadows an OS API function", f.name),
                    f.loc,
                ));
            }
            self.signatures.insert(
                f.name.clone(),
                FunctionSig {
                    ret: f.ret.clone(),
                    params: f.params.iter().map(|p| p.ty.clone()).collect(),
                },
            );
        }

        // Per-function analysis.
        for f in &self.program.functions {
            let analysis = self.analyze_function(f)?;
            self.functions.insert(f.name.clone(), analysis);
        }
        Ok(())
    }

    fn finish(self) -> Analysis {
        let uses_pointers = self.functions.values().any(|f| f.uses_pointers)
            || self
                .global_offsets
                .values()
                .any(|(t, _)| contains_pointer(t));
        let uses_recursion = self.detect_recursion();
        let max_stack_bytes = if uses_recursion {
            None
        } else {
            Some(self.max_stack())
        };
        let total_pointer_derefs = self.functions.values().map(|f| f.pointer_derefs).sum();
        let total_array_accesses = self.functions.values().map(|f| f.array_accesses).sum();
        let total_api_calls = self.functions.values().map(|f| f.api_calls).sum();
        Analysis {
            global_offsets: self.global_offsets,
            globals_bytes: self.globals_bytes,
            signatures: self.signatures,
            functions: self.functions,
            uses_pointers,
            uses_recursion,
            max_stack_bytes,
            total_pointer_derefs,
            total_array_accesses,
            total_api_calls,
        }
    }

    fn detect_recursion(&self) -> bool {
        // DFS with colouring over the call graph.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: BTreeMap<String, Colour> = self
            .functions
            .keys()
            .map(|k| (k.clone(), Colour::White))
            .collect();

        fn visit(
            name: &str,
            functions: &BTreeMap<String, FunctionAnalysis>,
            colour: &mut BTreeMap<String, Colour>,
        ) -> bool {
            match colour.get(name).copied() {
                Some(Colour::Grey) => return true,
                Some(Colour::Black) | None => return false,
                Some(Colour::White) => {}
            }
            colour.insert(name.to_string(), Colour::Grey);
            let mut cyc = false;
            if let Some(f) = functions.get(name) {
                for callee in &f.callees {
                    if visit(callee, functions, colour) {
                        cyc = true;
                        break;
                    }
                }
            }
            colour.insert(name.to_string(), Colour::Black);
            cyc
        }

        let names: Vec<String> = self.functions.keys().cloned().collect();
        names.iter().any(|n| {
            if colour.get(n.as_str()) == Some(&Colour::White) {
                visit(n, &self.functions, &mut colour)
            } else {
                false
            }
        })
    }

    fn max_stack(&self) -> u32 {
        fn depth(
            name: &str,
            functions: &BTreeMap<String, FunctionAnalysis>,
            memo: &mut BTreeMap<String, u32>,
        ) -> u32 {
            if let Some(&d) = memo.get(name) {
                return d;
            }
            let Some(f) = functions.get(name) else {
                return 0;
            };
            let deepest_callee = f
                .callees
                .iter()
                .map(|c| depth(c, functions, memo))
                .max()
                .unwrap_or(0);
            let d = f.frame_bytes + deepest_callee;
            memo.insert(name.to_string(), d);
            d
        }
        let mut memo = BTreeMap::new();
        self.functions
            .keys()
            .map(|n| depth(n, &self.functions, &mut memo))
            .max()
            .unwrap_or(0)
    }

    fn feature_error(&self, feature: &str, loc: crate::token::Loc) -> CompileError {
        CompileError::UnsupportedFeature {
            app: self.app.clone(),
            feature: feature.to_string(),
            loc,
        }
    }

    fn analyze_function(&self, f: &Function) -> AftResult<FunctionAnalysis> {
        let mut out = FunctionAnalysis::default();
        let mut scope: Scope = vec![BTreeMap::new()];
        for p in &f.params {
            if matches!(self.method, IsolationMethod::FeatureLimited) && contains_pointer(&p.ty) {
                return Err(self.feature_error("pointer-typed parameter", f.loc));
            }
            scope
                .last_mut()
                .unwrap()
                .insert(p.name.clone(), p.ty.clone());
        }
        // Frame: saved frame pointer + return address + locals (computed as
        // we walk declarations) + parameters pushed by callers are accounted
        // to the *caller*'s frame via the call-overhead constant below.
        let mut locals_bytes = 0u32;
        self.analyze_block(f, &f.body, &mut scope, &mut out, &mut locals_bytes, 0)?;
        out.frame_bytes = 4 + locals_bytes + 2 * f.params.len() as u32;
        Ok(out)
    }

    fn analyze_block(
        &self,
        f: &Function,
        block: &Block,
        scope: &mut Scope,
        out: &mut FunctionAnalysis,
        locals_bytes: &mut u32,
        loop_depth: u32,
    ) -> AftResult<()> {
        scope.push(BTreeMap::new());
        for stmt in &block.stmts {
            self.analyze_stmt(f, stmt, scope, out, locals_bytes, loop_depth)?;
        }
        scope.pop();
        Ok(())
    }

    fn analyze_stmt(
        &self,
        f: &Function,
        stmt: &Stmt,
        scope: &mut Scope,
        out: &mut FunctionAnalysis,
        locals_bytes: &mut u32,
        loop_depth: u32,
    ) -> AftResult<()> {
        match stmt {
            Stmt::Decl {
                name,
                ty,
                init,
                loc,
            } => {
                if matches!(self.method, IsolationMethod::FeatureLimited) && contains_pointer(ty) {
                    return Err(self.feature_error("pointer-typed local variable", *loc));
                }
                if let Some(init) = init {
                    let ity = self.type_of(f, init, scope, out)?;
                    self.check_assignable(ty, &ity, init.loc())?;
                }
                scope.last_mut().unwrap().insert(name.clone(), ty.clone());
                *locals_bytes += ty.stack_size_bytes();
                if matches!(ty, Type::Array(..)) {
                    *locals_bytes += 2; // hidden length word
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.type_of(f, e, scope, out)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                self.expect_scalar(f, cond, scope, out)?;
                self.analyze_block(f, then_block, scope, out, locals_bytes, loop_depth)?;
                if let Some(e) = else_block {
                    self.analyze_block(f, e, scope, out, locals_bytes, loop_depth)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                self.expect_scalar(f, cond, scope, out)?;
                self.analyze_block(f, body, scope, out, locals_bytes, loop_depth + 1)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                scope.push(BTreeMap::new());
                if let Some(init) = init {
                    self.analyze_stmt(f, init, scope, out, locals_bytes, loop_depth)?;
                }
                if let Some(cond) = cond {
                    self.expect_scalar(f, cond, scope, out)?;
                }
                if let Some(step) = step {
                    self.type_of(f, step, scope, out)?;
                }
                self.analyze_block(f, body, scope, out, locals_bytes, loop_depth + 1)?;
                scope.pop();
                Ok(())
            }
            Stmt::Return { value, loc } => match (value, &f.ret) {
                (None, Type::Void) => Ok(()),
                (Some(_), Type::Void) => Err(CompileError::type_error(
                    &self.app,
                    format!("`{}` returns void but a value is returned", f.name),
                    *loc,
                )),
                (None, _) => Err(CompileError::type_error(
                    &self.app,
                    format!("`{}` must return a value", f.name),
                    *loc,
                )),
                (Some(v), ret) => {
                    let vt = self.type_of(f, v, scope, out)?;
                    self.check_assignable(ret, &vt, *loc)
                }
            },
            Stmt::Break(loc) | Stmt::Continue(loc) => {
                if loop_depth == 0 {
                    Err(CompileError::type_error(
                        &self.app,
                        "break/continue outside a loop",
                        *loc,
                    ))
                } else {
                    Ok(())
                }
            }
            Stmt::Block(b) => self.analyze_block(f, b, scope, out, locals_bytes, loop_depth),
            Stmt::Goto { loc, .. } => Err(self.feature_error("goto statement", *loc)),
            Stmt::Asm { loc, .. } => Err(self.feature_error("inline assembly", *loc)),
        }
    }

    fn expect_scalar(
        &self,
        f: &Function,
        e: &Expr,
        scope: &mut Scope,
        out: &mut FunctionAnalysis,
    ) -> AftResult<()> {
        let t = self.type_of(f, e, scope, out)?;
        if t.is_scalar() {
            Ok(())
        } else {
            Err(CompileError::type_error(
                &self.app,
                format!("expected a scalar condition, found `{t}`"),
                e.loc(),
            ))
        }
    }

    fn check_assignable(&self, dst: &Type, src: &Type, loc: crate::token::Loc) -> AftResult<()> {
        let ok = match (dst, src) {
            (a, b) if a == b => true,
            // Integer conversions are implicit, as in C.
            (a, b) if a.is_arithmetic() && b.is_arithmetic() => true,
            // Pointer/integer mixing is allowed with the usual C looseness;
            // the run-time checks are what actually protect memory.
            (Type::Ptr(_), b) if b.is_scalar() => true,
            (a, Type::Ptr(_)) if a.is_arithmetic() => true,
            (Type::FnPtr, b) if b.is_scalar() => true,
            (Type::Ptr(_), Type::Array(..)) => true,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(CompileError::type_error(
                &self.app,
                format!("cannot assign `{src}` to `{dst}`"),
                loc,
            ))
        }
    }

    fn lookup(&self, name: &str, scope: &Scope) -> Option<Type> {
        for frame in scope.iter().rev() {
            if let Some(t) = frame.get(name) {
                return Some(t.clone());
            }
        }
        self.global_offsets.get(name).map(|(t, _)| t.clone())
    }

    fn type_of(
        &self,
        f: &Function,
        e: &Expr,
        scope: &mut Scope,
        out: &mut FunctionAnalysis,
    ) -> AftResult<Type> {
        match e {
            Expr::IntLit { .. } => Ok(Type::Int),
            Expr::Ident { name, loc } => {
                if let Some(t) = self.lookup(name, scope) {
                    Ok(t)
                } else if self.signatures.contains_key(name) {
                    // A bare function name (for &func or direct calls).
                    Ok(Type::FnPtr)
                } else if self.api.by_name(name).is_some() {
                    Ok(Type::FnPtr)
                } else {
                    Err(CompileError::unknown(&self.app, name.clone(), *loc))
                }
            }
            Expr::Unary { expr, .. } => {
                let t = self.type_of(f, expr, scope, out)?;
                if !t.is_scalar() {
                    return Err(CompileError::type_error(
                        &self.app,
                        format!("unary operator applied to `{t}`"),
                        expr.loc(),
                    ));
                }
                Ok(Type::Int)
            }
            Expr::Binary { op, lhs, rhs, loc } => {
                let lt = self.type_of(f, lhs, scope, out)?;
                let rt = self.type_of(f, rhs, scope, out)?;
                if !lt.is_scalar() && !matches!(lt, Type::Array(..)) {
                    return Err(CompileError::type_error(
                        &self.app,
                        format!("left operand of {op:?} has type `{lt}`"),
                        *loc,
                    ));
                }
                if !rt.is_scalar() && !matches!(rt, Type::Array(..)) {
                    return Err(CompileError::type_error(
                        &self.app,
                        format!("right operand of {op:?} has type `{rt}`"),
                        *loc,
                    ));
                }
                if op.is_comparison() {
                    Ok(Type::Int)
                } else if matches!(lt, Type::Ptr(_)) {
                    // Pointer arithmetic keeps the pointer type.
                    Ok(lt)
                } else if matches!(rt, Type::Ptr(_)) {
                    Ok(rt)
                } else if lt.is_unsigned() || rt.is_unsigned() {
                    Ok(Type::Uint)
                } else {
                    Ok(Type::Int)
                }
            }
            Expr::Assign { target, value, .. } => {
                let tt = self.lvalue_type(f, target, scope, out)?;
                let vt = self.type_of(f, value, scope, out)?;
                self.check_assignable(&tt, &vt, value.loc())?;
                Ok(tt)
            }
            Expr::Index { base, index, loc } => {
                let bt = self.type_of(f, base, scope, out)?;
                let it = self.type_of(f, index, scope, out)?;
                if !it.is_arithmetic() {
                    return Err(CompileError::type_error(
                        &self.app,
                        format!("array index has type `{it}`"),
                        index.loc(),
                    ));
                }
                match bt {
                    Type::Array(elem, _) => {
                        out.array_accesses += 1;
                        Ok(*elem)
                    }
                    Type::Ptr(elem) => {
                        out.pointer_derefs += 1;
                        out.uses_pointers = true;
                        if matches!(self.method, IsolationMethod::FeatureLimited) {
                            return Err(self.feature_error("indexing through a pointer", *loc));
                        }
                        Ok(*elem)
                    }
                    other => Err(CompileError::type_error(
                        &self.app,
                        format!("cannot index a value of type `{other}`"),
                        *loc,
                    )),
                }
            }
            Expr::Call { callee, args, loc } => {
                // Direct call to a local function or an API function?
                if let Expr::Ident { name, .. } = callee.as_ref() {
                    if let Some(sig) = self.signatures.get(name) {
                        if sig.params.len() != args.len() {
                            return Err(CompileError::type_error(
                                &self.app,
                                format!(
                                    "`{name}` expects {} arguments, got {}",
                                    sig.params.len(),
                                    args.len()
                                ),
                                *loc,
                            ));
                        }
                        for (a, p) in args.iter().zip(sig.params.clone()) {
                            let at = self.type_of(f, a, scope, out)?;
                            self.check_assignable(&p, &at, a.loc())?;
                        }
                        out.callees.insert(name.clone());
                        return Ok(sig.ret.clone());
                    }
                    if let Some(api) = self.api.by_name(name) {
                        if api.params.len() != args.len() {
                            return Err(CompileError::type_error(
                                &self.app,
                                format!(
                                    "API `{name}` expects {} arguments, got {}",
                                    api.params.len(),
                                    args.len()
                                ),
                                *loc,
                            ));
                        }
                        for (a, p) in args.iter().zip(api.params.clone()) {
                            let at = self.type_of(f, a, scope, out)?;
                            self.check_assignable(&p, &at, a.loc())?;
                        }
                        out.api_calls += 1;
                        return Ok(api.ret.clone());
                    }
                    // A named call that is neither local nor API: if it looks
                    // like a system call (amulet_ prefix) report it as
                    // unapproved, otherwise as unknown.
                    if name.starts_with("amulet_") || name.starts_with("os_") {
                        return Err(CompileError::UnapprovedApiCall {
                            app: self.app.clone(),
                            name: name.clone(),
                            loc: *loc,
                        });
                    }
                    // Could still be a local fnptr variable called directly.
                    if let Some(t) = self.lookup(name, scope) {
                        if matches!(t, Type::FnPtr | Type::Ptr(_)) {
                            out.fnptr_calls += 1;
                            out.uses_pointers = true;
                            if matches!(self.method, IsolationMethod::FeatureLimited) {
                                return Err(
                                    self.feature_error("call through a function pointer", *loc)
                                );
                            }
                            for a in args {
                                self.type_of(f, a, scope, out)?;
                            }
                            return Ok(Type::Int);
                        }
                        return Err(CompileError::type_error(
                            &self.app,
                            format!("cannot call a value of type `{t}`"),
                            *loc,
                        ));
                    }
                    return Err(CompileError::unknown(&self.app, name.clone(), *loc));
                }
                // Indirect call through an arbitrary expression.
                let ct = self.type_of(f, callee, scope, out)?;
                if !matches!(ct, Type::FnPtr | Type::Ptr(_)) {
                    return Err(CompileError::type_error(
                        &self.app,
                        format!("cannot call a value of type `{ct}`"),
                        *loc,
                    ));
                }
                out.fnptr_calls += 1;
                out.uses_pointers = true;
                if matches!(self.method, IsolationMethod::FeatureLimited) {
                    return Err(self.feature_error("call through a function pointer", *loc));
                }
                for a in args {
                    self.type_of(f, a, scope, out)?;
                }
                Ok(Type::Int)
            }
            Expr::Deref { expr, loc } => {
                out.uses_pointers = true;
                if matches!(self.method, IsolationMethod::FeatureLimited) {
                    return Err(self.feature_error("pointer dereference", *loc));
                }
                let t = self.type_of(f, expr, scope, out)?;
                out.pointer_derefs += 1;
                match t.pointee() {
                    Some(inner) => Ok(inner.clone()),
                    None if t.is_arithmetic() => Ok(Type::Int),
                    None => Err(CompileError::type_error(
                        &self.app,
                        format!("cannot dereference a value of type `{t}`"),
                        *loc,
                    )),
                }
            }
            Expr::AddrOf { expr, loc } => {
                out.uses_pointers = true;
                if matches!(self.method, IsolationMethod::FeatureLimited) {
                    return Err(self.feature_error("address-of operator", *loc));
                }
                match expr.as_ref() {
                    Expr::Ident { name, loc: iloc } => {
                        if let Some(t) = self.lookup(name, scope) {
                            Ok(Type::Ptr(Box::new(t)))
                        } else if self.signatures.contains_key(name) {
                            Ok(Type::FnPtr)
                        } else {
                            Err(CompileError::unknown(&self.app, name.clone(), *iloc))
                        }
                    }
                    Expr::Index { .. } | Expr::Deref { .. } => {
                        let t = self.type_of(f, expr, scope, out)?;
                        Ok(Type::Ptr(Box::new(t)))
                    }
                    _ => Err(CompileError::type_error(
                        &self.app,
                        "can only take the address of a variable, array element or dereference",
                        *loc,
                    )),
                }
            }
        }
    }

    fn lvalue_type(
        &self,
        f: &Function,
        e: &Expr,
        scope: &mut Scope,
        out: &mut FunctionAnalysis,
    ) -> AftResult<Type> {
        match e {
            Expr::Ident { name, loc } => self
                .lookup(name, scope)
                .ok_or_else(|| CompileError::unknown(&self.app, name.clone(), *loc)),
            Expr::Index { .. } | Expr::Deref { .. } => self.type_of(f, e, scope, out),
            other => Err(CompileError::type_error(
                &self.app,
                "expression is not assignable",
                other.loc(),
            )),
        }
    }
}

fn contains_pointer(t: &Type) -> bool {
    match t {
        Type::Ptr(_) | Type::FnPtr => true,
        Type::Array(elem, _) => contains_pointer(elem),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze_src(src: &str, method: IsolationMethod) -> AftResult<Analysis> {
        let program = parse(src).unwrap();
        analyze("TestApp", &program, &ApiSpec::amulet(), method)
    }

    const POINTER_APP: &str = r#"
        int buffer[8];
        int sum(int *p, int n) {
            int total = 0;
            for (int i = 0; i < n; i++) { total += *p; p = p + 1; }
            return total;
        }
        void main(void) {
            buffer[0] = 5;
            int x = sum(&buffer[0], 8);
            amulet_log_value(x);
        }
    "#;

    #[test]
    fn accepts_pointers_under_mpu_and_software_only() {
        for m in [
            IsolationMethod::Mpu,
            IsolationMethod::SoftwareOnly,
            IsolationMethod::NoIsolation,
        ] {
            let a = analyze_src(POINTER_APP, m).unwrap();
            assert!(a.uses_pointers);
            assert!(a.total_pointer_derefs >= 1);
            assert_eq!(a.total_api_calls, 1);
        }
    }

    #[test]
    fn feature_limited_rejects_pointers() {
        let err = analyze_src(POINTER_APP, IsolationMethod::FeatureLimited).unwrap_err();
        assert!(
            matches!(err, CompileError::UnsupportedFeature { .. }),
            "{err}"
        );
    }

    #[test]
    fn feature_limited_accepts_array_only_code_and_counts_accesses() {
        let src = r#"
            int data[16];
            void main(void) {
                for (int i = 0; i < 16; i++) { data[i] = i * 2; }
                amulet_log_value(data[3]);
            }
        "#;
        let a = analyze_src(src, IsolationMethod::FeatureLimited).unwrap();
        assert!(!a.uses_pointers);
        assert_eq!(a.total_array_accesses, 2);
        assert_eq!(a.total_api_calls, 1);
        assert!(!a.uses_recursion);
        assert!(a.max_stack_bytes.is_some());
    }

    #[test]
    fn goto_and_asm_are_rejected_for_every_method() {
        for m in IsolationMethod::ALL {
            let err = analyze_src("void main(void) { goto x; }", m).unwrap_err();
            assert!(matches!(err, CompileError::UnsupportedFeature { .. }));
            let err = analyze_src("void main(void) { asm(\"nop\"); }", m).unwrap_err();
            assert!(matches!(err, CompileError::UnsupportedFeature { .. }));
        }
    }

    #[test]
    fn recursion_is_detected_and_unbounds_the_stack() {
        let src = r#"
            int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
            void main(void) { amulet_log_value(fact(5)); }
        "#;
        let a = analyze_src(src, IsolationMethod::Mpu).unwrap();
        assert!(a.uses_recursion);
        assert_eq!(a.max_stack_bytes, None);
        // Feature Limited forbids recursion only implicitly (it cannot bound
        // the stack); the AFT reports it as an unsupported feature through
        // the builder, but the analysis itself flags it.
        let fl = analyze_src(src, IsolationMethod::FeatureLimited).unwrap();
        assert!(fl.uses_recursion);
    }

    #[test]
    fn mutual_recursion_is_detected() {
        let src = r#"
            int even(int n);
            int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
            int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
            void main(void) { amulet_log_value(is_even(4)); }
        "#;
        // Remove the stray prototype (unsupported syntax) and test mutual
        // recursion.
        let src = src.replace("int even(int n);\n", "");
        let a = analyze_src(&src, IsolationMethod::Mpu).unwrap();
        assert!(a.uses_recursion);
    }

    #[test]
    fn stack_estimate_grows_along_call_chains() {
        let shallow = analyze_src("void main(void) { int x = 1; }", IsolationMethod::Mpu).unwrap();
        let deep = analyze_src(
            r#"
            int leaf(int a) { int buf[8]; buf[0] = a; return buf[0]; }
            int mid(int a) { return leaf(a) + 1; }
            void main(void) { mid(3); }
            "#,
            IsolationMethod::Mpu,
        )
        .unwrap();
        assert!(deep.max_stack_bytes.unwrap() > shallow.max_stack_bytes.unwrap());
    }

    #[test]
    fn unknown_identifiers_and_unapproved_api_calls_are_rejected() {
        assert!(matches!(
            analyze_src("void main(void) { x = 1; }", IsolationMethod::Mpu).unwrap_err(),
            CompileError::Unknown { .. }
        ));
        assert!(matches!(
            analyze_src(
                "void main(void) { amulet_format_disk(); }",
                IsolationMethod::Mpu
            )
            .unwrap_err(),
            CompileError::UnapprovedApiCall { .. }
        ));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(matches!(
            analyze_src("int f() { return; }", IsolationMethod::Mpu).unwrap_err(),
            CompileError::Type { .. }
        ));
        assert!(matches!(
            analyze_src("void f() { return 1; }", IsolationMethod::Mpu).unwrap_err(),
            CompileError::Type { .. }
        ));
        assert!(matches!(
            analyze_src("void f() { break; }", IsolationMethod::Mpu).unwrap_err(),
            CompileError::Type { .. }
        ));
        assert!(matches!(
            analyze_src("int g; void f() { g(); }", IsolationMethod::Mpu).unwrap_err(),
            CompileError::Type { .. }
        ));
    }

    #[test]
    fn api_arity_is_checked() {
        assert!(matches!(
            analyze_src("void f() { amulet_get_time(3); }", IsolationMethod::Mpu).unwrap_err(),
            CompileError::Type { .. }
        ));
    }

    #[test]
    fn globals_get_word_aligned_offsets_and_array_descriptors() {
        let src = "char c; int x; int arr[4]; void main(void) { }";
        let a = analyze_src(src, IsolationMethod::Mpu).unwrap();
        let (_, c_off) = &a.global_offsets["c"];
        let (_, x_off) = &a.global_offsets["x"];
        let (_, arr_off) = &a.global_offsets["arr"];
        assert_eq!(*c_off, 0);
        assert_eq!(*x_off, 2, "char is padded to a word");
        assert_eq!(*arr_off, 4);
        // 8 bytes of elements + 2 bytes of descriptor.
        assert_eq!(a.globals_bytes, 4 + 8 + 2);
    }
}
