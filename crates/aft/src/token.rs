//! Lexical analysis for AmuletC.
//!
//! AmuletC is the ANSI-C dialect accepted by the Amulet Firmware Toolchain.
//! The original Amulet language forbids pointers, recursion, `goto` and
//! inline assembly; this reproduction's front end *accepts* pointer and
//! recursion syntax (the whole point of the paper is to allow them) and the
//! feature-analysis phase then rejects whatever the selected isolation
//! method cannot support.

use std::fmt;

/// A source location (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Loc {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds produced by the lexer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Character literal (already converted to its numeric value).
    Char(i64),
    /// String literal (used only in `asm("...")`, which is then rejected).
    Str(String),
    /// Identifier.
    Ident(String),
    /// Keyword.
    Kw(Kw),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `&`.
    Amp,
    /// `|`.
    Pipe,
    /// `^`.
    Caret,
    /// `~`.
    Tilde,
    /// `!`.
    Bang,
    /// `=`.
    Assign,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `+=`.
    PlusAssign,
    /// `-=`.
    MinusAssign,
    /// `++`.
    PlusPlus,
    /// `--`.
    MinusMinus,
    /// End of input.
    Eof,
}

/// Keywords.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kw {
    /// `int`
    Int,
    /// `uint` (AmuletC shorthand for `unsigned int`)
    Uint,
    /// `char`
    Char,
    /// `void`
    Void,
    /// `fnptr` (AmuletC dialect: a pointer to a function, see DESIGN.md)
    Fnptr,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `goto` (recognised so the feature analysis can reject it)
    Goto,
    /// `asm` (recognised so the feature analysis can reject it)
    Asm,
    /// `const`
    Const,
    /// `unsigned`
    Unsigned,
    /// `static`
    Static,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Char(v) => write!(f, "'{v}'"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Kw(k) => write!(f, "{k:?}").map(|_| ()),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token together with its source location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// Where it started.
    pub loc: Loc,
}

/// A lexical error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// Where the error occurred.
    pub loc: Loc,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.loc, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises AmuletC source text.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    let loc_of = |line: u32, col: u32| Loc { line, col };

    macro_rules! push {
        ($tok:expr, $loc:expr) => {
            tokens.push(Token {
                tok: $tok,
                loc: $loc,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        let loc = loc_of(line, col);
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated block comment".into(),
                            loc,
                        });
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                // Hex literals.
                if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] == 'x' || bytes[i + 1] == 'X') {
                    i += 2;
                    let hstart = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text: String = bytes[hstart..i].iter().collect();
                    let value = i64::from_str_radix(&text, 16).map_err(|_| LexError {
                        message: format!("invalid hex literal `0x{text}`"),
                        loc,
                    })?;
                    col += (i - start) as u32;
                    push!(Tok::Int(value), loc);
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    let value: i64 = text.parse().map_err(|_| LexError {
                        message: format!("invalid integer literal `{text}`"),
                        loc,
                    })?;
                    col += (i - start) as u32;
                    push!(Tok::Int(value), loc);
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                col += (i - start) as u32;
                let tok = match text.as_str() {
                    "int" => Tok::Kw(Kw::Int),
                    "uint" => Tok::Kw(Kw::Uint),
                    "char" => Tok::Kw(Kw::Char),
                    "void" => Tok::Kw(Kw::Void),
                    "fnptr" => Tok::Kw(Kw::Fnptr),
                    "if" => Tok::Kw(Kw::If),
                    "else" => Tok::Kw(Kw::Else),
                    "while" => Tok::Kw(Kw::While),
                    "for" => Tok::Kw(Kw::For),
                    "return" => Tok::Kw(Kw::Return),
                    "break" => Tok::Kw(Kw::Break),
                    "continue" => Tok::Kw(Kw::Continue),
                    "goto" => Tok::Kw(Kw::Goto),
                    "asm" | "__asm__" => Tok::Kw(Kw::Asm),
                    "const" => Tok::Kw(Kw::Const),
                    "unsigned" => Tok::Kw(Kw::Unsigned),
                    "static" => Tok::Kw(Kw::Static),
                    _ => Tok::Ident(text),
                };
                push!(tok, loc);
            }
            '\'' => {
                // Character literal, with a tiny escape set.
                if i + 2 < bytes.len() && bytes[i + 1] == '\\' {
                    let v = match bytes[i + 2] {
                        'n' => b'\n' as i64,
                        't' => b'\t' as i64,
                        '0' => 0,
                        '\\' => b'\\' as i64,
                        '\'' => b'\'' as i64,
                        other => {
                            return Err(LexError {
                                message: format!("unsupported escape `\\{other}`"),
                                loc,
                            })
                        }
                    };
                    if i + 3 >= bytes.len() || bytes[i + 3] != '\'' {
                        return Err(LexError {
                            message: "unterminated char literal".into(),
                            loc,
                        });
                    }
                    i += 4;
                    col += 4;
                    push!(Tok::Char(v), loc);
                } else if i + 2 < bytes.len() && bytes[i + 2] == '\'' {
                    push!(Tok::Char(bytes[i + 1] as i64), loc);
                    i += 3;
                    col += 3;
                } else {
                    return Err(LexError {
                        message: "unterminated char literal".into(),
                        loc,
                    });
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        loc,
                    });
                }
                let text: String = bytes[start..j].iter().collect();
                col += (j + 1 - i) as u32;
                i = j + 1;
                push!(Tok::Str(text), loc);
            }
            _ => {
                // Operators and punctuation.
                let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
                let (tok, len) = match two.as_str() {
                    "==" => (Tok::Eq, 2),
                    "!=" => (Tok::Ne, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "+=" => (Tok::PlusAssign, 2),
                    "-=" => (Tok::MinusAssign, 2),
                    "++" => (Tok::PlusPlus, 2),
                    "--" => (Tok::MinusMinus, 2),
                    _ => {
                        let single = match c {
                            '(' => Tok::LParen,
                            ')' => Tok::RParen,
                            '{' => Tok::LBrace,
                            '}' => Tok::RBrace,
                            '[' => Tok::LBracket,
                            ']' => Tok::RBracket,
                            ';' => Tok::Semi,
                            ',' => Tok::Comma,
                            '+' => Tok::Plus,
                            '-' => Tok::Minus,
                            '*' => Tok::Star,
                            '/' => Tok::Slash,
                            '%' => Tok::Percent,
                            '&' => Tok::Amp,
                            '|' => Tok::Pipe,
                            '^' => Tok::Caret,
                            '~' => Tok::Tilde,
                            '!' => Tok::Bang,
                            '=' => Tok::Assign,
                            '<' => Tok::Lt,
                            '>' => Tok::Gt,
                            other => {
                                return Err(LexError {
                                    message: format!("unexpected character `{other}`"),
                                    loc,
                                })
                            }
                        };
                        (single, 1)
                    }
                };
                i += len;
                col += len as u32;
                push!(tok, loc);
            }
        }
    }
    tokens.push(Token {
        tok: Tok::Eof,
        loc: loc_of(line, col),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_a_small_function() {
        let toks = kinds("int add(int a, int b) { return a + b; }");
        assert_eq!(toks[0], Tok::Kw(Kw::Int));
        assert_eq!(toks[1], Tok::Ident("add".into()));
        assert!(toks.contains(&Tok::Plus));
        assert_eq!(*toks.last().unwrap(), Tok::Eof);
    }

    #[test]
    fn lexes_numbers_in_decimal_and_hex() {
        assert_eq!(kinds("42 0x2A")[..2], [Tok::Int(42), Tok::Int(42)]);
    }

    #[test]
    fn lexes_two_character_operators() {
        let toks = kinds("a <= b && c != d << 2");
        assert!(toks.contains(&Tok::Le));
        assert!(toks.contains(&Tok::AndAnd));
        assert!(toks.contains(&Tok::Ne));
        assert!(toks.contains(&Tok::Shl));
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = lex("// comment\n/* block\ncomment */ int x;").unwrap();
        assert_eq!(toks[0].tok, Tok::Kw(Kw::Int));
        assert_eq!(toks[0].loc.line, 3);
    }

    #[test]
    fn char_literals_and_escapes() {
        assert_eq!(kinds("'a'")[0], Tok::Char('a' as i64));
        assert_eq!(kinds("'\\n'")[0], Tok::Char(10));
        assert_eq!(kinds("'\\0'")[0], Tok::Char(0));
    }

    #[test]
    fn rejects_unknown_characters_and_unterminated_literals() {
        assert!(lex("int x = @;").is_err());
        assert!(lex("'a").is_err());
        assert!(lex("\"abc").is_err());
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn goto_and_asm_are_recognised_keywords() {
        assert_eq!(kinds("goto l;")[0], Tok::Kw(Kw::Goto));
        assert_eq!(kinds("asm(\"nop\");")[0], Tok::Kw(Kw::Asm));
    }
}
