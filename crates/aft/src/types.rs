//! The AmuletC type system.

use std::fmt;

/// An AmuletC type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Type {
    /// `void` (function returns only).
    Void,
    /// Signed 16-bit integer.
    Int,
    /// Unsigned 16-bit integer.
    Uint,
    /// 8-bit character.
    Char,
    /// Pointer to a value of the inner type.
    Ptr(Box<Type>),
    /// Array with a compile-time length.
    Array(Box<Type>, u32),
    /// Pointer to a function (AmuletC `fnptr`).  The signature is not
    /// tracked beyond "callable"; the security argument rests on the bounds
    /// checks, not on C's (unenforced) function-pointer typing.
    FnPtr,
}

impl Type {
    /// Size of a value of this type in bytes.
    pub fn size_bytes(&self) -> u32 {
        match self {
            Type::Void => 0,
            Type::Char => 1,
            Type::Int | Type::Uint | Type::Ptr(_) | Type::FnPtr => 2,
            Type::Array(elem, len) => elem.size_bytes() * len,
        }
    }

    /// Size of this type when it is pushed on the stack or stored in a
    /// register (sub-word types are widened to a word).
    pub fn stack_size_bytes(&self) -> u32 {
        match self {
            Type::Array(..) => self.size_bytes().max(2).div_ceil(2) * 2,
            _ => 2,
        }
    }

    /// Whether the type is an arithmetic scalar.
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, Type::Int | Type::Uint | Type::Char)
    }

    /// Whether the type may appear in a condition or arithmetic context
    /// (scalars and pointers both may, as in C).
    pub fn is_scalar(&self) -> bool {
        self.is_arithmetic() || matches!(self, Type::Ptr(_) | Type::FnPtr)
    }

    /// Whether values of this type are compared / shifted as unsigned.
    pub fn is_unsigned(&self) -> bool {
        matches!(self, Type::Uint | Type::Char | Type::Ptr(_) | Type::FnPtr)
    }

    /// Element type when indexing or dereferencing, if any.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(inner) => Some(inner),
            Type::Array(elem, _) => Some(elem),
            _ => None,
        }
    }

    /// The type of a load of one element (byte vs word).
    pub fn access_width_bytes(&self) -> u32 {
        match self {
            Type::Char => 1,
            _ => 2,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int => write!(f, "int"),
            Type::Uint => write!(f, "uint"),
            Type::Char => write!(f, "char"),
            Type::Ptr(inner) => write!(f, "{inner}*"),
            Type::Array(elem, len) => write!(f, "{elem}[{len}]"),
            Type::FnPtr => write!(f, "fnptr"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Type::Int.size_bytes(), 2);
        assert_eq!(Type::Char.size_bytes(), 1);
        assert_eq!(Type::Ptr(Box::new(Type::Char)).size_bytes(), 2);
        assert_eq!(Type::Array(Box::new(Type::Int), 10).size_bytes(), 20);
        assert_eq!(Type::Array(Box::new(Type::Char), 5).size_bytes(), 5);
        assert_eq!(Type::Array(Box::new(Type::Char), 5).stack_size_bytes(), 6);
    }

    #[test]
    fn classification() {
        assert!(Type::Int.is_arithmetic());
        assert!(!Type::Ptr(Box::new(Type::Int)).is_arithmetic());
        assert!(Type::Ptr(Box::new(Type::Int)).is_scalar());
        assert!(Type::Uint.is_unsigned());
        assert!(!Type::Int.is_unsigned());
        assert!(Type::FnPtr.is_scalar());
    }

    #[test]
    fn pointee_and_width() {
        let p = Type::Ptr(Box::new(Type::Char));
        assert_eq!(p.pointee(), Some(&Type::Char));
        assert_eq!(Type::Char.access_width_bytes(), 1);
        assert_eq!(Type::Int.access_width_bytes(), 2);
        let a = Type::Array(Box::new(Type::Int), 4);
        assert_eq!(a.pointee(), Some(&Type::Int));
        assert_eq!(Type::Int.pointee(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Type::Ptr(Box::new(Type::Int)).to_string(), "int*");
        assert_eq!(Type::Array(Box::new(Type::Uint), 8).to_string(), "uint[8]");
    }
}
