//! End-to-end execution tests: AmuletC source → AFT → firmware → simulated
//! MSP430FR5969 → observed behaviour.
//!
//! These tests drive application handlers directly on the device (without
//! the full AmuletOS scheduler, which has its own crate) and service system
//! calls with a minimal stub, so that they pin down the compiler/simulator
//! contract in isolation.

use amulet_aft::aft::{Aft, AppSource};
use amulet_core::fault::FaultClass;
use amulet_core::method::IsolationMethod;
use amulet_mcu::device::{Device, StopReason};
use amulet_mcu::isa::Reg;

/// Builds a single-app firmware and returns a loaded device plus the app's
/// handler address and initial stack pointer.
fn build_and_load(src: &str, handler: &str, method: IsolationMethod) -> (Device, u32, u32) {
    let out = Aft::new(method)
        .add_app(AppSource::new("TestApp", src, &[handler]))
        .build()
        .unwrap_or_else(|e| panic!("{method}: build failed: {e}"));
    let mut dev = Device::msp430fr5969();
    dev.load_firmware(&out.firmware);
    let app = &out.firmware.apps[0];
    let entry = app.handlers[handler];
    let sp = app.initial_sp;
    (dev, entry, sp)
}

/// Runs a handler to completion, servicing syscalls with canned values.
/// Returns the value left in `R14` (the return-value register) or the fault.
fn run_handler(dev: &mut Device, entry: u32, sp: u32) -> Result<u16, FaultClass> {
    dev.prepare_call(entry, sp);
    for _ in 0..200_000 {
        let exit = dev.run(1_000_000);
        match exit.reason {
            StopReason::HandlerDone | StopReason::Halted => return Ok(dev.cpu.reg(Reg::R14)),
            StopReason::Syscall { num } => {
                // Minimal syscall stub: sensors return 42, time returns
                // 1000, everything else returns 0.
                let ret = match num {
                    amulet_aft::sysno::GET_TIME => 1000,
                    amulet_aft::sysno::READ_SENSOR
                    | amulet_aft::sysno::GET_ACCEL
                    | amulet_aft::sysno::GET_HEART_RATE => 42,
                    _ => 0,
                };
                dev.cpu.set_reg(Reg::R14, ret);
            }
            StopReason::Fault(info) => return Err(info.class),
            StopReason::StepLimit => panic!("program ran away"),
        }
    }
    panic!("handler did not finish");
}

#[test]
fn arithmetic_loops_and_calls_compute_correctly_under_every_method() {
    let src = r#"
        int mul_add(int a, int b, int c) { return a * b + c; }
        int main(void) {
            int total = 0;
            for (int i = 1; i <= 10; i++) { total += i; }
            return mul_add(total, 2, 5);
        }
    "#;
    for method in IsolationMethod::ALL {
        let (mut dev, entry, sp) = build_and_load(src, "main", method);
        let result = run_handler(&mut dev, entry, sp).unwrap();
        assert_eq!(result, 115, "{method}: (1+..+10)*2+5");
    }
}

#[test]
fn pointer_code_produces_identical_results_under_all_pointer_methods() {
    let src = r#"
        int values[6] = {3, 1, 4, 1, 5, 9};
        int sum(int *p, int n) {
            int total = 0;
            for (int i = 0; i < n; i++) { total += *p; p = p + 2; }
            return total;
        }
        int main(void) { return sum(&values[0], 6); }
    "#;
    let mut results = Vec::new();
    for method in [
        IsolationMethod::NoIsolation,
        IsolationMethod::Mpu,
        IsolationMethod::SoftwareOnly,
    ] {
        let (mut dev, entry, sp) = build_and_load(src, "main", method);
        results.push(run_handler(&mut dev, entry, sp).unwrap());
    }
    assert_eq!(results, vec![23, 23, 23]);
}

#[test]
fn global_state_persists_across_handler_invocations() {
    let src = r#"
        int counter = 10;
        int bump(void) { counter += 1; return counter; }
    "#;
    let (mut dev, entry, sp) = build_and_load(src, "bump", IsolationMethod::Mpu);
    assert_eq!(run_handler(&mut dev, entry, sp).unwrap(), 11);
    assert_eq!(run_handler(&mut dev, entry, sp).unwrap(), 12);
    assert_eq!(run_handler(&mut dev, entry, sp).unwrap(), 13);
}

#[test]
fn recursion_works_under_the_mpu_method() {
    let src = r#"
        int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
        int main(void) { return fib(10); }
    "#;
    let (mut dev, entry, sp) = build_and_load(src, "main", IsolationMethod::Mpu);
    assert_eq!(run_handler(&mut dev, entry, sp).unwrap(), 55);
}

#[test]
fn character_arrays_use_byte_accesses() {
    let src = r#"
        char text[6] = {104, 101, 108, 108, 111, 0};
        int main(void) {
            int n = 0;
            while (text[n] != 0) { n++; }
            return n;
        }
    "#;
    for method in [
        IsolationMethod::FeatureLimited,
        IsolationMethod::SoftwareOnly,
    ] {
        let (mut dev, entry, sp) = build_and_load(src, "main", method);
        assert_eq!(run_handler(&mut dev, entry, sp).unwrap(), 5, "{method}");
    }
}

#[test]
fn wild_pointer_below_the_app_faults_under_isolating_methods_only() {
    // 0x4500 lies in the OS code region, well below any app's data.
    let src = r#"
        int main(void) {
            int *p;
            p = 0x4500;
            *p = 7;
            return 1;
        }
    "#;
    for (method, expect_fault) in [
        (IsolationMethod::NoIsolation, false),
        (IsolationMethod::Mpu, true),
        (IsolationMethod::SoftwareOnly, true),
    ] {
        let (mut dev, entry, sp) = build_and_load(src, "main", method);
        let result = run_handler(&mut dev, entry, sp);
        if expect_fault {
            assert_eq!(result, Err(FaultClass::DataPointerLowerBound), "{method}");
        } else {
            assert_eq!(result, Ok(1), "{method}");
        }
    }
}

#[test]
fn pointer_above_the_app_faults_via_software_check_or_mpu_hardware() {
    // 0xF000 lies above the single app's region (towards the top of FRAM).
    let src = r#"
        int main(void) {
            int *p;
            p = 0xF000;
            *p = 7;
            return 1;
        }
    "#;
    // Software Only: the compiler-inserted upper-bound check fires.
    let (mut dev, entry, sp) = build_and_load(src, "main", IsolationMethod::SoftwareOnly);
    assert_eq!(
        run_handler(&mut dev, entry, sp),
        Err(FaultClass::DataPointerUpperBound)
    );

    // MPU: no software upper check is inserted, so without the MPU the write
    // would go through — but with the app's MPU configuration installed the
    // hardware catches it.
    let out = Aft::new(IsolationMethod::Mpu)
        .add_app(AppSource::new("TestApp", src, &["main"]))
        .build()
        .unwrap();
    let mut dev = Device::msp430fr5969();
    dev.load_firmware(&out.firmware);
    let app = &out.firmware.apps[0];
    dev.bus.install_mpu_config(&app.mpu_config).unwrap();
    let (entry, sp) = (app.handlers["main"], app.initial_sp);
    assert_eq!(
        run_handler(&mut dev, entry, sp),
        Err(FaultClass::MpuViolation)
    );

    // No Isolation: the stray write silently lands.
    let (mut dev, entry, sp) = build_and_load(src, "main", IsolationMethod::NoIsolation);
    assert_eq!(run_handler(&mut dev, entry, sp), Ok(1));
}

#[test]
fn array_overrun_faults_under_feature_limited() {
    let src = r#"
        int data[8];
        int main(void) {
            for (int i = 0; i < 20; i++) { data[i] = i; }
            return 1;
        }
    "#;
    let (mut dev, entry, sp) = build_and_load(src, "main", IsolationMethod::FeatureLimited);
    assert_eq!(
        run_handler(&mut dev, entry, sp),
        Err(FaultClass::ArrayBounds)
    );

    // The same overrun under No Isolation scribbles past the array without
    // any fault — exactly the hazard isolation exists to stop.
    let (mut dev, entry, sp) = build_and_load(src, "main", IsolationMethod::NoIsolation);
    assert_eq!(run_handler(&mut dev, entry, sp), Ok(1));
}

#[test]
fn function_pointers_call_through_and_out_of_bounds_targets_fault() {
    let good = r#"
        int triple(int x) { return x * 3; }
        int main(void) {
            fnptr f;
            f = &triple;
            return f(7);
        }
    "#;
    for method in [IsolationMethod::Mpu, IsolationMethod::SoftwareOnly] {
        let (mut dev, entry, sp) = build_and_load(good, "main", method);
        assert_eq!(run_handler(&mut dev, entry, sp).unwrap(), 21, "{method}");
    }

    // A function pointer forged to point below the app's code region is
    // rejected by the lower code-bound check.
    let bad = r#"
        int main(void) {
            fnptr f;
            f = 0x4400;
            return f(7);
        }
    "#;
    for method in [IsolationMethod::Mpu, IsolationMethod::SoftwareOnly] {
        let (mut dev, entry, sp) = build_and_load(bad, "main", method);
        assert_eq!(
            run_handler(&mut dev, entry, sp),
            Err(FaultClass::FunctionPointerLowerBound),
            "{method}"
        );
    }
}

#[test]
fn quicksort_sorts_correctly_when_compiled_by_the_aft() {
    let src = r#"
        int data[16] = {12, 3, 9, 15, 1, 7, 14, 2, 8, 11, 5, 13, 4, 10, 6, 0};

        void swap(int *a, int *b) {
            int t = *a;
            *a = *b;
            *b = t;
        }

        int partition(int *arr, int low, int high) {
            int pivot = arr[high];
            int i = low - 1;
            for (int j = low; j < high; j++) {
                if (arr[j] <= pivot) {
                    i++;
                    swap(&arr[i], &arr[j]);
                }
            }
            swap(&arr[i + 1], &arr[high]);
            return i + 1;
        }

        void quicksort(int *arr, int low, int high) {
            if (low < high) {
                int p = partition(arr, low, high);
                quicksort(arr, low, p - 1);
                quicksort(arr, p + 1, high);
            }
        }

        int main(void) {
            quicksort(&data[0], 0, 15);
            int ok = 1;
            for (int i = 0; i < 16; i++) {
                if (data[i] != i) { ok = 0; }
            }
            return ok;
        }
    "#;
    for method in [
        IsolationMethod::NoIsolation,
        IsolationMethod::Mpu,
        IsolationMethod::SoftwareOnly,
    ] {
        let (mut dev, entry, sp) = build_and_load(src, "main", method);
        assert_eq!(
            run_handler(&mut dev, entry, sp).unwrap(),
            1,
            "{method}: array sorted"
        );
    }
}

#[test]
fn isolation_methods_cost_more_cycles_in_the_expected_order() {
    // A memory-access-heavy kernel: the MPU method (one check per access)
    // must cost less than Software Only (two checks per access); both allow
    // pointers.  No Isolation is the floor.
    let src = r#"
        int buf[32];
        int main(void) {
            int *p;
            int total = 0;
            for (int round = 0; round < 8; round++) {
                p = &buf[0];
                for (int i = 0; i < 32; i++) { *p = i; total += *p; p = p + 2; }
            }
            return total;
        }
    "#;
    let mut cycles = std::collections::BTreeMap::new();
    for method in [
        IsolationMethod::NoIsolation,
        IsolationMethod::Mpu,
        IsolationMethod::SoftwareOnly,
    ] {
        let (mut dev, entry, sp) = build_and_load(src, "main", method);
        let before = dev.cycles();
        run_handler(&mut dev, entry, sp).unwrap();
        cycles.insert(method, dev.cycles() - before);
    }
    let none = cycles[&IsolationMethod::NoIsolation];
    let mpu = cycles[&IsolationMethod::Mpu];
    let sw = cycles[&IsolationMethod::SoftwareOnly];
    assert!(none < mpu, "no-isolation {none} < mpu {mpu}");
    assert!(mpu < sw, "mpu {mpu} < software-only {sw}");
}
