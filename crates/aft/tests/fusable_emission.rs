//! The AFT's stereotyped emission is fusable by construction: the
//! compiler-inserted check sequences, the function prologues and the
//! epilogue heads it emits are exactly the shapes the `amulet-mcu`
//! superinstruction pass matches, so on the check-heavy Software-Only
//! profile every such site collapses into fused dispatches.  This pins
//! the emission side of the fusion contract — if codegen ever reorders
//! or pads these sequences, fusion silently stops firing and this test
//! (not just the benchmark) catches it.

use amulet_aft::aft::{Aft, AppSource};
use amulet_core::checks::CheckKind;
use amulet_core::method::IsolationMethod;
use amulet_mcu::SuperOp;

/// Pointer-dereference-heavy app: every `*p` access carries the
/// Software-Only lower+upper data-pointer check pair.
const CHECKY: &str = r#"
    int buf[16];
    void main(void) { }
    int go(int x) {
        int *p;
        p = &buf[0];
        *p = x;
        p = p + 1;
        *p = x + 1;
        return *p;
    }
"#;

#[test]
fn emitted_check_sites_and_frames_fuse_on_software_only() {
    let out = Aft::new(IsolationMethod::SoftwareOnly)
        .add_app(AppSource::new("Checky", CHECKY, &["main", "go"]))
        .build()
        .expect("build");
    let mut firmware = out.firmware;
    let report = firmware.fuse();
    assert!(report.sequences > 0, "nothing fused at all");
    assert!(report.double_checks > 0);
    assert!(report.prologues > 0);
    assert!(report.epilogues > 0);
    let code = &firmware.code;

    let mut sites = 0usize;
    for app in &out.report.apps {
        for site in &app.check_sites {
            sites += 1;
            let ctx = format!("{}: {site}", app.name);
            match site.kind {
                // Lower-bound checks head a lower+upper pair: one fused
                // double check.
                CheckKind::DataPointerLower | CheckKind::FunctionPointerLower => {
                    assert!(
                        matches!(code.super_op_at(site.addr), Some(SuperOp::Check2(..))),
                        "{ctx}: pair must fuse as a double check"
                    );
                }
                // Upper-bound checks are the second half of that double
                // check (8 bytes in): their own head is a sequence
                // interior, never a second sequence.
                CheckKind::DataPointerUpper | CheckKind::FunctionPointerUpper => {
                    assert!(
                        matches!(code.super_op_at(site.addr - 8), Some(SuperOp::Check2(..))),
                        "{ctx}: must ride its lower pair's double check"
                    );
                    assert!(code.super_op_at(site.addr).is_none(), "{ctx}");
                }
                // The return-address site is Load; (CmpImm+Jcc) ×3 — the
                // three pairs behind the Load fuse as a double check plus
                // a single check.
                CheckKind::ReturnAddress => {
                    let load = code.get(site.addr).expect("site head decodes");
                    let pairs = site.addr + load.size_bytes();
                    assert!(
                        matches!(code.super_op_at(pairs), Some(SuperOp::Check2(..))),
                        "{ctx}: sentinel+lower pairs must fuse"
                    );
                    assert!(
                        matches!(code.super_op_at(pairs + 16), Some(SuperOp::Check(_))),
                        "{ctx}: upper pair must fuse"
                    );
                }
                // Feature Limited only; absent from this build.
                CheckKind::ArrayBounds => {}
            }
        }
    }
    assert!(sites > 0, "the build emitted no check sites");

    // Every function entry point starts with the fused `Push FP;
    // Mov FP ← SP` prologue (code symbols only — data symbols point
    // outside the instruction store).
    let mut entries = 0usize;
    for (name, &addr) in &firmware.symbols {
        if !code.contains(addr) {
            continue;
        }
        entries += 1;
        assert!(
            matches!(code.super_op_at(addr), Some(SuperOp::PushMov { .. })),
            "{name} at {addr:#06x}: prologue must fuse"
        );
    }
    assert!(entries > 0, "no function symbols in the image");
}
