//! Property tests for the compiler/simulator contract:
//!
//! * arbitrary arithmetic expressions compiled by the AFT compute the same
//!   value as a host-side reference evaluation, under every memory model;
//! * quicksort compiled by the AFT sorts arbitrary inputs;
//! * in-bounds accesses never trigger a compiler-inserted check (no false
//!   positives), for arbitrary in-bounds index sequences.

use amulet_aft::aft::{Aft, AppSource};
use amulet_core::method::IsolationMethod;
use amulet_mcu::device::{Device, StopReason};
use amulet_mcu::isa::Reg;
use proptest::prelude::*;

/// Compiles a single-app firmware and runs `handler(payload)` to completion,
/// returning the resulting `R14` (panics on faults / syscalls, which these
/// programs never perform).
fn run(src: &str, handler: &str, payload: u16, method: IsolationMethod) -> u16 {
    let out = Aft::new(method)
        .add_app(AppSource::new("Prop", src, &[handler]))
        .build()
        .unwrap_or_else(|e| panic!("{method}: {e}"));
    let mut dev = Device::msp430fr5969();
    dev.load_firmware(&out.firmware);
    let app = &out.firmware.apps[0];
    let sp = app.initial_sp;
    let arg_sp = sp - 2;
    dev.bus.write_raw(arg_sp, 2, payload);
    dev.prepare_call(app.handlers[handler], arg_sp);
    let exit = dev.run(5_000_000);
    match exit.reason {
        StopReason::HandlerDone | StopReason::Halted => dev.cpu.reg(Reg::R14),
        other => panic!("{method}: unexpected stop {other:?}"),
    }
}

/// Host-side reference semantics for the generated expression (16-bit
/// wrapping arithmetic, like the target).
fn reference(x: i16, a: i16, b: i16, c: i16, shift: u8) -> i16 {
    let mut v = x.wrapping_mul(a);
    v = v.wrapping_add(b);
    v ^= c;
    v = v.wrapping_sub(x >> (shift & 7));
    if v > 100 {
        v = v.wrapping_mul(3);
    } else {
        v = v.wrapping_add(7);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Compiled arithmetic agrees with the reference, for every method that
    /// compiles the program (the program is pointer-free, so all four do).
    #[test]
    fn arithmetic_matches_reference(
        x in -2000i16..2000,
        a in -50i16..50,
        b in -500i16..500,
        c in 0i16..1000,
        shift in 0u8..7,
    ) {
        let src = format!(
            r#"
            int compute(int x) {{
                int v = x * {a} + {b};
                v = v ^ {c};
                v = v - (x >> {shift});
                if (v > 100) {{ v = v * 3; }} else {{ v = v + 7; }}
                return v;
            }}
            "#
        );
        let expected = reference(x, a, b, c, shift) as u16;
        for method in IsolationMethod::ALL {
            let got = run(&src, "compute", x as u16, method);
            prop_assert_eq!(got, expected, "{} compute({})", method, x);
        }
    }

    /// Quicksort compiled by the AFT sorts arbitrary 12-element arrays, and
    /// never faults, under every pointer-capable method.
    #[test]
    fn compiled_quicksort_sorts(values in proptest::collection::vec(0i16..1000, 12)) {
        let init: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        let src = format!(
            r#"
            int data[12] = {{{}}};
            void swap(int *a, int *b) {{ int t = *a; *a = *b; *b = t; }}
            int partition(int *arr, int low, int high) {{
                int pivot = arr[high];
                int i = low - 1;
                for (int j = low; j < high; j++) {{
                    if (arr[j] <= pivot) {{ i++; swap(&arr[i], &arr[j]); }}
                }}
                swap(&arr[i + 1], &arr[high]);
                return i + 1;
            }}
            void qs(int *arr, int low, int high) {{
                if (low < high) {{
                    int p = partition(arr, low, high);
                    qs(arr, low, p - 1);
                    qs(arr, p + 1, high);
                }}
            }}
            int sort_all(int unused) {{
                qs(&data[0], 0, 11);
                int ok = 1;
                for (int i = 1; i < 12; i++) {{
                    if (data[i - 1] > data[i]) {{ ok = 0; }}
                }}
                return ok;
            }}
            "#,
            init.join(", ")
        );
        for method in [IsolationMethod::Mpu, IsolationMethod::SoftwareOnly] {
            prop_assert_eq!(run(&src, "sort_all", 0, method), 1, "{}", method);
        }
    }

    /// In-bounds array accesses never trip a check: walking an 8-element
    /// array with any in-bounds index sequence completes under every method
    /// (no false positives from the inserted checks).
    #[test]
    fn in_bounds_accesses_never_fault(indices in proptest::collection::vec(0u16..8, 1..20)) {
        let body: String = indices
            .iter()
            .map(|i| format!("slots[{i}] = slots[{i}] + 1; total += slots[{i}];"))
            .collect();
        let src = format!(
            r#"
            int slots[8];
            int walk(int unused) {{
                int total = 0;
                {body}
                return total;
            }}
            "#
        );
        for method in IsolationMethod::ALL {
            let got = run(&src, "walk", 0, method);
            prop_assert!(got as usize >= indices.len(), "{}", method);
        }
    }
}
