//! Adversarial application variants for fault-injection campaigns.
//!
//! The paper's central claim is that MPU-backed isolation *contains*
//! misbehaving applications; this module supplies the misbehaviour.  Each
//! [`FaultKind`] names one attack the fleet's seeded `FaultInjector` can
//! draw for a device: wild data-pointer writes into OS RAM, peripheral
//! space, boot ROM, a neighbouring app's data or the interrupt vector
//! table; a wild indirect call into peripheral space; a runaway loop; a
//! stack smasher; and an out-of-bounds array write.
//!
//! The attack *target address* always arrives as the handler payload, so a
//! single static source serves every target space — the fleet layer
//! computes the concrete address from the platform memory map and the
//! firmware's real app placements.  Kinds that need language features an
//! isolation method forbids (pointers, recursion under Feature Limited)
//! are [adapted](FaultKind::adapted_for) to an equivalent attack the
//! method's front end accepts, mirroring how a real adversary is limited
//! to the deployed toolchain.

use crate::catalog::CatalogApp;
use amulet_arp::profile::{AppProfile, HandlerProfile};
use amulet_core::method::IsolationMethod;

/// One attack the fault injector can arm on a device.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum FaultKind {
    /// Wild data-pointer write into the OS stack in SRAM.
    WildWriteOsRam,
    /// Wild data-pointer write into memory-mapped peripheral space.
    WildWritePeripheral,
    /// Wild data-pointer write into the bootstrap-loader ROM.
    WildWriteBootRom,
    /// Wild data-pointer write into another app's data region.
    WildWriteNeighbor,
    /// Wild data-pointer write into the interrupt vector table.
    WildWriteVector,
    /// Wild indirect call through a corrupted function pointer into
    /// peripheral space.
    WildCallPeripheral,
    /// A handler that never returns (bounded only by the OS watchdog).
    RunawayLoop,
    /// Unbounded recursion marching the stack pointer out of the app's
    /// allocation.
    StackSmash,
    /// Out-of-bounds array write (the attack that survives the Feature
    /// Limited front end, which rejects pointers and recursion).
    ArrayOob,
}

impl FaultKind {
    /// Every fault kind, in the order the injector draws them.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::WildWriteOsRam,
        FaultKind::WildWritePeripheral,
        FaultKind::WildWriteBootRom,
        FaultKind::WildWriteNeighbor,
        FaultKind::WildWriteVector,
        FaultKind::WildCallPeripheral,
        FaultKind::RunawayLoop,
        FaultKind::StackSmash,
        FaultKind::ArrayOob,
    ];

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::WildWriteOsRam => "wild-write-os-ram",
            FaultKind::WildWritePeripheral => "wild-write-peripheral",
            FaultKind::WildWriteBootRom => "wild-write-boot-rom",
            FaultKind::WildWriteNeighbor => "wild-write-neighbor",
            FaultKind::WildWriteVector => "wild-write-vector",
            FaultKind::WildCallPeripheral => "wild-call-peripheral",
            FaultKind::RunawayLoop => "runaway-loop",
            FaultKind::StackSmash => "stack-smash",
            FaultKind::ArrayOob => "array-oob",
        }
    }

    /// The kind actually armed on a device compiled with `method`: the
    /// Feature Limited front end rejects pointers and recursion, so every
    /// pointer- or recursion-based attack degrades to the out-of-bounds
    /// array write (its `ArrayBounds` check is exactly the defence the
    /// method stakes its claim on).  Other methods run every kind as-is.
    pub fn adapted_for(self, method: IsolationMethod) -> FaultKind {
        if method == IsolationMethod::FeatureLimited && self != FaultKind::RunawayLoop {
            FaultKind::ArrayOob
        } else {
            self
        }
    }

    /// The adversarial application implementing this kind.  Kinds that
    /// share a source share the app (and therefore the firmware image):
    /// every wild write is the same program aimed at a different payload
    /// address.
    pub fn app(self) -> CatalogApp {
        match self {
            FaultKind::WildWriteOsRam
            | FaultKind::WildWritePeripheral
            | FaultKind::WildWriteBootRom
            | FaultKind::WildWriteNeighbor
            | FaultKind::WildWriteVector => wild_writer(),
            FaultKind::WildCallPeripheral => wild_caller(),
            FaultKind::RunawayLoop => runaway(),
            FaultKind::StackSmash => smasher(),
            FaultKind::ArrayOob => array_oob(),
        }
    }

    /// A payload for trace-driven repeat attacks when the fleet has no
    /// computed target (the controlled probe supplies the real address).
    pub fn default_payload(self) -> u16 {
        match self {
            FaultKind::RunawayLoop => 1,
            FaultKind::StackSmash => 0x4000,
            FaultKind::ArrayOob => 0x3000,
            _ => 0x0020,
        }
    }
}

/// The adversarial apps, one per distinct source (for catalogue listings
/// and exhaustive build tests).
pub fn adversarial_catalog() -> Vec<CatalogApp> {
    vec![
        wild_writer(),
        wild_caller(),
        runaway(),
        smasher(),
        array_oob(),
    ]
}

/// Looks up an adversarial app by name.
pub fn adversarial_by_name(name: &str) -> Option<CatalogApp> {
    adversarial_catalog().into_iter().find(|a| a.name == name)
}

/// The magic value wild writes deposit, so escape checks can find it.
pub const ATTACK_MAGIC: u16 = 0x1234;

fn wild_writer() -> CatalogApp {
    CatalogApp {
        name: "WildWrite",
        source: r#"
            void main(void) { }
            int attack(int where) {
                int *p;
                p = where;
                *p = 4660;
                return 1;
            }
        "#,
        handlers: &["main", "attack"],
        profile: AppProfile::new(
            "WildWrite",
            vec![HandlerProfile::new("attack", 1, 0, 120.0)],
        ),
    }
}

fn wild_caller() -> CatalogApp {
    CatalogApp {
        name: "WildCall",
        source: r#"
            void main(void) { }
            int attack(int where) {
                fnptr f;
                f = where;
                return f(7);
            }
        "#,
        handlers: &["main", "attack"],
        profile: AppProfile::new("WildCall", vec![HandlerProfile::new("attack", 1, 0, 120.0)]),
    }
}

fn runaway() -> CatalogApp {
    CatalogApp {
        name: "Runaway",
        source: r#"
            void main(void) { }
            int attack(int go) {
                int x = 0;
                while (go != 0) { x = x + go; }
                return x;
            }
        "#,
        handlers: &["main", "attack"],
        profile: AppProfile::new("Runaway", vec![HandlerProfile::new("attack", 1, 0, 60.0)]),
    }
}

fn smasher() -> CatalogApp {
    CatalogApp {
        name: "Smash",
        source: r#"
            void main(void) { }
            int attack(int depth) {
                if (depth == 0) { return 0; }
                return 1 + attack(depth - 1);
            }
        "#,
        handlers: &["main", "attack"],
        profile: AppProfile::new("Smash", vec![HandlerProfile::new("attack", 1, 0, 60.0)]),
    }
}

fn array_oob() -> CatalogApp {
    CatalogApp {
        name: "ArrayOob",
        source: r#"
            int a[4];
            void main(void) { }
            int attack(int i) {
                a[i] = 4660;
                return a[0];
            }
        "#,
        handlers: &["main", "attack"],
        profile: AppProfile::new("ArrayOob", vec![HandlerProfile::new("attack", 2, 0, 120.0)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amulet_aft::aft::Aft;

    #[test]
    fn every_kind_has_a_distinct_label() {
        let mut seen = std::collections::HashSet::new();
        for k in FaultKind::ALL {
            assert!(seen.insert(k.label()));
        }
        assert_eq!(seen.len(), FaultKind::ALL.len());
    }

    #[test]
    fn adversarial_apps_compile_under_pointerful_methods() {
        for method in [
            IsolationMethod::NoIsolation,
            IsolationMethod::Mpu,
            IsolationMethod::SoftwareOnly,
        ] {
            for app in adversarial_catalog() {
                let aft = Aft::new(method).add_app(app.app_source());
                aft.build()
                    .unwrap_or_else(|e| panic!("{method}/{}: {e}", app.name));
            }
        }
    }

    #[test]
    fn feature_limited_adaptation_builds_for_every_kind() {
        for kind in FaultKind::ALL {
            let adapted = kind.adapted_for(IsolationMethod::FeatureLimited);
            let app = adapted.app();
            let aft = Aft::new(IsolationMethod::FeatureLimited).add_app(app.app_source());
            aft.build()
                .unwrap_or_else(|e| panic!("{:?} -> {:?}: {e}", kind, adapted));
        }
    }

    #[test]
    fn non_feature_limited_methods_run_kinds_unadapted() {
        for kind in FaultKind::ALL {
            assert_eq!(kind.adapted_for(IsolationMethod::Mpu), kind);
            assert_eq!(kind.adapted_for(IsolationMethod::NoIsolation), kind);
        }
        assert_eq!(
            FaultKind::WildWriteVector.adapted_for(IsolationMethod::FeatureLimited),
            FaultKind::ArrayOob
        );
        assert_eq!(
            FaultKind::RunawayLoop.adapted_for(IsolationMethod::FeatureLimited),
            FaultKind::RunawayLoop
        );
    }

    #[test]
    fn adversarial_names_do_not_collide_with_the_catalog() {
        let names: Vec<&str> = crate::catalog().iter().map(|a| a.name).collect();
        for app in adversarial_catalog() {
            assert!(!names.contains(&app.name), "{} collides", app.name);
        }
    }
}
