//! The benchmark applications from §4.2 of the paper: the Synthetic App
//! (Table 1), the Activity Detection App (Figure 3, cases 1 and 2) and the
//! Quicksort App (Figure 3).
//!
//! The pointer-capable memory models (No Isolation, MPU, Software Only)
//! compile the natural C versions; Feature Limited compiles a ported
//! variant with no pointers and no recursion — exactly the porting burden
//! the paper's approach removes.

use amulet_aft::aft::AppSource;
use amulet_core::method::IsolationMethod;

/// A benchmark application with per-method source variants.
#[derive(Clone, Debug)]
pub struct BenchmarkApp {
    /// Application name.
    pub name: &'static str,
    /// Handlers the harness invokes.
    pub handlers: &'static [&'static str],
    /// Natural (pointer/recursion) source.
    pub pointer_source: &'static str,
    /// Feature Limited port (arrays only, no recursion).
    pub feature_limited_source: &'static str,
    /// Extra stack to reserve (recursion makes the AFT estimate impossible).
    pub stack_override: Option<u32>,
}

impl BenchmarkApp {
    /// The source used for a given memory model.
    pub fn source_for(&self, method: IsolationMethod) -> &'static str {
        if method == IsolationMethod::FeatureLimited {
            self.feature_limited_source
        } else {
            self.pointer_source
        }
    }

    /// The app as toolchain input for a given memory model.
    pub fn app_source(&self, method: IsolationMethod) -> AppSource {
        let mut src = AppSource::new(self.name, self.source_for(method), self.handlers);
        if let Some(stack) = self.stack_override {
            src = src.with_stack(stack);
        }
        src
    }
}

/// The Synthetic App: one handler performing a run of guarded memory
/// accesses, one handler performing a run of OS API calls.  Table 1 divides
/// the measured cycles by the operation count to get per-operation costs.
///
/// The synthetic app must compile under *every* memory model — including
/// Feature Limited — so it is written in the pointer-free common subset;
/// the same source is used for all four builds, which is exactly what makes
/// the per-operation comparison apples-to-apples (only the inserted checks
/// differ between builds).
pub fn synthetic() -> BenchmarkApp {
    const SYNTHETIC_SOURCE: &str = r#"
        int buf[64];
        void main(void) { }
        int mem_ops(int rounds) {
            int total = 0;
            for (int r = 0; r < rounds; r++) {
                for (int i = 0; i < 64; i++) {
                    buf[i] = i;
                    total += buf[i];
                }
            }
            return total;
        }
        int switch_ops(int rounds) {
            for (int r = 0; r < rounds; r++) { amulet_yield(); }
            return rounds;
        }
    "#;
    BenchmarkApp {
        name: "Synthetic",
        handlers: &["main", "mem_ops", "switch_ops"],
        pointer_source: SYNTHETIC_SOURCE,
        feature_limited_source: SYNTHETIC_SOURCE,
        stack_override: None,
    }
}

/// The Activity Detection App.  Case 1 (`case1`) computes windowed
/// mean/variance features over an accelerometer buffer; case 2 (`case2`)
/// runs the activity classifier over the feature history.  Both are
/// memory-access heavy with almost no API calls, which is where the MPU
/// method shines.
pub fn activity_detection() -> BenchmarkApp {
    BenchmarkApp {
        name: "Activity",
        handlers: &["main", "fill", "case1", "case2"],
        pointer_source: r#"
            int samples[64];
            int features[16];
            int history[32];
            int classified = 0;

            void main(void) { }

            int fill(int seed) {
                int v = seed;
                for (int i = 0; i < 64; i++) {
                    v = (v * 13 + 7) % 1024;
                    samples[i] = v;
                }
                return v;
            }

            int case1(int unused) {
                int *p;
                int mean = 0;
                p = &samples[0];
                for (int i = 0; i < 64; i++) { mean += *p; p = p + 2; }
                mean = mean / 64;
                int var = 0;
                p = &samples[0];
                for (int i = 0; i < 64; i++) {
                    int d = *p - mean;
                    var += d * d / 64;
                    p = p + 2;
                }
                features[0] = mean;
                features[1] = var;
                for (int k = 2; k < 16; k++) {
                    features[k] = (features[k - 1] + features[k - 2]) / 2;
                }
                return var;
            }

            int case2(int unused) {
                int *f;
                int score = 0;
                for (int w = 0; w < 8; w++) {
                    f = &features[0];
                    for (int i = 0; i < 16; i++) {
                        score += *f * (i + w);
                        f = f + 2;
                    }
                    history[(w * 4) % 32] = score;
                }
                if (score > 2000) { classified = 1; } else { classified = 0; }
                return classified;
            }
        "#,
        feature_limited_source: r#"
            int samples[64];
            int features[16];
            int history[32];
            int classified = 0;

            void main(void) { }

            int fill(int seed) {
                int v = seed;
                for (int i = 0; i < 64; i++) {
                    v = (v * 13 + 7) % 1024;
                    samples[i] = v;
                }
                return v;
            }

            int case1(int unused) {
                int mean = 0;
                for (int i = 0; i < 64; i++) { mean += samples[i]; }
                mean = mean / 64;
                int var = 0;
                for (int i = 0; i < 64; i++) {
                    int d = samples[i] - mean;
                    var += d * d / 64;
                }
                features[0] = mean;
                features[1] = var;
                for (int k = 2; k < 16; k++) {
                    features[k] = (features[k - 1] + features[k - 2]) / 2;
                }
                return var;
            }

            int case2(int unused) {
                int score = 0;
                for (int w = 0; w < 8; w++) {
                    for (int i = 0; i < 16; i++) {
                        score += features[i] * (i + w);
                    }
                    history[(w * 4) % 32] = score;
                }
                if (score > 2000) { classified = 1; } else { classified = 0; }
                return classified;
            }
        "#,
        stack_override: None,
    }
}

/// The Quicksort App: fills a 64-element array deterministically and sorts
/// it.  Many memory accesses, zero API calls.  The natural version is the
/// classic recursive pointer quicksort; the Feature Limited port is an
/// iterative, array-only variant with an explicit bounds stack.
pub fn quicksort() -> BenchmarkApp {
    BenchmarkApp {
        name: "Quicksort",
        handlers: &["main", "run", "verify"],
        pointer_source: r#"
            int data[64];

            void main(void) { }

            void fill(int seed) {
                int v = seed;
                for (int i = 0; i < 64; i++) {
                    v = (v * 31 + 17) % 997;
                    data[i] = v;
                }
            }

            void swap(int *a, int *b) {
                int t = *a;
                *a = *b;
                *b = t;
            }

            int partition(int *arr, int low, int high) {
                int pivot = arr[high];
                int i = low - 1;
                for (int j = low; j < high; j++) {
                    if (arr[j] <= pivot) {
                        i++;
                        swap(&arr[i], &arr[j]);
                    }
                }
                swap(&arr[i + 1], &arr[high]);
                return i + 1;
            }

            void qsort_range(int *arr, int low, int high) {
                if (low < high) {
                    int p = partition(arr, low, high);
                    qsort_range(arr, low, p - 1);
                    qsort_range(arr, p + 1, high);
                }
            }

            int run(int seed) {
                fill(seed);
                qsort_range(&data[0], 0, 63);
                return data[63];
            }

            int verify(int unused) {
                for (int i = 1; i < 64; i++) {
                    if (data[i - 1] > data[i]) { return 0; }
                }
                return 1;
            }
        "#,
        feature_limited_source: r#"
            int data[64];
            int stack_lo[32];
            int stack_hi[32];

            void main(void) { }

            void fill(int seed) {
                int v = seed;
                for (int i = 0; i < 64; i++) {
                    v = (v * 31 + 17) % 997;
                    data[i] = v;
                }
            }

            int run(int seed) {
                fill(seed);
                int top = 0;
                stack_lo[0] = 0;
                stack_hi[0] = 63;
                top = 1;
                while (top > 0) {
                    top = top - 1;
                    int low = stack_lo[top];
                    int high = stack_hi[top];
                    if (low < high) {
                        int pivot = data[high];
                        int i = low - 1;
                        for (int j = low; j < high; j++) {
                            if (data[j] <= pivot) {
                                i++;
                                int t = data[i];
                                data[i] = data[j];
                                data[j] = t;
                            }
                        }
                        int t = data[i + 1];
                        data[i + 1] = data[high];
                        data[high] = t;
                        int p = i + 1;
                        stack_lo[top] = low;
                        stack_hi[top] = p - 1;
                        top = top + 1;
                        stack_lo[top] = p + 1;
                        stack_hi[top] = high;
                        top = top + 1;
                    }
                }
                return data[63];
            }

            int verify(int unused) {
                for (int i = 1; i < 64; i++) {
                    if (data[i - 1] > data[i]) { return 0; }
                }
                return 1;
            }
        "#,
        stack_override: Some(1024),
    }
}

/// All three benchmark applications.
pub fn all() -> Vec<BenchmarkApp> {
    vec![synthetic(), activity_detection(), quicksort()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use amulet_aft::aft::Aft;
    use amulet_mcu::isa::Reg;
    use amulet_os::os::{AmuletOs, DeliveryOutcome};

    fn run_one(
        app: &BenchmarkApp,
        method: IsolationMethod,
        calls: &[(&str, u16)],
    ) -> (AmuletOs, Vec<u16>) {
        let out = Aft::new(method)
            .add_app(app.app_source(method))
            .build()
            .unwrap();
        let mut os = AmuletOs::new(out.firmware);
        os.boot();
        let mut results = Vec::new();
        for (handler, payload) in calls {
            let (outcome, _) = os.call_handler(0, handler, *payload);
            assert_eq!(outcome, DeliveryOutcome::Completed, "{method}: {handler}");
            results.push(os.device.cpu.reg(Reg::R14));
        }
        (os, results)
    }

    #[test]
    fn synthetic_app_builds_and_runs_under_every_method() {
        for method in IsolationMethod::ALL {
            let app = synthetic();
            let (_, results) = run_one(&app, method, &[("mem_ops", 2), ("switch_ops", 4)]);
            // 2 rounds of sum(0..64) = 2 * 2016 = 4032.
            assert_eq!(results[0], 4032, "{method}");
            assert_eq!(results[1], 4, "{method}");
        }
    }

    #[test]
    fn quicksort_sorts_under_every_method_and_results_agree() {
        let mut finals = Vec::new();
        for method in IsolationMethod::ALL {
            let app = quicksort();
            let (_, results) = run_one(&app, method, &[("run", 3), ("verify", 0)]);
            assert_eq!(results[1], 1, "{method}: sorted");
            finals.push(results[0]);
        }
        // The maximum element is identical regardless of the memory model or
        // of which source variant (recursive vs iterative) was compiled.
        assert!(finals.windows(2).all(|w| w[0] == w[1]), "{finals:?}");
    }

    #[test]
    fn activity_cases_compute_identical_features_across_methods() {
        let mut case1 = Vec::new();
        let mut case2 = Vec::new();
        for method in IsolationMethod::ALL {
            let app = activity_detection();
            let (_, results) = run_one(&app, method, &[("fill", 11), ("case1", 0), ("case2", 0)]);
            case1.push(results[1]);
            case2.push(results[2]);
        }
        assert!(
            case1.windows(2).all(|w| w[0] == w[1]),
            "case1 variance agrees: {case1:?}"
        );
        assert!(
            case2.windows(2).all(|w| w[0] == w[1]),
            "case2 class agrees: {case2:?}"
        );
    }

    #[test]
    fn benchmarks_have_no_api_calls_in_their_hot_handlers() {
        // Figure 3's point: these are memory-access-dominated workloads.
        for method in [IsolationMethod::Mpu, IsolationMethod::SoftwareOnly] {
            for app in [activity_detection(), quicksort()] {
                let out = Aft::new(method)
                    .add_app(app.app_source(method))
                    .build()
                    .unwrap();
                assert_eq!(out.report.apps[0].api_calls, 0, "{}", app.name);
            }
        }
    }

    #[test]
    fn slowdown_ordering_matches_figure3_for_quicksort() {
        // Quicksort has no context switches, so MPU (one check per access)
        // must beat Software Only (two checks), and Feature Limited's
        // heavier array checks must be the slowest.
        let mut cycles = std::collections::BTreeMap::new();
        for method in IsolationMethod::ALL {
            let app = quicksort();
            let out = Aft::new(method)
                .add_app(app.app_source(method))
                .build()
                .unwrap();
            let mut os = AmuletOs::new(out.firmware);
            os.boot();
            let (outcome, spent) = os.call_handler(0, "run", 3);
            assert_eq!(outcome, DeliveryOutcome::Completed);
            cycles.insert(method, spent);
        }
        let none = cycles[&IsolationMethod::NoIsolation];
        let mpu = cycles[&IsolationMethod::Mpu];
        let sw = cycles[&IsolationMethod::SoftwareOnly];
        assert!(none < mpu, "{none} < {mpu}");
        assert!(mpu < sw, "{mpu} < {sw}");
    }
}
