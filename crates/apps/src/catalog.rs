//! The nine Amulet applications used in Figure 2.
//!
//! Each entry carries both an AmuletC implementation (pointer-free, so that
//! it builds under every memory model including Feature Limited) and the
//! resource profile ARP-view uses for the weekly extrapolation: guarded
//! memory accesses per handler invocation, OS API calls per invocation, and
//! the handler's event rate.  The real applications were deployed in user
//! studies; here the rates follow each app's documented sampling behaviour
//! (accelerometer batches at 20–25 Hz, heart rate at 1 Hz, periodic timers
//! for the display apps).

use amulet_aft::aft::AppSource;
use amulet_arp::profile::{AppProfile, HandlerProfile};

/// One catalogued application: source, handlers, and ARP profile.
#[derive(Clone, Debug)]
pub struct CatalogApp {
    /// Application name (Figure 2 x-axis label).
    pub name: &'static str,
    /// AmuletC source.
    pub source: &'static str,
    /// Handler functions the OS may invoke.
    pub handlers: &'static [&'static str],
    /// The ARP profile used for the Figure 2 extrapolation.
    pub profile: AppProfile,
}

impl CatalogApp {
    /// The app as toolchain input.
    pub fn app_source(&self) -> AppSource {
        AppSource::new(self.name, self.source, self.handlers)
    }

    /// The handler driven by this app's dominant event source, with its
    /// per-hour rate (used by the end-to-end Figure 2 path that measures
    /// counts on the simulator instead of trusting the static profile).
    pub fn dominant_handler(&self) -> (&str, f64) {
        let h = self
            .profile
            .handlers
            .iter()
            .max_by(|a, b| {
                (a.invocations_per_hour * a.memory_accesses as f64)
                    .total_cmp(&(b.invocations_per_hour * b.memory_accesses as f64))
            })
            .expect("profiles have at least one handler");
        (&h.name, h.invocations_per_hour)
    }
}

/// Returns all nine applications, in the order Figure 2 lists them.
pub fn catalog() -> Vec<CatalogApp> {
    vec![
        battery_meter(),
        clock(),
        fall_detection(),
        heart_rate(),
        heart_rate_logger(),
        pedometer(),
        rest(),
        sun_exposure(),
        temperature(),
    ]
}

/// Looks up a catalogued app by name.
pub fn by_name(name: &str) -> Option<CatalogApp> {
    catalog().into_iter().find(|a| a.name == name)
}

fn battery_meter() -> CatalogApp {
    CatalogApp {
        name: "BatteryMeter",
        source: r#"
            int history[8];
            int head = 0;
            void main(void) { amulet_set_timer(300); }
            int on_timer(int ms) {
                int level = amulet_get_battery();
                history[head % 8] = level;
                head = head + 1;
                int sum = 0;
                for (int i = 0; i < 8; i++) { sum += history[i]; }
                amulet_display_value(sum / 8);
                amulet_set_timer(300);
                return level;
            }
        "#,
        handlers: &["main", "on_timer"],
        profile: AppProfile::new(
            "BatteryMeter",
            vec![HandlerProfile::new("on_timer", 46, 2, 12.0)],
        ),
    }
}

fn clock() -> CatalogApp {
    CatalogApp {
        name: "Clock",
        source: r#"
            int face[4];
            void main(void) { amulet_set_timer(60); }
            int on_timer(int ms) {
                int t = amulet_get_time();
                face[0] = t / 3600;
                face[1] = (t / 60) % 60;
                face[2] = t % 60;
                face[3] = face[0] * 100 + face[1];
                amulet_display_value(face[3]);
                amulet_set_timer(60);
                return face[3];
            }
        "#,
        handlers: &["main", "on_timer"],
        profile: AppProfile::new("Clock", vec![HandlerProfile::new("on_timer", 46, 2, 60.0)]),
    }
}

fn fall_detection() -> CatalogApp {
    CatalogApp {
        name: "FallDetection",
        source: r#"
            int window[16];
            int head = 0;
            int falls = 0;
            void main(void) { amulet_subscribe(1); }
            int on_accel(int sample) {
                window[head % 16] = sample;
                head = head + 1;
                int peak = 0;
                for (int i = 0; i < 16; i++) {
                    if (window[i] > peak) { peak = window[i]; }
                }
                if (peak > 850) {
                    falls = falls + 1;
                    amulet_log_value(falls);
                }
                return falls;
            }
        "#,
        handlers: &["main", "on_accel"],
        // Accelerometer batches at ~7 Hz; the window scan dominates each batch.
        profile: AppProfile::new(
            "FallDetection",
            vec![HandlerProfile::new("on_accel", 40, 1, 7.0 * 3600.0)],
        ),
    }
}

fn heart_rate() -> CatalogApp {
    CatalogApp {
        name: "HR",
        source: r#"
            int samples[32];
            int head = 0;
            void main(void) { amulet_subscribe(2); }
            int on_hr(int unused) {
                int hr = amulet_get_heart_rate();
                samples[head % 32] = hr;
                head = head + 1;
                if (head % 32 == 0) {
                    int sum = 0;
                    for (int i = 0; i < 32; i++) { sum += samples[i]; }
                    amulet_display_value(sum / 32);
                }
                return hr;
            }
        "#,
        handlers: &["main", "on_hr"],
        // 1 Hz heart-rate sampling with a periodic averaging pass.
        profile: AppProfile::new("HR", vec![HandlerProfile::new("on_hr", 50, 2, 3600.0)]),
    }
}

fn heart_rate_logger() -> CatalogApp {
    CatalogApp {
        name: "HRLog",
        source: r#"
            int buffer[8];
            int fill = 0;
            void main(void) { amulet_subscribe(2); }
            int on_hr(int unused) {
                int hr = amulet_get_heart_rate();
                buffer[fill % 8] = hr;
                fill = fill + 1;
                amulet_log_value(hr);
                amulet_log_value(amulet_get_time());
                if (fill % 2 == 0) {
                    amulet_log_value(buffer[0] + buffer[1]);
                    amulet_log_value(fill);
                }
                return hr;
            }
        "#,
        handlers: &["main", "on_hr"],
        // Few guarded accesses, many API calls per event: the app class the
        // paper says the MPU method does *not* help.
        profile: AppProfile::new("HRLog", vec![HandlerProfile::new("on_hr", 10, 10, 3600.0)]),
    }
}

fn pedometer() -> CatalogApp {
    CatalogApp {
        name: "Pedometer",
        source: r#"
            int window[8];
            int head = 0;
            int steps = 0;
            int rising = 0;
            void main(void) { amulet_subscribe(1); }
            int on_accel(int sample) {
                window[head % 8] = sample;
                head = head + 1;
                int prev = window[(head + 6) % 8];
                if (sample > 600 && prev <= 600) { rising = 1; }
                if (rising == 1 && sample < 300) {
                    steps = steps + 1;
                    rising = 0;
                }
                if (steps % 100 == 0 && steps != 0) { amulet_display_value(steps); }
                return steps;
            }
        "#,
        handlers: &["main", "on_accel"],
        // Accelerometer batches at 5 Hz with a peak-detection pass per batch.
        profile: AppProfile::new(
            "Pedometer",
            vec![HandlerProfile::new("on_accel", 35, 1, 5.0 * 3600.0)],
        ),
    }
}

fn rest() -> CatalogApp {
    CatalogApp {
        name: "Rest",
        source: r#"
            int activity[16];
            int head = 0;
            int resting = 0;
            void main(void) { amulet_set_timer(30); }
            int on_timer(int ms) {
                int light = amulet_get_light();
                int motion = amulet_get_accel(0);
                activity[head % 16] = motion;
                head = head + 1;
                int var = 0;
                for (int i = 0; i < 16; i++) {
                    int d = activity[i] - 300;
                    var += d * d / 256;
                }
                if (var < 20 && light < 50) { resting = resting + 1; } else { resting = 0; }
                if (resting == 10) { amulet_log_value(1); }
                amulet_set_timer(30);
                return resting;
            }
        "#,
        handlers: &["main", "on_timer"],
        profile: AppProfile::new("Rest", vec![HandlerProfile::new("on_timer", 80, 3, 120.0)]),
    }
}

fn sun_exposure() -> CatalogApp {
    CatalogApp {
        name: "Sun",
        source: r#"
            int exposure[24];
            int minutes = 0;
            void main(void) { amulet_set_timer(60); }
            int on_timer(int ms) {
                int light = amulet_get_light();
                int hour = (minutes / 60) % 24;
                if (light > 600) { exposure[hour] = exposure[hour] + 1; }
                minutes = minutes + 1;
                int total = 0;
                for (int i = 0; i < 24; i++) { total += exposure[i]; }
                if (total > 120) { amulet_log_value(total); }
                amulet_set_timer(60);
                return total;
            }
        "#,
        handlers: &["main", "on_timer"],
        profile: AppProfile::new("Sun", vec![HandlerProfile::new("on_timer", 50, 2, 60.0)]),
    }
}

fn temperature() -> CatalogApp {
    CatalogApp {
        name: "Temperature",
        source: r#"
            int readings[8];
            int head = 0;
            void main(void) { amulet_set_timer(120); }
            int on_timer(int ms) {
                int t = amulet_get_temperature();
                readings[head % 8] = t;
                head = head + 1;
                int smooth = 0;
                for (int i = 0; i < 8; i++) { smooth += readings[i]; }
                amulet_display_value(smooth / 8);
                amulet_set_timer(120);
                return smooth / 8;
            }
        "#,
        handlers: &["main", "on_timer"],
        profile: AppProfile::new(
            "Temperature",
            vec![HandlerProfile::new("on_timer", 48, 2, 30.0)],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amulet_aft::aft::Aft;
    use amulet_core::method::IsolationMethod;

    #[test]
    fn all_nine_figure2_apps_are_present_in_order() {
        let names: Vec<&str> = catalog().iter().map(|a| a.name).collect();
        assert_eq!(
            names,
            vec![
                "BatteryMeter",
                "Clock",
                "FallDetection",
                "HR",
                "HRLog",
                "Pedometer",
                "Rest",
                "Sun",
                "Temperature"
            ]
        );
    }

    #[test]
    fn every_app_compiles_under_every_memory_model() {
        for method in IsolationMethod::ALL {
            let mut aft = Aft::new(method);
            for app in catalog() {
                aft = aft.add_app(app.app_source());
            }
            let out = aft.build().unwrap_or_else(|e| panic!("{method}: {e}"));
            assert_eq!(out.firmware.apps.len(), 9, "{method}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("Pedometer").is_some());
        assert!(by_name("NotAnApp").is_none());
    }

    #[test]
    fn profiles_span_compute_heavy_and_os_heavy_apps() {
        let apps = catalog();
        let ratios: Vec<f64> = apps
            .iter()
            .map(|a| a.profile.access_to_switch_ratio())
            .collect();
        assert!(ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max) > 5.0);
        assert!(ratios.iter().cloned().fold(f64::INFINITY, f64::min) < 2.0);
    }

    #[test]
    fn dominant_handler_is_the_hot_one() {
        let ped = pedometer();
        let (name, rate) = ped.dominant_handler();
        assert_eq!(name, "on_accel");
        assert!(rate > 1000.0);
    }
}
