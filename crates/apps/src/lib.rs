//! # amulet-apps
//!
//! The application suite for the memory-isolation reproduction: the nine
//! Amulet applications whose isolation overhead Figure 2 extrapolates
//! (BatteryMeter, Clock, FallDetection, HR, HRLog, Pedometer, Rest, Sun,
//! Temperature) and the three §4.2 benchmark applications (Synthetic,
//! Activity Detection, Quicksort) behind Table 1 and Figure 3 — each as
//! AmuletC source plus ARP resource profiles — plus seeded event-arrival
//! [`traces`] that turn the catalogue's rates into the event-driven
//! workloads the fleet simulator replays.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod benchmarks;
pub mod catalog;
pub mod traces;

pub use adversarial::{adversarial_by_name, adversarial_catalog, FaultKind};
pub use benchmarks::{activity_detection, quicksort, synthetic, BenchmarkApp};
pub use catalog::{by_name, catalog, CatalogApp};
pub use traces::TraceEvent;
