//! Seeded event-arrival trace generators.
//!
//! The paper evaluates isolation overhead one handler invocation at a time;
//! fleet-scale studies need realistic **event-driven workloads**: many
//! applications on one device, each firing at its own rate, with the bursty
//! arrival patterns real sensors produce (an accelerometer delivers batches
//! of samples, a heart-rate sensor one reading at a time).  A
//! [`generate`]d trace turns each app's ARP profile rates into a merged,
//! time-ordered stream of `(app, handler, payload)` events that the OS
//! scheduler can deliver — and that batched delivery can amortise, because
//! bursts put consecutive same-app events at the head of the queue.
//!
//! Generation is fully deterministic for a given seed: the same inputs
//! always produce the identical trace, which is what makes fleet runs
//! reproducible across worker counts and machines.

use crate::catalog::CatalogApp;

/// One event arrival in a generated trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Arrival time in milliseconds since the trace start.
    pub at_ms: u64,
    /// Index of the destination application (position in the app mix the
    /// trace was generated for).
    pub app_index: usize,
    /// Handler to invoke (the app's dominant handler).
    pub handler: String,
    /// Handler argument.
    pub payload: u16,
}

/// A tiny deterministic RNG (xorshift64*), kept local so trace generation
/// has no dependencies and never changes behind our backs.
#[derive(Clone, Debug)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 {
            state: seed | 1, // never zero
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)` (`bound` ≥ 1).
    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// How many events one arrival of `handler` contributes: sensor streams
/// deliver small bursts (an accelerometer batch), everything else a single
/// event.
fn burst_len(handler: &str, rng: &mut XorShift64) -> usize {
    if handler.starts_with("on_accel") {
        2 + rng.below(3) as usize // 2–4 samples per batch
    } else {
        1
    }
}

/// A plausible payload for the handler: raw sensor counts for sensor
/// streams, the elapsed period for timers.
fn payload_for(handler: &str, period_ms: u64, rng: &mut XorShift64) -> u16 {
    if handler.starts_with("on_accel") {
        rng.below(1024) as u16
    } else if handler.starts_with("on_timer") {
        period_ms.min(u16::MAX as u64) as u16
    } else {
        rng.below(256) as u16
    }
}

/// Generates a deterministic, time-ordered event trace for a device running
/// `apps`, using each app's dominant-handler rate from its ARP profile.
///
/// Arrival times follow each handler's mean period with ±25 % seeded
/// jitter; sensor handlers arrive in small bursts.  The merged stream is
/// sorted by `(time, app_index)` and truncated to `events` entries.
///
/// ```
/// let apps = amulet_apps::catalog();
/// let a = amulet_apps::traces::generate(&apps[..3], 42, 100);
/// let b = amulet_apps::traces::generate(&apps[..3], 42, 100);
/// assert_eq!(a, b, "same seed, same trace");
/// assert_eq!(a.len(), 100);
/// assert!(a.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
/// ```
pub fn generate(apps: &[CatalogApp], seed: u64, events: usize) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = Vec::new();
    for (app_index, app) in apps.iter().enumerate() {
        let (handler, per_hour) = app.dominant_handler();
        let handler = handler.to_string();
        // Mean period between arrivals, floored at 1 ms so degenerate
        // profiles still make progress.
        let period_ms = ((3_600_000.0 / per_hour.max(1e-6)) as u64).max(1);
        let mut rng =
            XorShift64::new(seed ^ (app_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut t = rng.below(period_ms);
        // Generate more than enough arrivals for the merged, truncated
        // stream; each app can contribute at most `events` entries.
        let mut produced = 0usize;
        while produced < events {
            for _ in 0..burst_len(&handler, &mut rng) {
                all.push(TraceEvent {
                    at_ms: t,
                    app_index,
                    handler: handler.clone(),
                    payload: payload_for(&handler, period_ms, &mut rng),
                });
                produced += 1;
                if produced >= events {
                    break;
                }
            }
            // ±25 % jitter around the mean period.
            let jitter_span = (period_ms / 2).max(1);
            t += period_ms - period_ms / 4 + rng.below(jitter_span);
        }
    }
    // Stable merge: ties broken by app index so the order never depends on
    // the per-app generation order above.
    all.sort_by_key(|e| (e.at_ms, e.app_index));
    all.truncate(events);
    all
}

/// The arrival span of a trace in milliseconds: the timestamp of its last
/// event (0 for an empty trace).  A time-stepped replay's virtual clock
/// ends at or after this point — handlers still run after the final
/// arrival — so the span is the lower bound on simulated wall-clock time.
pub fn span_ms(trace: &[TraceEvent]) -> u64 {
    trace.last().map_or(0, |e| e.at_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::catalog;

    #[test]
    fn traces_are_deterministic_and_time_ordered() {
        let apps = catalog();
        let a = generate(&apps, 7, 200);
        let b = generate(&apps, 7, 200);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let apps = catalog();
        assert_ne!(generate(&apps, 1, 100), generate(&apps, 2, 100));
    }

    #[test]
    fn high_rate_sensor_apps_dominate_and_arrive_in_bursts() {
        let apps = catalog();
        // FallDetection (7 Hz accelerometer) must out-number Clock
        // (once a minute) and produce runs of consecutive same-app events
        // — the pattern batched delivery amortises.
        let trace = generate(&apps, 3, 500);
        let fall = apps.iter().position(|a| a.name == "FallDetection").unwrap();
        let clock = apps.iter().position(|a| a.name == "Clock").unwrap();
        let count = |i| trace.iter().filter(|e| e.app_index == i).count();
        assert!(count(fall) > 10 * count(clock).max(1));
        let has_run = trace.windows(2).any(|w| w[0].app_index == w[1].app_index);
        assert!(has_run, "bursts produce consecutive same-app events");
    }

    #[test]
    fn payloads_fit_their_handlers() {
        let apps = catalog();
        for e in generate(&apps, 11, 300) {
            if e.handler.starts_with("on_accel") {
                assert!(e.payload < 1024);
            }
        }
    }

    #[test]
    fn single_app_traces_work() {
        let apps = catalog();
        let trace = generate(&apps[..1], 5, 50);
        assert_eq!(trace.len(), 50);
        assert!(trace.iter().all(|e| e.app_index == 0));
    }

    #[test]
    fn span_is_the_last_arrival() {
        let apps = catalog();
        let trace = generate(&apps, 7, 120);
        assert_eq!(span_ms(&trace), trace.last().unwrap().at_ms);
        assert!(span_ms(&trace) > 0, "a 120-event mixed trace spans time");
        assert_eq!(span_ms(&[]), 0);
    }
}
