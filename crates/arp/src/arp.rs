//! Overhead extrapolation and ARP-view reporting (the machinery behind
//! Figure 2).

use crate::profile::AppProfile;
use amulet_core::energy::{BatteryModel, EnergyModel};
use amulet_core::method::IsolationMethod;
use amulet_core::overhead::{OverheadBreakdown, OverheadModel};
use std::fmt;

/// The extrapolated isolation overhead of one application under one method.
#[derive(Clone, Debug, PartialEq)]
pub struct OverheadEstimate {
    /// Application name.
    pub app: String,
    /// Isolation method.
    pub method: IsolationMethod,
    /// Where the overhead cycles come from.
    pub breakdown: OverheadBreakdown,
    /// Total overhead cycles per week.
    pub cycles_per_week: u64,
    /// The same, in billions (the Figure 2 left axis).
    pub billions_of_cycles_per_week: f64,
    /// Extra energy per week in joules.
    pub joules_per_week: f64,
    /// Battery-lifetime impact in percent (the Figure 2 right axis).
    pub battery_impact_percent: f64,
}

/// The Amulet Resource Profiler: combines profiles, the per-operation
/// overhead model, and the energy/battery model.
#[derive(Clone, Debug)]
pub struct Arp {
    /// Energy model used for the cycles → joules conversion.
    pub energy: EnergyModel,
    /// Battery model used for the impact percentage.
    pub battery: BatteryModel,
}

impl Default for Arp {
    fn default() -> Self {
        Arp {
            energy: EnergyModel::msp430fr5969(),
            battery: BatteryModel::amulet(),
        }
    }
}

impl Arp {
    /// Creates a profiler with explicit models.
    pub fn new(energy: EnergyModel, battery: BatteryModel) -> Self {
        Arp { energy, battery }
    }

    /// Creates a profiler whose energy model matches the given platform
    /// (the battery is a property of the wearable, not the MCU, so the
    /// Amulet battery model is kept).
    pub fn for_platform(platform: &amulet_core::layout::PlatformSpec) -> Self {
        Arp {
            energy: EnergyModel::for_platform(platform),
            battery: BatteryModel::amulet(),
        }
    }

    /// Estimates the weekly isolation overhead of one app under one method
    /// **on a specific platform**: the per-operation costs come from the
    /// platform's check policy and switch-cost model.
    pub fn estimate_on(
        &self,
        platform: &amulet_core::layout::PlatformSpec,
        profile: &AppProfile,
        method: IsolationMethod,
    ) -> OverheadEstimate {
        let model = OverheadModel::for_platform(method, platform);
        let counts = profile.weekly_counts();
        let breakdown = model.overhead(counts);
        let cycles = breakdown.total();
        let joules = self.energy.cycles_to_joules(cycles);
        OverheadEstimate {
            app: profile.name.clone(),
            method,
            breakdown,
            cycles_per_week: cycles,
            billions_of_cycles_per_week: cycles as f64 / 1e9,
            joules_per_week: joules,
            battery_impact_percent: self.battery.impact_percent(joules),
        }
    }

    /// Estimates the weekly isolation overhead of one app under one method.
    pub fn estimate(&self, profile: &AppProfile, method: IsolationMethod) -> OverheadEstimate {
        let model = OverheadModel::for_method(method);
        let counts = profile.weekly_counts();
        let breakdown = model.overhead(counts);
        let cycles = breakdown.total();
        let joules = self.energy.cycles_to_joules(cycles);
        OverheadEstimate {
            app: profile.name.clone(),
            method,
            breakdown,
            cycles_per_week: cycles,
            billions_of_cycles_per_week: cycles as f64 / 1e9,
            joules_per_week: joules,
            battery_impact_percent: self.battery.impact_percent(joules),
        }
    }

    /// Estimates every app under every isolating method (the full Figure 2
    /// data set).
    pub fn figure2(&self, profiles: &[AppProfile]) -> Vec<OverheadEstimate> {
        let mut rows = Vec::new();
        for p in profiles {
            for method in IsolationMethod::ISOLATING {
                rows.push(self.estimate(p, method));
            }
        }
        rows
    }

    /// Renders the Figure 2 data as an ARP-view style text table.
    pub fn render_figure2(&self, profiles: &[AppProfile]) -> ArpView {
        ArpView {
            rows: self.figure2(profiles),
        }
    }
}

/// A renderable ARP-view report.
#[derive(Clone, Debug, PartialEq)]
pub struct ArpView {
    /// One row per (app, method).
    pub rows: Vec<OverheadEstimate>,
}

impl ArpView {
    /// The largest battery impact in the report (the paper's headline claim
    /// is that this stays below 0.5 %).
    pub fn max_battery_impact_percent(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.battery_impact_percent)
            .fold(0.0, f64::max)
    }

    /// Rows for a single app.
    pub fn for_app(&self, app: &str) -> Vec<&OverheadEstimate> {
        self.rows.iter().filter(|r| r.app == app).collect()
    }
}

impl fmt::Display for ArpView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:<16} {:>14} {:>12} {:>10}",
            "application", "memory model", "Gcycles/week", "J/week", "battery %"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<16} {:<16} {:>14.3} {:>12.3} {:>10.4}",
                r.app,
                r.method.label(),
                r.billions_of_cycles_per_week,
                r.joules_per_week,
                r.battery_impact_percent
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::HandlerProfile;

    fn pedometer_like() -> AppProfile {
        // 20 Hz accelerometer batches, ~40 guarded accesses per batch, one
        // API call per batch.
        AppProfile::new(
            "Pedometer",
            vec![HandlerProfile::new("on_accel", 40, 1, 20.0 * 3600.0)],
        )
    }

    fn chatty_logger() -> AppProfile {
        // Few accesses, many API calls: the kind of app the paper says the
        // MPU method does *not* help.
        AppProfile::new("HRLog", vec![HandlerProfile::new("on_hr", 6, 8, 3600.0)])
    }

    #[test]
    fn no_isolation_has_zero_overhead() {
        let arp = Arp::default();
        let e = arp.estimate(&pedometer_like(), IsolationMethod::NoIsolation);
        assert_eq!(e.cycles_per_week, 0);
        assert_eq!(e.battery_impact_percent, 0.0);
    }

    #[test]
    fn figure2_has_one_row_per_app_and_method() {
        let arp = Arp::default();
        let rows = arp.figure2(&[pedometer_like(), chatty_logger()]);
        assert_eq!(rows.len(), 2 * IsolationMethod::ISOLATING.len());
    }

    #[test]
    fn battery_impact_stays_below_half_a_percent() {
        // The paper's headline claim, for profiles at realistic rates.
        let arp = Arp::default();
        let view = arp.render_figure2(&[pedometer_like(), chatty_logger()]);
        assert!(
            view.max_battery_impact_percent() < 0.5,
            "{}",
            view.max_battery_impact_percent()
        );
        assert!(view.max_battery_impact_percent() > 0.0);
    }

    #[test]
    fn compute_heavy_apps_prefer_mpu_os_heavy_apps_prefer_software_only() {
        let arp = Arp::default();
        let ped = pedometer_like();
        let mpu = arp.estimate(&ped, IsolationMethod::Mpu).cycles_per_week;
        let sw = arp
            .estimate(&ped, IsolationMethod::SoftwareOnly)
            .cycles_per_week;
        assert!(mpu < sw, "memory-heavy: MPU {mpu} < SW {sw}");

        let log = chatty_logger();
        let mpu = arp.estimate(&log, IsolationMethod::Mpu).cycles_per_week;
        let sw = arp
            .estimate(&log, IsolationMethod::SoftwareOnly)
            .cycles_per_week;
        assert!(sw < mpu, "switch-heavy: SW {sw} < MPU {mpu}");
    }

    #[test]
    fn feature_limited_pays_for_every_array_access() {
        let arp = Arp::default();
        let ped = pedometer_like();
        let fl = arp.estimate(&ped, IsolationMethod::FeatureLimited);
        let mpu = arp.estimate(&ped, IsolationMethod::Mpu);
        assert!(fl.breakdown.memory_access_cycles > mpu.breakdown.memory_access_cycles);
        // Feature Limited shares the stack and skips MPU reconfiguration, so
        // its switch overhead is zero.
        assert_eq!(fl.breakdown.context_switch_cycles, 0);
    }

    #[test]
    fn report_renders_every_app_and_method() {
        let arp = Arp::default();
        let view = arp.render_figure2(&[pedometer_like(), chatty_logger()]);
        let text = view.to_string();
        assert!(text.contains("Pedometer"));
        assert!(text.contains("HRLog"));
        assert!(text.contains("MPU"));
        assert!(text.contains("Software Only"));
        assert_eq!(view.for_app("Pedometer").len(), 3);
    }
}
