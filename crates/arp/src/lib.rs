//! # amulet-arp
//!
//! The Amulet Resource Profiler (ARP) and ARP-view: per-application resource
//! profiles (memory accesses and context switches per handler, event rates),
//! extrapolation of weekly isolation-overhead cycles for each memory model,
//! and conversion to energy and battery-lifetime impact — the machinery
//! behind Figure 2 of "Application Memory Isolation on Ultra-Low-Power MCUs"
//! (USENIX ATC 2018).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod profile;

pub use arp::{Arp, ArpView, OverheadEstimate};
pub use profile::{AppProfile, HandlerProfile, SECONDS_PER_WEEK};
