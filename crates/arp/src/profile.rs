//! Application resource profiles.
//!
//! The Amulet Resource Profiler (ARP) counts the number of memory accesses
//! and context switches per state and transition of each application, and
//! ARP-view combines those counts with the developer-declared rates of
//! environmental, user and timer events.  A [`AppProfile`] is exactly that
//! information for one application.

use amulet_core::overhead::OpCounts;

/// Seconds in a week (the extrapolation window used by Figure 2).
pub const SECONDS_PER_WEEK: f64 = 7.0 * 24.0 * 3600.0;

/// Resource counts for one event handler (one state-machine transition).
#[derive(Clone, Debug, PartialEq)]
pub struct HandlerProfile {
    /// Handler (transition) name.
    pub name: String,
    /// Application data-memory accesses per invocation (pointer dereferences
    /// or array accesses — the accesses the isolation machinery polices).
    pub memory_accesses: u64,
    /// OS API calls per invocation.
    pub api_calls: u64,
    /// Invocations per hour (event rate from ARP-view's rate model).
    pub invocations_per_hour: f64,
}

impl HandlerProfile {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        memory_accesses: u64,
        api_calls: u64,
        invocations_per_hour: f64,
    ) -> Self {
        HandlerProfile {
            name: name.into(),
            memory_accesses,
            api_calls,
            invocations_per_hour,
        }
    }

    /// Context switches per invocation: the event delivery itself plus one
    /// round trip per API call.
    pub fn context_switches(&self) -> u64 {
        1 + self.api_calls
    }

    /// Invocations in one week.
    pub fn invocations_per_week(&self) -> u64 {
        (self.invocations_per_hour * 24.0 * 7.0).round() as u64
    }

    /// Operation counts accumulated over one week.
    pub fn weekly_counts(&self) -> OpCounts {
        let inv = self.invocations_per_week();
        OpCounts::new(self.memory_accesses * inv, self.context_switches() * inv)
    }
}

/// The complete resource profile of one application.
#[derive(Clone, Debug, PartialEq)]
pub struct AppProfile {
    /// Application name (as shown on the Figure 2 x-axis).
    pub name: String,
    /// Per-handler profiles.
    pub handlers: Vec<HandlerProfile>,
}

impl AppProfile {
    /// Creates a profile.
    pub fn new(name: impl Into<String>, handlers: Vec<HandlerProfile>) -> Self {
        AppProfile {
            name: name.into(),
            handlers,
        }
    }

    /// Total operation counts over one week.
    pub fn weekly_counts(&self) -> OpCounts {
        self.handlers.iter().fold(OpCounts::default(), |acc, h| {
            acc.saturating_add(h.weekly_counts())
        })
    }

    /// Total handler invocations per week.
    pub fn weekly_invocations(&self) -> u64 {
        self.handlers.iter().map(|h| h.invocations_per_week()).sum()
    }

    /// Ratio of memory accesses to context switches — the quantity that
    /// decides whether the MPU method or the Software Only method wins for
    /// this app (§4.2).
    pub fn access_to_switch_ratio(&self) -> f64 {
        let counts = self.weekly_counts();
        if counts.context_switches == 0 {
            f64::INFINITY
        } else {
            counts.memory_accesses as f64 / counts.context_switches as f64
        }
    }

    /// Derives a profile from counts measured on the simulator: `handler`
    /// ran once with the given measured memory accesses and API calls, and
    /// is expected to fire `invocations_per_hour` times per hour.
    pub fn from_measurement(
        app: impl Into<String>,
        handler: impl Into<String>,
        measured_memory_accesses: u64,
        measured_api_calls: u64,
        invocations_per_hour: f64,
    ) -> Self {
        AppProfile::new(
            app,
            vec![HandlerProfile::new(
                handler,
                measured_memory_accesses,
                measured_api_calls,
                invocations_per_hour,
            )],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekly_counts_scale_with_rate_and_per_event_cost() {
        let h = HandlerProfile::new("tick", 10, 2, 60.0); // once a minute
        assert_eq!(h.context_switches(), 3);
        assert_eq!(h.invocations_per_week(), 60 * 24 * 7);
        let counts = h.weekly_counts();
        assert_eq!(counts.memory_accesses, 10 * 60 * 24 * 7);
        assert_eq!(counts.context_switches, 3 * 60 * 24 * 7);
    }

    #[test]
    fn app_profile_sums_handlers() {
        let app = AppProfile::new(
            "HR",
            vec![
                HandlerProfile::new("sample", 40, 1, 3600.0),
                HandlerProfile::new("report", 200, 5, 60.0),
            ],
        );
        let total = app.weekly_counts();
        let a = HandlerProfile::new("sample", 40, 1, 3600.0).weekly_counts();
        let b = HandlerProfile::new("report", 200, 5, 60.0).weekly_counts();
        assert_eq!(total.memory_accesses, a.memory_accesses + b.memory_accesses);
        assert_eq!(
            total.context_switches,
            a.context_switches + b.context_switches
        );
    }

    #[test]
    fn ratio_distinguishes_compute_heavy_from_os_heavy_apps() {
        let compute = AppProfile::new("Quick", vec![HandlerProfile::new("run", 10_000, 0, 10.0)]);
        let osy = AppProfile::new("Chatty", vec![HandlerProfile::new("run", 5, 20, 10.0)]);
        assert!(compute.access_to_switch_ratio() > 1000.0);
        assert!(osy.access_to_switch_ratio() < 1.0);
    }

    #[test]
    fn from_measurement_builds_a_single_handler_profile() {
        let p = AppProfile::from_measurement("Pedometer", "on_accel", 123, 4, 7200.0);
        assert_eq!(p.handlers.len(), 1);
        assert_eq!(
            p.weekly_counts().memory_accesses,
            123 * p.weekly_invocations()
        );
    }
}
