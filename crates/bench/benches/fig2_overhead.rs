//! Criterion bench for the Figure 2 extrapolation (ARP arithmetic over the
//! nine-application catalogue).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    group.bench_function("extrapolate_nine_apps", |b| {
        b.iter(|| std::hint::black_box(amulet_bench::fig2::compute()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
