//! Criterion bench for the Figure 3 slowdown measurement (small iteration
//! count so the bench itself stays quick; the `fig3` binary runs the full
//! 200-iteration version).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("measure_three_workloads", |b| {
        b.iter(|| std::hint::black_box(amulet_bench::fig3::measure(3)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
