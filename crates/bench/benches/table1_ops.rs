//! Criterion bench for the Table 1 operations: the cost of measuring one
//! memory-access run and one context-switch run per memory model.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("measure_all_methods", |b| {
        b.iter(|| std::hint::black_box(amulet_bench::table1::measure(8)))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
