//! Ablation studies for design decisions called out in the paper.
//!
//! * **Stacks** (§3): the paper gives each app its own stack region instead
//!   of sharing one stack and `bzero`-ing it on every app change.  The
//!   ablation measures what that zeroing would cost.
//! * **Advanced MPU** (§5): with an MPU that supports four or more regions
//!   and full coverage, no compiler-inserted checks would be needed at all.
//!   The ablation splits the MPU method's measured slowdown into the part
//!   caused by the remaining lower-bound checks (which an advanced MPU
//!   removes) and the part caused by MPU reconfiguration at context switches
//!   (which remains).

use amulet_aft::aft::{Aft, AppSource};
use amulet_core::method::IsolationMethod;
use amulet_os::os::{AmuletOs, DeliveryOutcome, OsOptions};
use std::fmt::Write as _;

/// Result of the shared-stack-zeroing ablation.
#[derive(Clone, Debug)]
pub struct StackAblationRow {
    /// Configuration label.
    pub config: String,
    /// Average cycles per delivered event.
    pub cycles_per_event: f64,
}

/// Measures the per-event cost of three stack arrangements while two apps
/// alternate: per-app stacks (the paper's design, MPU method), a shared
/// stack with no scrubbing (unsafe), and a shared stack zeroed on every app
/// change (the safe alternative the paper rejects).
pub fn stack_ablation(events: u32) -> Vec<StackAblationRow> {
    let app_src = |name: &str| {
        AppSource::new(
            name,
            r#"
            int counter = 0;
            void main(void) { }
            int on_tick(int d) {
                int scratch[8];
                for (int i = 0; i < 8; i++) { scratch[i] = counter + i; }
                counter += scratch[7] - scratch[0];
                return counter;
            }
            "#,
            &["main", "on_tick"],
        )
    };
    let build = |method: IsolationMethod| {
        Aft::new(method)
            .add_app(app_src("Alpha"))
            .add_app(app_src("Beta"))
            .build()
            .unwrap()
            .firmware
    };
    let run = |mut os: AmuletOs, label: &str| -> StackAblationRow {
        os.boot();
        let before = os.total_cycles();
        for i in 0..events {
            let (outcome, _) = os.call_handler((i % 2) as usize, "on_tick", 1);
            assert_eq!(outcome, DeliveryOutcome::Completed, "{label}");
        }
        StackAblationRow {
            config: label.to_string(),
            cycles_per_event: (os.total_cycles() - before) as f64 / events.max(1) as f64,
        }
    };

    vec![
        run(
            AmuletOs::new(build(IsolationMethod::Mpu)),
            "per-app stacks (MPU method)",
        ),
        run(
            AmuletOs::new(build(IsolationMethod::FeatureLimited)),
            "shared stack, no scrubbing (unsafe)",
        ),
        run(
            AmuletOs::with_options(
                build(IsolationMethod::FeatureLimited),
                OsOptions {
                    zero_shared_stack: true,
                    ..OsOptions::default()
                },
            ),
            "shared stack, bzero on every app change",
        ),
    ]
}

/// Renders the stack ablation.
pub fn render_stack_ablation(rows: &[StackAblationRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Ablation A — per-app stacks vs shared stack (cycles per delivered event)"
    );
    for r in rows {
        let _ = writeln!(s, "{:<44} {:>10.1}", r.config, r.cycles_per_event);
    }
    s
}

/// Result of the advanced-MPU ablation for one workload.
#[derive(Clone, Debug)]
pub struct AdvancedMpuRow {
    /// Workload name.
    pub workload: String,
    /// Measured slowdown of the real MPU method (checks + reconfiguration).
    pub mpu_slowdown_percent: f64,
    /// Projected slowdown with an advanced MPU: the lower-bound checks are
    /// removed, only the context-switch reconfiguration cost remains.
    pub advanced_mpu_slowdown_percent: f64,
    /// Share of the MPU method's overhead attributable to the remaining
    /// compiler-inserted checks (what an advanced MPU would eliminate).
    pub check_share_percent: f64,
}

/// Computes the advanced-MPU ablation from the Figure 3 measurements.
pub fn advanced_mpu_ablation(iterations: u16) -> Vec<AdvancedMpuRow> {
    let rows = crate::fig3::measure(iterations);
    let mut out = Vec::new();
    let workload_names: Vec<String> = {
        let mut names: Vec<String> = rows.iter().map(|r| r.workload.clone()).collect();
        names.dedup();
        names
    };
    for name in workload_names {
        let get = |m: IsolationMethod| {
            rows.iter()
                .find(|r| r.workload == name && r.method == m)
                .unwrap()
        };
        let base = get(IsolationMethod::NoIsolation).cycles as f64;
        let mpu = get(IsolationMethod::Mpu).cycles as f64;
        let overhead = (mpu - base).max(0.0);
        // The switch-reconfiguration share of the overhead: switches per run
        // × the per-switch premium.  These workloads make no API calls, so
        // the only switches are the per-iteration event deliveries; estimate
        // their share by re-deriving it from the analytic plan.
        let switch_premium =
            amulet_core::switch::ContextSwitchPlan::round_trip_cycles(IsolationMethod::Mpu)
                - amulet_core::switch::ContextSwitchPlan::round_trip_cycles(
                    IsolationMethod::NoIsolation,
                );
        let switch_cycles = (iterations as u64 * switch_premium) as f64;
        let check_cycles = (overhead - switch_cycles).max(0.0);
        let mpu_slowdown = overhead / base * 100.0;
        let advanced_slowdown = switch_cycles.min(overhead) / base * 100.0;
        out.push(AdvancedMpuRow {
            workload: name,
            mpu_slowdown_percent: mpu_slowdown,
            advanced_mpu_slowdown_percent: advanced_slowdown,
            check_share_percent: if overhead > 0.0 {
                check_cycles / overhead * 100.0
            } else {
                0.0
            },
        });
    }
    out
}

/// Renders the advanced-MPU ablation.
pub fn render_advanced_mpu(rows: &[AdvancedMpuRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Ablation B — how much of the MPU method's slowdown an advanced MPU would remove"
    );
    let _ = writeln!(
        s,
        "{:<18} {:>14} {:>18} {:>14}",
        "workload", "MPU slowdown%", "advanced-MPU %", "checks' share%"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<18} {:>14.1} {:>18.1} {:>14.1}",
            r.workload,
            r.mpu_slowdown_percent,
            r.advanced_mpu_slowdown_percent,
            r.check_share_percent
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroing_a_shared_stack_is_the_most_expensive_arrangement() {
        let rows = stack_ablation(20);
        assert_eq!(rows.len(), 3);
        let per_app = rows[0].cycles_per_event;
        let shared = rows[1].cycles_per_event;
        let zeroed = rows[2].cycles_per_event;
        // Scrubbing the shared stack dwarfs both alternatives; per-app stacks
        // cost more than an unscrubbed shared stack only through the MPU
        // method's switch premium.
        assert!(zeroed > per_app, "zeroed {zeroed} > per-app {per_app}");
        assert!(zeroed > shared * 2.0, "zeroed {zeroed} >> shared {shared}");
    }

    #[test]
    fn advanced_mpu_removes_most_check_overhead_for_compute_workloads() {
        let rows = advanced_mpu_ablation(5);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.advanced_mpu_slowdown_percent <= r.mpu_slowdown_percent + 1e-9,
                "{r:?}"
            );
            assert!((0.0..=100.0).contains(&r.check_share_percent), "{r:?}");
        }
        // Quicksort has no API calls, so nearly all of its MPU overhead is
        // the compiler's lower-bound checks.
        let quick = rows.iter().find(|r| r.workload == "Quicksort").unwrap();
        assert!(quick.check_share_percent > 60.0, "{quick:?}");
    }

    #[test]
    fn renders_are_non_empty() {
        assert!(render_stack_ablation(&stack_ablation(4)).contains("bzero"));
        assert!(render_advanced_mpu(&advanced_mpu_ablation(2)).contains("Quicksort"));
    }
}
