//! Ablation B: how much of the MPU method's slowdown an "advanced MPU"
//! (4+ regions, full coverage — §5 future work) would remove.
//!
//! Usage: `cargo run -p amulet-bench --bin ablation_advanced_mpu [iterations]` (default 50).

fn main() {
    let iterations: u16 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let rows = amulet_bench::ablation::advanced_mpu_ablation(iterations);
    print!("{}", amulet_bench::ablation::render_advanced_mpu(&rows));
}
