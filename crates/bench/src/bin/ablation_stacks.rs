//! Ablation A: per-app stacks vs a shared stack that must be zeroed on every
//! app change (§3 design decision).
//!
//! Usage: `cargo run -p amulet-bench --bin ablation_stacks [events]` (default 200).

fn main() {
    let events: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let rows = amulet_bench::ablation::stack_ablation(events);
    print!("{}", amulet_bench::ablation::render_stack_ablation(&rows));
}
