//! Regenerates Figure 2 of the paper: weekly isolation overhead and battery
//! impact for the nine Amulet applications.
//!
//! Usage: `cargo run -p amulet-bench --bin fig2`.

fn main() {
    let rows = amulet_bench::fig2::compute();
    print!("{}", amulet_bench::fig2::render(&rows));
    println!();
    println!("{}", amulet_bench::fig2::arp_view());
}
