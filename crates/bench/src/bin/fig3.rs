//! Regenerates Figure 3 of the paper: percentage slowdown of the benchmark
//! applications under each memory-isolation method.
//!
//! Usage: `cargo run -p amulet-bench --bin fig3 [iterations]` (default 200).

fn main() {
    let iterations: u16 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let rows = amulet_bench::fig3::measure(iterations);
    print!("{}", amulet_bench::fig3::render(&rows));
}
