//! Static firmware verifier over a fleet catalogue: builds every distinct
//! firmware image the given scenario would deploy, runs the `amulet-verify`
//! CFG + abstract-interpretation passes on each, and prints one
//! deterministic text document — per-image verdicts plus fleet-wide
//! counters.
//!
//! Usage:
//! `firmware_lint [--devices N] [--seed N] [--preset scaling|storm]
//!  [--workers N] [--out FILE]`
//! (defaults: the scaling preset at 1000 devices, one worker per host
//! core).
//!
//! Exit codes: 0 when every image passes the verify gate (no reachable
//! access proven to escape its isolation plan), 1 when any image fails
//! the gate, 2 on a usage error.  CI runs the benign scaling catalogue
//! and requires exit 0; the document itself is pinned by a golden
//! fixture (`BLESS_GOLDEN=1` re-blesses it after a reviewed verifier
//! change).

use amulet_bench::lint::lint_document;
use amulet_fleet::FleetScenario;
use std::path::PathBuf;

const USAGE: &str = "usage: firmware_lint [--devices N] [--seed N] \
     [--preset scaling|storm] [--workers N] [--out FILE]";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut devices: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut workers: Option<usize> = None;
    let mut preset = "scaling".to_string();
    let mut out: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| -> String {
        it.next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
    };
    let num = |flag: &str, s: &str| -> usize {
        s.parse()
            .unwrap_or_else(|_| fail(&format!("{flag}: not a number: {s:?}")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--devices" => devices = Some(num("--devices", &value("--devices", &mut it))),
            "--seed" => seed = Some(num("--seed", &value("--seed", &mut it)) as u64),
            "--workers" => workers = Some(num("--workers", &value("--workers", &mut it))),
            "--preset" => preset = value("--preset", &mut it),
            "--out" => out = Some(PathBuf::from(value("--out", &mut it))),
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    let n = devices.unwrap_or(1000);
    let mut scenario = match preset.as_str() {
        "scaling" => FleetScenario::scaling(n),
        "storm" => FleetScenario::storm(n),
        other => fail(&format!("unknown preset {other:?}")),
    };
    if let Some(s) = seed {
        scenario.seed = s;
    }
    let workers = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });

    let (doc, summary) = lint_document(&scenario, workers);
    print!("{doc}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &doc) {
            fail(&format!("could not write {}: {e}", path.display()));
        }
        eprintln!("wrote {}", path.display());
    }
    std::process::exit(if summary.passes_gate() { 0 } else { 1 });
}
