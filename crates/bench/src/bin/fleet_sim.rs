//! Fleet-scale simulation bench: simulates ≥ 1000 seeded devices in
//! parallel and emits the aggregate report (energy distribution,
//! switch-overhead share, fault counts, battery-impact histograms, and the
//! per-event vs batched delivery comparison) as `BENCH_fleet.json` — both
//! on stdout and to the file.
//!
//! Usage: `cargo run -p amulet-bench --bin fleet_sim --release
//! [devices] [workers] [events_per_device] [seed] [mode]`
//! (defaults: 1000 devices, one worker per host core, 120 events, the
//! scenario's default seed, `arrival-order`).  `mode` is `arrival-order`
//! (or `arrival`) for the classic untimed report, `stepped` for the
//! virtual-clock report with LPM idle energy, duty cycle,
//! delivery-latency percentiles and the battery-lifetime projection.

use amulet_fleet::{simulate, FleetScenario, TimeMode};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut arg = |d: u64| -> u64 {
        args.next_if(|s| s.parse::<u64>().is_ok())
            .and_then(|s| s.parse().ok())
            .unwrap_or(d)
    };
    let default_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4) as u64;

    let mut scenario = FleetScenario::default();
    scenario.devices = arg(scenario.devices as u64) as usize;
    let workers = arg(default_workers) as usize;
    scenario.events_per_device = arg(scenario.events_per_device as u64) as usize;
    scenario.seed = arg(scenario.seed);
    scenario.time_mode = match args.next().as_deref() {
        Some("stepped") => TimeMode::Stepped,
        Some("arrival-order") | Some("arrival") | None => TimeMode::ArrivalOrder,
        Some(other) => {
            eprintln!(
                "unknown mode {other:?}: use `arrival-order` or `stepped` \
                 (usage: fleet_sim [devices] [workers] [events_per_device] [seed] [mode])"
            );
            std::process::exit(2);
        }
    };
    if let Some(extra) = args.next() {
        eprintln!(
            "unexpected trailing argument {extra:?} \
             (usage: fleet_sim [devices] [workers] [events_per_device] [seed] [mode])"
        );
        std::process::exit(2);
    }

    let started = Instant::now();
    let report = simulate(&scenario, workers);
    let wall = started.elapsed().as_secs_f64();

    let json = amulet_bench::fleet_sim::render_json(&report, Some(wall));
    print!("{json}");
    if let Err(e) = std::fs::write("BENCH_fleet.json", &json) {
        eprintln!("warning: could not write BENCH_fleet.json: {e}");
    } else {
        eprintln!(
            "wrote BENCH_fleet.json ({} devices, {workers} workers, {} mode, {:.2}s, {:.0} devices/s)",
            scenario.devices,
            scenario.time_mode.label(),
            wall,
            scenario.devices as f64 / wall.max(1e-9),
        );
    }
}
