//! Fleet-scale simulation bench: simulates seeded device fleets and emits
//! the aggregate report (energy distribution, switch-overhead share, fault
//! counts, battery-impact histograms, and the per-event vs batched
//! delivery comparison) as `BENCH_fleet.json` — both on stdout and to the
//! file.
//!
//! Usage (positional form, unchanged since PR 3):
//! `fleet_sim [devices] [workers] [events_per_device] [seed] [mode]`
//! (defaults: 1000 devices, one worker per host core, 120 events, the
//! scenario's default seed, `arrival-order`).
//!
//! Flag form (mixable with positionals; flags win):
//! `--devices N --workers N --events N --seed N --mode arrival-order|stepped
//!  --silent-permille N --preset scaling --summary --linear --no-write`
//!
//! * `--preset scaling` starts from [`FleetScenario::scaling`] — the
//!   mostly-silent, windowed campaign the scaling study runs — before
//!   the other flags apply.  `--preset storm` starts from
//!   [`FleetScenario::storm`]: the fault-injection campaign (adversarial
//!   apps, watchdog restart policy, OTA re-install wave), whose report
//!   gains `containment` and `ota_wave` aggregate sections.
//! * `--fault-permille N`, `--ota-permille N`, `--ota-corrupt-permille N`,
//!   `--ota-max-retries N` and `--step-budget N` set the campaign knobs
//!   individually on any scenario.
//! * `--store-cap-bytes N` bounds the on-disk store (least-recently-used
//!   images evicted first); requires `--store`.  Contradictory flag
//!   combinations (`--store --no-store`, `--paranoid --no-store`,
//!   `--linear --summary`, ...) are rejected up front with exit code 2.
//! * `--summary` streams block aggregation (`simulate_summary`) instead
//!   of materialising per-device results: bounded memory at 10⁵–10⁶
//!   devices, byte-identical document.
//! * `--linear` forces the pre-calendar linear walk (the oracle) — for
//!   baseline measurements.
//! * `--scaling` runs the whole scaling campaign: a linear baseline at
//!   10³ plus calendar points at {10³, 10⁴, 10⁵}, each in a child
//!   process so peak RSS is measured per point, then writes the report
//!   for the largest point with a `"scaling"` section attached — plus a
//!   `"firmware_store"` section timing a cold vs warm store prewarm of
//!   the top point's distinct configurations.
//! * `--store DIR` persists built firmwares in a content-addressable
//!   store under `DIR`: the run prewarms every distinct configuration
//!   through the store (timed separately from the campaign) and the
//!   report gains a `firmware_store` section with the store counters.
//!   `--no-store` forces the in-memory store; `--paranoid` re-builds and
//!   byte-compares every image loaded from disk (CI runs this).
//! * `--report-out FILE` additionally writes the *deterministic* document
//!   (no `timing`, `scaling` or `firmware_store` sections) to `FILE` —
//!   cold and warm store runs of the same scenario must produce
//!   byte-identical files, which CI asserts.
//! * `--verify` gates every firmware image through the `amulet-verify`
//!   static analyser before it enters the fleet (a proven-escape image
//!   aborts the run) and attaches a `verifier` section with the fleet's
//!   verdict counters.  `--elide-checks` deploys images rewritten through
//!   check elision — outcome-identical, fewer retired instructions.
//!   `--elide-checks` conflicts with `--linear`: the linear oracle is the
//!   unelided reference baseline, so eliding it would benchmark the
//!   optimisation against itself (exit 2).  `--fuse` deploys images with
//!   the superinstruction pass applied — byte-identical on disk (fusion
//!   is derived state, re-applied after decode), identical outcomes,
//!   faster dispatch.  It conflicts with `--linear` for the same reason
//!   `--elide-checks` does (exit 2).

use amulet_bench::fleet_sim::{
    containment_json, ota_wave_json, render_document, render_document_with, store_stats_json,
    verify_summary_json,
};
use amulet_bench::json::Json;
use amulet_fleet::{
    simulate_in, simulate_linear_in, simulate_summary_in, FirmwareStore, FleetScenario, TimeMode,
};
use std::path::PathBuf;
use std::time::Instant;

const USAGE: &str = "usage: fleet_sim [devices] [workers] [events_per_device] [seed] [mode] \
     [--devices N] [--workers N] [--events N] [--seed N] [--mode arrival-order|stepped] \
     [--silent-permille N] [--preset scaling|storm] [--fault-permille N] [--ota-permille N] \
     [--ota-corrupt-permille N] [--ota-max-retries N] [--step-budget N] [--summary] [--linear] \
     [--no-write] [--scaling] [--store DIR] [--no-store] [--paranoid] [--store-cap-bytes N] \
     [--report-out FILE] [--verify] [--elide-checks] [--fuse]";

/// Everything the command line can ask for, before it is resolved into a
/// scenario.
#[derive(Default)]
struct Cli {
    devices: Option<usize>,
    workers: Option<usize>,
    events: Option<usize>,
    seed: Option<u64>,
    mode: Option<TimeMode>,
    silent_permille: Option<u16>,
    fault_permille: Option<u16>,
    ota_permille: Option<u16>,
    ota_corrupt_permille: Option<u16>,
    ota_max_retries: Option<u32>,
    step_budget: Option<u64>,
    preset_scaling: bool,
    preset_storm: bool,
    summary: bool,
    linear: bool,
    no_write: bool,
    scaling: bool,
    scaling_point: bool,
    store: Option<PathBuf>,
    no_store: bool,
    paranoid: bool,
    store_cap_bytes: Option<u64>,
    report_out: Option<PathBuf>,
    verify: bool,
    elide_checks: bool,
    fuse: bool,
}

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_mode(s: &str) -> TimeMode {
    match s {
        "stepped" => TimeMode::Stepped,
        "arrival-order" | "arrival" => TimeMode::ArrivalOrder,
        other => fail(&format!("unknown mode {other:?}")),
    }
}

fn parse(args: impl Iterator<Item = String>) -> Cli {
    let mut cli = Cli::default();
    let mut positional = 0usize;
    let mut it = args;
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| -> String {
        it.next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--devices" => cli.devices = Some(parse_num(&value("--devices", &mut it))),
            "--workers" => cli.workers = Some(parse_num(&value("--workers", &mut it))),
            "--events" => cli.events = Some(parse_num(&value("--events", &mut it))),
            "--seed" => cli.seed = Some(parse_num(&value("--seed", &mut it)) as u64),
            "--mode" => cli.mode = Some(parse_mode(&value("--mode", &mut it))),
            "--silent-permille" => {
                cli.silent_permille = Some(parse_num(&value("--silent-permille", &mut it)) as u16)
            }
            "--fault-permille" => {
                cli.fault_permille = Some(parse_num(&value("--fault-permille", &mut it)) as u16)
            }
            "--ota-permille" => {
                cli.ota_permille = Some(parse_num(&value("--ota-permille", &mut it)) as u16)
            }
            "--ota-corrupt-permille" => {
                cli.ota_corrupt_permille =
                    Some(parse_num(&value("--ota-corrupt-permille", &mut it)) as u16)
            }
            "--ota-max-retries" => {
                cli.ota_max_retries = Some(parse_num(&value("--ota-max-retries", &mut it)) as u32)
            }
            "--step-budget" => {
                cli.step_budget = Some(parse_num(&value("--step-budget", &mut it)) as u64)
            }
            "--store-cap-bytes" => {
                cli.store_cap_bytes = Some(parse_num(&value("--store-cap-bytes", &mut it)) as u64)
            }
            "--preset" => match value("--preset", &mut it).as_str() {
                "scaling" => cli.preset_scaling = true,
                "storm" => cli.preset_storm = true,
                other => fail(&format!("unknown preset {other:?}")),
            },
            "--summary" => cli.summary = true,
            "--linear" => cli.linear = true,
            "--no-write" => cli.no_write = true,
            "--scaling" => cli.scaling = true,
            "--scaling-point" => cli.scaling_point = true,
            "--store" => cli.store = Some(PathBuf::from(value("--store", &mut it))),
            "--no-store" => cli.no_store = true,
            "--paranoid" => cli.paranoid = true,
            "--report-out" => cli.report_out = Some(PathBuf::from(value("--report-out", &mut it))),
            "--verify" => cli.verify = true,
            "--elide-checks" => cli.elide_checks = true,
            "--fuse" => cli.fuse = true,
            flag if flag.starts_with("--") => fail(&format!("unknown flag {flag:?}")),
            word => {
                // Positional compatibility: devices, workers, events, seed,
                // then the mode word.
                match (positional, word.parse::<u64>()) {
                    (0, Ok(n)) => cli.devices = Some(n as usize),
                    (1, Ok(n)) => cli.workers = Some(n as usize),
                    (2, Ok(n)) => cli.events = Some(n as usize),
                    (3, Ok(n)) => cli.seed = Some(n),
                    (_, Ok(_)) => fail(&format!("unexpected trailing argument {word:?}")),
                    (_, Err(_)) if cli.mode.is_none() => cli.mode = Some(parse_mode(word)),
                    _ => fail(&format!("unexpected trailing argument {word:?}")),
                }
                if word.parse::<u64>().is_ok() {
                    positional += 1;
                }
            }
        }
    }
    cli
}

fn parse_num(s: &str) -> usize {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("not a number: {s:?}")))
}

/// Rejects contradictory flag combinations up front (exit 2 with usage)
/// instead of letting one flag silently win over another.
fn validate(cli: &Cli) {
    if cli.store.is_some() && cli.no_store {
        fail("--store and --no-store conflict");
    }
    if cli.paranoid && cli.no_store {
        fail("--paranoid and --no-store conflict");
    }
    if cli.paranoid && cli.store.is_none() {
        fail("--paranoid verifies disk loads and needs --store DIR");
    }
    if cli.store_cap_bytes.is_some() && cli.store.is_none() {
        fail("--store-cap-bytes bounds an on-disk store and needs --store DIR");
    }
    if cli.linear && cli.summary {
        fail("--linear and --summary conflict: the linear oracle materialises per-device results");
    }
    if cli.preset_scaling && cli.preset_storm {
        fail("--preset given twice with different presets");
    }
    if cli.scaling && cli.scaling_point {
        fail("--scaling and --scaling-point conflict");
    }
    if cli.elide_checks && cli.linear {
        fail(
            "--elide-checks and --linear conflict: the linear oracle is the unelided \
             reference baseline",
        );
    }
    if cli.fuse && cli.linear {
        fail(
            "--fuse and --linear conflict: the linear oracle is the unfused \
             reference baseline",
        );
    }
}

fn scenario_from(cli: &Cli) -> (FleetScenario, usize) {
    let mut scenario = if cli.preset_scaling {
        FleetScenario::scaling(cli.devices.unwrap_or(1000))
    } else if cli.preset_storm {
        FleetScenario::storm(cli.devices.unwrap_or(1000))
    } else {
        FleetScenario::default()
    };
    if let Some(d) = cli.devices {
        scenario.devices = d;
    }
    if let Some(e) = cli.events {
        scenario.events_per_device = e;
    }
    if let Some(s) = cli.seed {
        scenario.seed = s;
    }
    if let Some(m) = cli.mode {
        scenario.time_mode = m;
    }
    if let Some(p) = cli.silent_permille {
        scenario.silent_permille = p;
    }
    if let Some(p) = cli.fault_permille {
        scenario.fault_permille = p;
    }
    if let Some(p) = cli.ota_permille {
        scenario.ota_permille = p;
    }
    if let Some(p) = cli.ota_corrupt_permille {
        scenario.ota_corrupt_permille = p;
    }
    if let Some(n) = cli.ota_max_retries {
        scenario.ota_max_retries = n;
    }
    if let Some(b) = cli.step_budget {
        scenario.step_budget = Some(b);
    }
    if !cli.no_store {
        scenario.store_dir = cli.store.clone();
    }
    scenario.paranoid = cli.paranoid;
    scenario.store_cap_bytes = cli.store_cap_bytes;
    scenario.verify = cli.verify;
    scenario.elide_checks = cli.elide_checks;
    scenario.fuse = cli.fuse;
    let workers = cli.workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });
    (scenario, workers)
}

/// Peak resident set of this process in KiB, from `/proc/self/status`
/// (`VmHWM`); 0 where the proc file is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// One measured run, as the `--scaling-point` child reports it.
struct Point {
    devices: usize,
    wall_seconds: f64,
    events_delivered: u64,
    peak_rss_kb: u64,
}

impl Point {
    fn devices_per_second(&self) -> f64 {
        self.devices as f64 / self.wall_seconds.max(1e-9)
    }
    fn events_per_second(&self) -> f64 {
        self.events_delivered as f64 / self.wall_seconds.max(1e-9)
    }
    fn json(&self) -> Json {
        Json::obj()
            .field("devices", self.devices)
            .field("wall_seconds", self.wall_seconds)
            .field("devices_per_second", self.devices_per_second())
            .field("events_per_second", self.events_per_second())
            .field("peak_rss_kb", self.peak_rss_kb)
    }
}

/// Runs one scenario in-process and reports the measurement; the
/// `--scaling-point` entry so every campaign point gets its own address
/// space (and therefore its own `VmHWM` high-water mark).
fn run_point(cli: &Cli) -> ! {
    let (scenario, workers) = scenario_from(cli);
    let store = FirmwareStore::for_scenario(&scenario);
    let started = Instant::now();
    let events = if cli.linear {
        let report = simulate_linear_in(&scenario, workers, &store);
        report.aggregate.per_event.events_delivered + report.aggregate.batched.events_delivered
    } else {
        let summary = simulate_summary_in(&scenario, workers, &store);
        summary.aggregate.per_event.events_delivered + summary.aggregate.batched.events_delivered
    };
    let wall = started.elapsed().as_secs_f64();
    println!("devices={}", scenario.devices);
    println!("wall_seconds={wall}");
    println!("events_delivered={events}");
    println!("peak_rss_kb={}", peak_rss_kb());
    println!("store_builds={}", store.stats().builds);
    println!("store_disk_hits={}", store.stats().disk_hits);
    std::process::exit(0);
}

/// Re-executes this binary as a `--scaling-point` child and parses its
/// key=value report.
fn spawn_point(extra: &[&str], devices: usize, workers: usize) -> Point {
    let exe = std::env::current_exe().expect("own executable path");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--scaling-point")
        .arg("--devices")
        .arg(devices.to_string())
        .arg("--workers")
        .arg(workers.to_string())
        .args(extra);
    let out = cmd.output().expect("scaling-point child failed to start");
    if !out.status.success() {
        eprintln!("{}", String::from_utf8_lossy(&out.stderr));
        fail("scaling-point child failed");
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let get = |key: &str| -> f64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fail(&format!("child report missing {key}")))
    };
    Point {
        devices,
        wall_seconds: get("wall_seconds"),
        events_delivered: get("events_delivered") as u64,
        peak_rss_kb: get("peak_rss_kb") as u64,
    }
}

/// Cold-vs-warm firmware-store bench over the top point's distinct
/// configurations.  The config set is derived once, *outside* both timed
/// phases, so the phases compare exactly what changes between a cold and a
/// warm process start: cold pays AFT build + encode + atomic write per
/// config (there is nothing on disk to defer to), warm pays envelope
/// verification — read + content-hash + key check via
/// [`FirmwareStore::validate_configs`] — after which every build is
/// skippable and images decode lazily at first use.
///
/// Each phase is timed as the minimum over `STORE_BENCH_REPS`
/// repetitions (criterion-style) so one-off allocator and page-cache
/// effects don't masquerade as phase cost.
fn store_bench(scenario: &FleetScenario, dir: &std::path::Path) -> Json {
    const STORE_BENCH_REPS: usize = 3;
    let mut sc = scenario.clone();
    sc.store_dir = Some(dir.to_path_buf());
    sc.paranoid = false;
    let configs = FirmwareStore::distinct_configs(&sc);

    let mut cold_wall = f64::INFINITY;
    let mut cold_stats = amulet_fleet::FirmwareStoreStats::default();
    for _ in 0..STORE_BENCH_REPS {
        let _ = std::fs::remove_dir_all(dir);
        let cold = FirmwareStore::for_scenario(&sc);
        let started = Instant::now();
        cold.prewarm_configs(&configs);
        let wall = started.elapsed().as_secs_f64();
        if wall < cold_wall {
            cold_wall = wall;
            cold_stats = cold.stats();
        }
    }

    // The store directory is now populated by the last cold repetition.
    let mut warm_wall = f64::INFINITY;
    let mut warm_stats = amulet_fleet::FirmwareStoreStats::default();
    for _ in 0..STORE_BENCH_REPS {
        let warm = FirmwareStore::for_scenario(&sc);
        let started = Instant::now();
        let verified = warm.validate_configs(&configs);
        let wall = started.elapsed().as_secs_f64();
        assert_eq!(verified, configs.len(), "warm store must verify fully");
        if wall < warm_wall {
            warm_wall = wall;
            warm_stats = warm.stats();
        }
    }

    Json::obj()
        .field("configs", configs.len())
        .field("repetitions", STORE_BENCH_REPS)
        .field(
            "cold",
            Json::obj()
                .field("wall_seconds", cold_wall)
                .field("stats", store_stats_json(&cold_stats)),
        )
        .field(
            "warm",
            Json::obj()
                .field("wall_seconds", warm_wall)
                .field("stats", store_stats_json(&warm_stats)),
        )
        .field("warm_start_speedup", cold_wall / warm_wall.max(1e-9))
}

/// The scaling campaign: linear baselines at 10³, calendar points at
/// {10³, 10⁴, 10⁵}, each in its own child process, composed into the
/// `"scaling"` section of the largest point's report.
fn run_scaling(cli: &Cli) {
    let workers = scenario_from(cli).1;
    let top = cli.devices.unwrap_or(100_000);

    eprintln!("scaling: linear stepped baseline, dense default scenario, 1000 devices...");
    let linear_dense = spawn_point(&["--linear", "--mode", "stepped"], 1000, workers);
    eprintln!("scaling: linear stepped baseline, scaling preset, 1000 devices...");
    let linear_preset = spawn_point(&["--linear", "--preset", "scaling"], 1000, workers);

    let mut calendar_points = Vec::new();
    let mut n = 1000usize;
    while n <= top {
        eprintln!("scaling: calendar, scaling preset, {n} devices...");
        calendar_points.push(spawn_point(&["--preset", "scaling"], n, workers));
        n *= 10;
    }
    let top_point = calendar_points.last().expect("at least one calendar point");
    let scale = top_point.devices as f64 / 1000.0;
    // The linear walk is O(devices): its 10³ wall-clock scales by
    // devices/10³ at the top point.  The headline compares the calendar's
    // top-point throughput against the *pre-calendar* 10³ baseline (the
    // dense default scenario PR 4 shipped), which is what this PR set out
    // to beat; the same-preset comparison is reported alongside so the
    // workload change and the scheduler change are separable.
    let headline_speedup =
        top_point.devices_per_second() / linear_dense.devices_per_second().max(1e-9);
    let same_preset_speedup =
        top_point.devices_per_second() / linear_preset.devices_per_second().max(1e-9);
    let scaling = Json::obj()
        .field("preset", "scaling-campaign")
        .field("workers", workers)
        .field(
            "linear_baseline",
            Json::obj()
                .field("dense_1e3", linear_dense.json())
                .field("preset_1e3", linear_preset.json())
                .field(
                    "extrapolated_dense_wall_seconds_at_top",
                    linear_dense.wall_seconds * scale,
                )
                .field(
                    "extrapolated_preset_wall_seconds_at_top",
                    linear_preset.wall_seconds * scale,
                ),
        )
        .field(
            "calendar",
            calendar_points.iter().map(Point::json).collect::<Vec<_>>(),
        )
        .field("top_devices", top_point.devices)
        .field("speedup_vs_extrapolated_linear_at_top", headline_speedup)
        .field("speedup_vs_same_preset_linear_at_top", same_preset_speedup);

    // The firmware-store cold/warm bench over the top point's distinct
    // configurations — the committed `firmware_store` section.
    let store_dir = match (&cli.store, cli.no_store) {
        (Some(dir), false) => dir.clone(),
        _ => std::env::temp_dir().join(format!("amulet-fleet-store-bench-{}", std::process::id())),
    };
    eprintln!(
        "scaling: firmware store cold/warm bench, {} devices...",
        top_point.devices
    );
    let store_json = store_bench(&FleetScenario::scaling(top_point.devices), &store_dir);

    // The fault-injection campaign: a storm preset sweep whose
    // containment matrix and OTA-wave tallies ride the committed document
    // as top-level sections (they measure a different scenario than the
    // scaling point, so they cannot live inside its aggregate).
    const STORM_DEVICES: usize = 10_000;
    eprintln!("scaling: fault storm, {STORM_DEVICES} devices...");
    let storm_scenario = FleetScenario::storm(STORM_DEVICES);
    let storm_started = Instant::now();
    let storm = amulet_fleet::simulate_summary(&storm_scenario, workers);
    let storm_wall = storm_started.elapsed().as_secs_f64();
    let extras = vec![
        (
            "fault_campaign",
            Json::obj()
                .field("name", storm_scenario.name.as_str())
                .field("seed", storm_scenario.seed)
                .field("devices", STORM_DEVICES)
                .field("wall_seconds", storm_wall),
        ),
        (
            "containment",
            Json::from(containment_json(&storm.aggregate.containment)),
        ),
        ("ota_wave", ota_wave_json(&storm.aggregate.ota_wave)),
    ];

    // The document itself reports the largest calendar point, re-run
    // in-process (cheap next to the campaign) so the full aggregate is
    // available.  When a store directory is active it was just prewarmed
    // by the bench above, so this run is the warm-start case: every
    // firmware loads, none rebuild.
    eprintln!("scaling: rendering the {top}-device report...");
    let mut scenario = FleetScenario::scaling(top_point.devices);
    if !cli.no_store {
        scenario.store_dir = cli.store.clone();
    }
    scenario.paranoid = cli.paranoid;
    let store = FirmwareStore::for_scenario(&scenario);
    let started = Instant::now();
    let summary = simulate_summary_in(&scenario, workers, &store);
    let wall = started.elapsed().as_secs_f64();
    let json = render_document_with(
        &summary.scenario,
        summary.workers,
        &summary.aggregate,
        Some(wall),
        Some(scaling),
        Some(store_json),
        extras,
    );
    if cli.store.is_none() {
        let _ = std::fs::remove_dir_all(&store_dir);
    }
    write_report_out(cli, &summary.scenario, summary.workers, &summary.aggregate);
    emit(cli, &scenario, workers, wall, json);
}

/// Writes the deterministic document (no `timing`, `scaling` or
/// `firmware_store` sections) to `--report-out`, so cold and warm store
/// runs of one scenario can be byte-compared.
fn write_report_out(
    cli: &Cli,
    s: &FleetScenario,
    workers: usize,
    agg: &amulet_fleet::FleetAggregate,
) {
    let Some(path) = &cli.report_out else { return };
    let doc = render_document(s, workers, agg, None, None, None);
    if let Err(e) = std::fs::write(path, &doc) {
        fail(&format!("could not write {}: {e}", path.display()));
    }
    eprintln!("wrote deterministic report to {}", path.display());
}

fn emit(cli: &Cli, scenario: &FleetScenario, workers: usize, wall: f64, json: String) {
    print!("{json}");
    if cli.no_write {
        return;
    }
    if let Err(e) = std::fs::write("BENCH_fleet.json", &json) {
        eprintln!("warning: could not write BENCH_fleet.json: {e}");
    } else {
        eprintln!(
            "wrote BENCH_fleet.json ({} devices, {workers} workers, {} mode, {:.2}s, {:.0} devices/s)",
            scenario.devices,
            scenario.time_mode.label(),
            wall,
            scenario.devices as f64 / wall.max(1e-9),
        );
    }
}

fn main() {
    let cli = parse(std::env::args().skip(1));
    validate(&cli);
    if cli.scaling_point {
        run_point(&cli);
    }
    if cli.scaling {
        run_scaling(&cli);
        return;
    }

    let (scenario, workers) = scenario_from(&cli);
    let store = FirmwareStore::for_scenario(&scenario);
    // With a persistent store the build/load phase is timed on its own —
    // that is the phase the store exists to accelerate, and at fleet scale
    // it is a sliver of campaign wall-clock.
    let prewarm = store.is_persistent().then(|| {
        let started = Instant::now();
        let configs = store.prewarm(&scenario);
        (configs, started.elapsed().as_secs_f64())
    });
    let started = Instant::now();
    let aggregate = if cli.linear {
        simulate_linear_in(&scenario, workers, &store).aggregate
    } else if cli.summary {
        simulate_summary_in(&scenario, workers, &store).aggregate
    } else {
        simulate_in(&scenario, workers, &store).aggregate
    };
    let wall = started.elapsed().as_secs_f64();
    let store_json = prewarm.map(|(configs, secs)| {
        Json::obj()
            .field("paranoid", scenario.paranoid)
            .field(
                "prewarm",
                Json::obj()
                    .field("configs", configs)
                    .field("wall_seconds", secs),
            )
            .field("stats", store_stats_json(&store.stats()))
    });
    // The per-image gate already ran inside the builds; the `verifier`
    // section reports the fleet-wide verdict counters alongside.
    let extras = if cli.verify {
        let summary = amulet_fleet::verify_fleet(&scenario, workers);
        vec![("verifier", verify_summary_json(&summary))]
    } else {
        Vec::new()
    };
    let json = render_document_with(
        &scenario,
        workers,
        &aggregate,
        Some(wall),
        None,
        store_json,
        extras,
    );
    write_report_out(&cli, &scenario, workers, &aggregate);
    emit(&cli, &scenario, workers, wall, json);
}
