//! Fleet-scale simulation bench: simulates seeded device fleets and emits
//! the aggregate report (energy distribution, switch-overhead share, fault
//! counts, battery-impact histograms, and the per-event vs batched
//! delivery comparison) as `BENCH_fleet.json` — both on stdout and to the
//! file.
//!
//! Usage (positional form, unchanged since PR 3):
//! `fleet_sim [devices] [workers] [events_per_device] [seed] [mode]`
//! (defaults: 1000 devices, one worker per host core, 120 events, the
//! scenario's default seed, `arrival-order`).
//!
//! Flag form (mixable with positionals; flags win):
//! `--devices N --workers N --events N --seed N --mode arrival-order|stepped
//!  --silent-permille N --preset scaling --summary --linear --no-write`
//!
//! * `--preset scaling` starts from [`FleetScenario::scaling`] — the
//!   mostly-silent, windowed campaign the scaling study runs — before
//!   the other flags apply.
//! * `--summary` streams block aggregation ([`simulate_summary`]) instead
//!   of materialising per-device results: bounded memory at 10⁵–10⁶
//!   devices, byte-identical document.
//! * `--linear` forces the pre-calendar linear walk (the oracle) — for
//!   baseline measurements.
//! * `--scaling` runs the whole scaling campaign: a linear baseline at
//!   10³ plus calendar points at {10³, 10⁴, 10⁵}, each in a child
//!   process so peak RSS is measured per point, then writes the report
//!   for the largest point with a `"scaling"` section attached.

use amulet_bench::fleet_sim::{render_document, render_json, render_summary_json};
use amulet_bench::json::Json;
use amulet_fleet::{simulate, simulate_linear, simulate_summary, FleetScenario, TimeMode};
use std::time::Instant;

const USAGE: &str = "usage: fleet_sim [devices] [workers] [events_per_device] [seed] [mode] \
     [--devices N] [--workers N] [--events N] [--seed N] [--mode arrival-order|stepped] \
     [--silent-permille N] [--preset scaling] [--summary] [--linear] [--no-write] [--scaling]";

/// Everything the command line can ask for, before it is resolved into a
/// scenario.
#[derive(Default)]
struct Cli {
    devices: Option<usize>,
    workers: Option<usize>,
    events: Option<usize>,
    seed: Option<u64>,
    mode: Option<TimeMode>,
    silent_permille: Option<u16>,
    preset_scaling: bool,
    summary: bool,
    linear: bool,
    no_write: bool,
    scaling: bool,
    scaling_point: bool,
}

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_mode(s: &str) -> TimeMode {
    match s {
        "stepped" => TimeMode::Stepped,
        "arrival-order" | "arrival" => TimeMode::ArrivalOrder,
        other => fail(&format!("unknown mode {other:?}")),
    }
}

fn parse(args: impl Iterator<Item = String>) -> Cli {
    let mut cli = Cli::default();
    let mut positional = 0usize;
    let mut it = args;
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| -> String {
        it.next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--devices" => cli.devices = Some(parse_num(&value("--devices", &mut it))),
            "--workers" => cli.workers = Some(parse_num(&value("--workers", &mut it))),
            "--events" => cli.events = Some(parse_num(&value("--events", &mut it))),
            "--seed" => cli.seed = Some(parse_num(&value("--seed", &mut it)) as u64),
            "--mode" => cli.mode = Some(parse_mode(&value("--mode", &mut it))),
            "--silent-permille" => {
                cli.silent_permille = Some(parse_num(&value("--silent-permille", &mut it)) as u16)
            }
            "--preset" => match value("--preset", &mut it).as_str() {
                "scaling" => cli.preset_scaling = true,
                other => fail(&format!("unknown preset {other:?}")),
            },
            "--summary" => cli.summary = true,
            "--linear" => cli.linear = true,
            "--no-write" => cli.no_write = true,
            "--scaling" => cli.scaling = true,
            "--scaling-point" => cli.scaling_point = true,
            flag if flag.starts_with("--") => fail(&format!("unknown flag {flag:?}")),
            word => {
                // Positional compatibility: devices, workers, events, seed,
                // then the mode word.
                match (positional, word.parse::<u64>()) {
                    (0, Ok(n)) => cli.devices = Some(n as usize),
                    (1, Ok(n)) => cli.workers = Some(n as usize),
                    (2, Ok(n)) => cli.events = Some(n as usize),
                    (3, Ok(n)) => cli.seed = Some(n),
                    (_, Ok(_)) => fail(&format!("unexpected trailing argument {word:?}")),
                    (_, Err(_)) if cli.mode.is_none() => cli.mode = Some(parse_mode(word)),
                    _ => fail(&format!("unexpected trailing argument {word:?}")),
                }
                if word.parse::<u64>().is_ok() {
                    positional += 1;
                }
            }
        }
    }
    cli
}

fn parse_num(s: &str) -> usize {
    s.parse()
        .unwrap_or_else(|_| fail(&format!("not a number: {s:?}")))
}

fn scenario_from(cli: &Cli) -> (FleetScenario, usize) {
    let mut scenario = if cli.preset_scaling {
        FleetScenario::scaling(cli.devices.unwrap_or(1000))
    } else {
        FleetScenario::default()
    };
    if let Some(d) = cli.devices {
        scenario.devices = d;
    }
    if let Some(e) = cli.events {
        scenario.events_per_device = e;
    }
    if let Some(s) = cli.seed {
        scenario.seed = s;
    }
    if let Some(m) = cli.mode {
        scenario.time_mode = m;
    }
    if let Some(p) = cli.silent_permille {
        scenario.silent_permille = p;
    }
    let workers = cli.workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });
    (scenario, workers)
}

/// Peak resident set of this process in KiB, from `/proc/self/status`
/// (`VmHWM`); 0 where the proc file is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// One measured run, as the `--scaling-point` child reports it.
struct Point {
    devices: usize,
    wall_seconds: f64,
    events_delivered: u64,
    peak_rss_kb: u64,
}

impl Point {
    fn devices_per_second(&self) -> f64 {
        self.devices as f64 / self.wall_seconds.max(1e-9)
    }
    fn events_per_second(&self) -> f64 {
        self.events_delivered as f64 / self.wall_seconds.max(1e-9)
    }
    fn json(&self) -> Json {
        Json::obj()
            .field("devices", self.devices)
            .field("wall_seconds", self.wall_seconds)
            .field("devices_per_second", self.devices_per_second())
            .field("events_per_second", self.events_per_second())
            .field("peak_rss_kb", self.peak_rss_kb)
    }
}

/// Runs one scenario in-process and reports the measurement; the
/// `--scaling-point` entry so every campaign point gets its own address
/// space (and therefore its own `VmHWM` high-water mark).
fn run_point(cli: &Cli) -> ! {
    let (scenario, workers) = scenario_from(cli);
    let started = Instant::now();
    let events = if cli.linear {
        let report = simulate_linear(&scenario, workers);
        report.aggregate.per_event.events_delivered + report.aggregate.batched.events_delivered
    } else {
        let summary = simulate_summary(&scenario, workers);
        summary.aggregate.per_event.events_delivered + summary.aggregate.batched.events_delivered
    };
    let wall = started.elapsed().as_secs_f64();
    println!("devices={}", scenario.devices);
    println!("wall_seconds={wall}");
    println!("events_delivered={events}");
    println!("peak_rss_kb={}", peak_rss_kb());
    std::process::exit(0);
}

/// Re-executes this binary as a `--scaling-point` child and parses its
/// key=value report.
fn spawn_point(extra: &[&str], devices: usize, workers: usize) -> Point {
    let exe = std::env::current_exe().expect("own executable path");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--scaling-point")
        .arg("--devices")
        .arg(devices.to_string())
        .arg("--workers")
        .arg(workers.to_string())
        .args(extra);
    let out = cmd.output().expect("scaling-point child failed to start");
    if !out.status.success() {
        eprintln!("{}", String::from_utf8_lossy(&out.stderr));
        fail("scaling-point child failed");
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let get = |key: &str| -> f64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fail(&format!("child report missing {key}")))
    };
    Point {
        devices,
        wall_seconds: get("wall_seconds"),
        events_delivered: get("events_delivered") as u64,
        peak_rss_kb: get("peak_rss_kb") as u64,
    }
}

/// The scaling campaign: linear baselines at 10³, calendar points at
/// {10³, 10⁴, 10⁵}, each in its own child process, composed into the
/// `"scaling"` section of the largest point's report.
fn run_scaling(cli: &Cli) {
    let workers = scenario_from(cli).1;
    let top = cli.devices.unwrap_or(100_000);

    eprintln!("scaling: linear stepped baseline, dense default scenario, 1000 devices...");
    let linear_dense = spawn_point(&["--linear", "--mode", "stepped"], 1000, workers);
    eprintln!("scaling: linear stepped baseline, scaling preset, 1000 devices...");
    let linear_preset = spawn_point(&["--linear", "--preset", "scaling"], 1000, workers);

    let mut calendar_points = Vec::new();
    let mut n = 1000usize;
    while n <= top {
        eprintln!("scaling: calendar, scaling preset, {n} devices...");
        calendar_points.push(spawn_point(&["--preset", "scaling"], n, workers));
        n *= 10;
    }
    let top_point = calendar_points.last().expect("at least one calendar point");
    let scale = top_point.devices as f64 / 1000.0;
    // The linear walk is O(devices): its 10³ wall-clock scales by
    // devices/10³ at the top point.  The headline compares the calendar's
    // top-point throughput against the *pre-calendar* 10³ baseline (the
    // dense default scenario PR 4 shipped), which is what this PR set out
    // to beat; the same-preset comparison is reported alongside so the
    // workload change and the scheduler change are separable.
    let headline_speedup =
        top_point.devices_per_second() / linear_dense.devices_per_second().max(1e-9);
    let same_preset_speedup =
        top_point.devices_per_second() / linear_preset.devices_per_second().max(1e-9);
    let scaling = Json::obj()
        .field("preset", "scaling-campaign")
        .field("workers", workers)
        .field(
            "linear_baseline",
            Json::obj()
                .field("dense_1e3", linear_dense.json())
                .field("preset_1e3", linear_preset.json())
                .field(
                    "extrapolated_dense_wall_seconds_at_top",
                    linear_dense.wall_seconds * scale,
                )
                .field(
                    "extrapolated_preset_wall_seconds_at_top",
                    linear_preset.wall_seconds * scale,
                ),
        )
        .field(
            "calendar",
            calendar_points.iter().map(Point::json).collect::<Vec<_>>(),
        )
        .field("top_devices", top_point.devices)
        .field("speedup_vs_extrapolated_linear_at_top", headline_speedup)
        .field("speedup_vs_same_preset_linear_at_top", same_preset_speedup);

    // The document itself reports the largest calendar point, re-run
    // in-process (cheap next to the campaign) so the full aggregate is
    // available.
    eprintln!("scaling: rendering the {top}-device report...");
    let scenario = FleetScenario::scaling(top_point.devices);
    let started = Instant::now();
    let summary = simulate_summary(&scenario, workers);
    let wall = started.elapsed().as_secs_f64();
    let json = render_document(
        &summary.scenario,
        summary.workers,
        &summary.aggregate,
        Some(wall),
        Some(scaling),
    );
    emit(cli, &scenario, workers, wall, json);
}

fn emit(cli: &Cli, scenario: &FleetScenario, workers: usize, wall: f64, json: String) {
    print!("{json}");
    if cli.no_write {
        return;
    }
    if let Err(e) = std::fs::write("BENCH_fleet.json", &json) {
        eprintln!("warning: could not write BENCH_fleet.json: {e}");
    } else {
        eprintln!(
            "wrote BENCH_fleet.json ({} devices, {workers} workers, {} mode, {:.2}s, {:.0} devices/s)",
            scenario.devices,
            scenario.time_mode.label(),
            wall,
            scenario.devices as f64 / wall.max(1e-9),
        );
    }
}

fn main() {
    let cli = parse(std::env::args().skip(1));
    if cli.scaling_point {
        run_point(&cli);
    }
    if cli.scaling {
        run_scaling(&cli);
        return;
    }

    let (scenario, workers) = scenario_from(&cli);
    let started = Instant::now();
    let json = if cli.linear {
        let report = simulate_linear(&scenario, workers);
        let wall = started.elapsed().as_secs_f64();
        render_json(&report, Some(wall))
    } else if cli.summary {
        let summary = simulate_summary(&scenario, workers);
        let wall = started.elapsed().as_secs_f64();
        render_summary_json(&summary, Some(wall))
    } else {
        let report = simulate(&scenario, workers);
        let wall = started.elapsed().as_secs_f64();
        render_json(&report, Some(wall))
    };
    let wall = started.elapsed().as_secs_f64();
    emit(&cli, &scenario, workers, wall, json);
}
