//! Hot-path bench: instruction-execution microbench (attribute cache on vs
//! off), fleet devices/second, the check-elision comparison (the
//! Software-Only catalogue with and without verifier-certified checks)
//! and the superinstruction-fusion comparison (fused vs unfused
//! dispatch), emitted as `BENCH_hotpath.json` — both on stdout and to
//! the file.
//!
//! Usage: `cargo run -p amulet-bench --bin hotpath --release
//! [instructions] [fleet_devices] [fleet_events] [fleet_workers]
//! [elision_rounds] [min_fusion_speedup_percent]`
//! (defaults: 20 M instructions, 1000 devices, 120 events, 1 worker — the
//! same shape as the recorded pre-optimisation baseline — 2000 elision
//! rounds, and no fusion gate).  A non-zero final argument makes the run
//! fail unless fused dispatch beats unfused by at least that percentage
//! on the check-heavy microbench (CI passes 150).

use amulet_bench::hotpath;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut arg = |d: u64| -> u64 { args.next().and_then(|s| s.parse().ok()).unwrap_or(d) };
    let instructions = arg(20_000_000);
    let fleet_devices = arg(hotpath::BASELINE_FLEET_SCENARIO.0 as u64) as usize;
    let fleet_events = arg(hotpath::BASELINE_FLEET_SCENARIO.1 as u64) as usize;
    let fleet_workers = arg(hotpath::BASELINE_FLEET_SCENARIO.2 as u64) as usize;
    let elision_rounds = arg(2000) as usize;
    let min_fusion_speedup_percent = arg(0);

    assert!(
        hotpath::verify_equivalence(100_000),
        "attribute cache disagrees with the direct MPU path"
    );

    let cached = hotpath::run_microbench(instructions, true);
    let direct = hotpath::run_microbench(instructions, false);
    let fleet = hotpath::run_fleet(fleet_devices, fleet_events, fleet_workers);
    let elision = hotpath::run_check_elision(elision_rounds);
    assert!(
        elision.outcomes_identical,
        "check elision changed a dynamic outcome; the numbers are untrustworthy"
    );
    let fusion = hotpath::run_superinstruction(instructions, elision_rounds);
    assert!(
        fusion.outcomes_identical,
        "superinstruction fusion changed a dynamic outcome; the numbers are untrustworthy"
    );
    if min_fusion_speedup_percent > 0 {
        let floor = min_fusion_speedup_percent as f64 / 100.0;
        if fusion.dispatch_speedup() < floor {
            eprintln!(
                "fused dispatch is only {:.2}x unfused on the check-heavy microbench \
                 (gate: {floor:.2}x)",
                fusion.dispatch_speedup()
            );
            std::process::exit(1);
        }
    }

    let json = hotpath::render_json(&cached, &direct, &fleet, &elision, &fusion);
    print!("{json}");
    if let Err(e) = std::fs::write("BENCH_hotpath.json", &json) {
        eprintln!("warning: could not write BENCH_hotpath.json: {e}");
    } else {
        eprintln!(
            "wrote BENCH_hotpath.json ({:.1} M instr/s cached, {:.1} M instr/s direct, {:.0} devices/s = {:.2}x baseline, elision -{:.1}% retired = {:.2}x workload, fusion {:.2}x dispatch)",
            cached.instr_per_second / 1e6,
            direct.instr_per_second / 1e6,
            fleet.devices_per_second,
            fleet.devices_per_second / hotpath::BASELINE_FLEET_DEVICES_PER_SECOND,
            elision.instr_retired_drop_percent(),
            elision.workload_speedup(),
            fusion.dispatch_speedup(),
        );
    }
}
