//! Emits the cross-platform comparison (per-method costs, measured switch
//! cycles, catalogue packing and battery impact on every built-in platform
//! profile) as JSON on stdout.
//!
//! Usage: `cargo run -p amulet-bench --bin platform_compare`.

fn main() {
    let rows = amulet_bench::platform_compare::compare();
    print!("{}", amulet_bench::platform_compare::render_json(&rows));
}
