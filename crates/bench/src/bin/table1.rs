//! Regenerates Table 1 of the paper on the simulated device.
//!
//! Usage: `cargo run -p amulet-bench --bin table1 [rounds]` (default 200).

fn main() {
    let rounds: u16 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let rows = amulet_bench::table1::measure(rounds);
    print!("{}", amulet_bench::table1::render(&rows));
}
