//! Figure 2: isolation overhead (billions of cycles per week) and battery
//! lifetime impact for the nine Amulet applications.

use amulet_arp::arp::{Arp, ArpView};
use amulet_core::method::IsolationMethod;
use std::fmt::Write as _;

/// One (application, method) point of Figure 2.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Application name.
    pub app: String,
    /// Isolation method.
    pub method: IsolationMethod,
    /// Overhead in billions of cycles per week (left axis of Figure 2).
    pub billions_of_cycles_per_week: f64,
    /// Battery-lifetime impact in percent (right axis of Figure 2).
    pub battery_impact_percent: f64,
}

/// Computes the Figure 2 data set from the application catalogue's ARP
/// profiles.
pub fn compute() -> Vec<Fig2Row> {
    let arp = Arp::default();
    let profiles: Vec<_> = amulet_apps::catalog()
        .into_iter()
        .map(|a| a.profile)
        .collect();
    arp.figure2(&profiles)
        .into_iter()
        .map(|e| Fig2Row {
            app: e.app,
            method: e.method,
            billions_of_cycles_per_week: e.billions_of_cycles_per_week,
            battery_impact_percent: e.battery_impact_percent,
        })
        .collect()
}

/// The underlying ARP-view (for the richer report, including joules).
pub fn arp_view() -> ArpView {
    let arp = Arp::default();
    let profiles: Vec<_> = amulet_apps::catalog()
        .into_iter()
        .map(|a| a.profile)
        .collect();
    arp.render_figure2(&profiles)
}

/// Renders Figure 2 as a text table grouped by application.
pub fn render(rows: &[Fig2Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 2 — isolation overhead (Gcycles/week) and battery-lifetime impact (%)"
    );
    let _ = writeln!(
        s,
        "{:<16} {:<16} {:>14} {:>12}",
        "application", "memory model", "Gcycles/week", "battery %"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<16} {:<16} {:>14.3} {:>12.4}",
            r.app,
            r.method.label(),
            r.billions_of_cycles_per_week,
            r.battery_impact_percent
        );
    }
    let max = rows
        .iter()
        .map(|r| r.battery_impact_percent)
        .fold(0.0, f64::max);
    let _ = writeln!(
        s,
        "maximum battery impact across all applications and methods: {max:.4}% (paper: < 0.5%)"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_nine_apps_and_three_methods() {
        let rows = compute();
        assert_eq!(rows.len(), 9 * 3);
        let apps: std::collections::BTreeSet<_> = rows.iter().map(|r| r.app.clone()).collect();
        assert_eq!(apps.len(), 9);
    }

    #[test]
    fn every_app_stays_below_half_a_percent_battery_impact() {
        // The paper's headline claim for Figure 2.
        for row in compute() {
            assert!(
                row.battery_impact_percent < 0.5,
                "{} under {} costs {}%",
                row.app,
                row.method,
                row.battery_impact_percent
            );
            assert!(row.battery_impact_percent >= 0.0);
        }
    }

    #[test]
    fn overheads_are_in_the_figures_magnitude_range() {
        // Figure 2's left axis tops out around 3 billion cycles/week; the
        // busiest app should land within an order of magnitude of that, and
        // no app should exceed it wildly.
        let rows = compute();
        let max = rows
            .iter()
            .map(|r| r.billions_of_cycles_per_week)
            .fold(0.0, f64::max);
        assert!(
            max > 0.3,
            "busiest app produces a visible overhead ({max} Gcycles)"
        );
        assert!(
            max < 5.0,
            "no app exceeds the figure's scale ({max} Gcycles)"
        );
    }

    #[test]
    fn hrlog_is_cheaper_under_software_only_but_pedometer_is_cheaper_under_mpu() {
        // §4.2's observation about OS-intensive vs computation-intensive
        // apps, visible in Figure 2.
        let rows = compute();
        let get = |app: &str, m: IsolationMethod| {
            rows.iter()
                .find(|r| r.app == app && r.method == m)
                .unwrap()
                .billions_of_cycles_per_week
        };
        assert!(get("HRLog", IsolationMethod::SoftwareOnly) < get("HRLog", IsolationMethod::Mpu));
        assert!(
            get("Pedometer", IsolationMethod::Mpu)
                < get("Pedometer", IsolationMethod::SoftwareOnly)
        );
        assert!(
            get("FallDetection", IsolationMethod::Mpu)
                < get("FallDetection", IsolationMethod::FeatureLimited)
        );
    }

    #[test]
    fn render_includes_the_headline_line() {
        let text = render(&compute());
        assert!(text.contains("maximum battery impact"));
        assert!(text.contains("Pedometer"));
    }
}
