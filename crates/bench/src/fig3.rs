//! Figure 3: percentage slowdown of the benchmark applications under each
//! memory-isolation method, relative to No Isolation.
//!
//! Each benchmark is run `iterations` times (the paper uses 200) on the
//! simulated device under all four memory models; the slowdown is computed
//! from total cycles.  The four methods are measured in parallel worker
//! threads (each owns its own simulated device), which keeps the 4 × 200
//! handler invocations quick on a host machine.

use amulet_apps::BenchmarkApp;
use amulet_core::method::IsolationMethod;
use amulet_os::os::DeliveryOutcome;
use std::fmt::Write as _;

/// One bar of Figure 3.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// Workload name ("Activity Case 1", "Activity Case 2", "Quicksort").
    pub workload: String,
    /// Isolation method.
    pub method: IsolationMethod,
    /// Total cycles across all iterations.
    pub cycles: u64,
    /// Percentage slowdown relative to the No Isolation run of the same
    /// workload.
    pub slowdown_percent: f64,
}

/// A workload: which benchmark app, and which handler sequence constitutes
/// one iteration.
struct Workload {
    name: &'static str,
    app: fn() -> BenchmarkApp,
    /// (handler, payload) pairs run once per iteration; only the cycles of
    /// the *last* pair are accumulated (earlier pairs are setup).
    setup: &'static [(&'static str, u16)],
    measured: (&'static str, u16),
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "Activity Case 1",
            app: amulet_apps::activity_detection,
            setup: &[("fill", 11)],
            measured: ("case1", 0),
        },
        Workload {
            name: "Activity Case 2",
            app: amulet_apps::activity_detection,
            setup: &[("fill", 11), ("case1", 0)],
            measured: ("case2", 0),
        },
        Workload {
            name: "Quicksort",
            app: amulet_apps::quicksort,
            setup: &[],
            measured: ("run", 0),
        },
    ]
}

fn run_workload(w: &Workload, source: &str, method: IsolationMethod, iterations: u16) -> u64 {
    let template = (w.app)();
    let mut app_source = amulet_aft::aft::AppSource::new(template.name, source, template.handlers);
    if let Some(stack) = template.stack_override {
        app_source = app_source.with_stack(stack);
    }
    let firmware = amulet_aft::aft::Aft::new(method)
        .add_app(app_source)
        .build()
        .unwrap_or_else(|e| panic!("{method}: failed to build {}: {e}", template.name))
        .firmware;
    let mut os = amulet_os::os::AmuletOs::new(firmware);
    os.boot();
    for (handler, payload) in w.setup {
        let (outcome, _) = os.call_handler(0, handler, *payload);
        assert_eq!(
            outcome,
            DeliveryOutcome::Completed,
            "{method}: setup {handler}"
        );
    }
    let mut total = 0;
    for i in 0..iterations {
        // Vary the payload so quicksort sorts a different permutation each
        // iteration (the paper runs 200 distinct iterations).
        let payload = w.measured.1.wrapping_add(i);
        let (outcome, cycles) = os.call_handler(0, w.measured.0, payload);
        assert_eq!(
            outcome,
            DeliveryOutcome::Completed,
            "{method}: {}",
            w.measured.0
        );
        total += cycles;
    }
    total
}

/// Measures Figure 3 with the given number of iterations per workload
/// (the paper uses 200).
///
/// Feature Limited cannot compile the pointer/recursion sources, so its
/// slowdown is computed against a No-Isolation build of the *ported*
/// (array-only) source — i.e. each method is compared against an
/// uninstrumented build of the exact code it runs, which is what "slowdown
/// caused by the isolation method" means.
pub fn measure(iterations: u16) -> Vec<Fig3Row> {
    let iterations = iterations.max(1);
    let mut rows = Vec::new();
    for w in workloads() {
        let template = (w.app)();
        // Five runs per workload: the four methods, plus an uninstrumented
        // build of the Feature Limited port to serve as its baseline.  Each
        // run owns its own simulated device, so they execute on parallel
        // threads.
        let mut results: Vec<(usize, u64)> = Vec::new();
        let jobs: Vec<(IsolationMethod, &str)> = vec![
            (IsolationMethod::NoIsolation, template.pointer_source),
            (
                IsolationMethod::FeatureLimited,
                template.feature_limited_source,
            ),
            (IsolationMethod::Mpu, template.pointer_source),
            (IsolationMethod::SoftwareOnly, template.pointer_source),
            (
                IsolationMethod::NoIsolation,
                template.feature_limited_source,
            ),
        ];
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .iter()
                .enumerate()
                .map(|(i, (method, source))| {
                    let w = &w;
                    scope.spawn(move || (i, run_workload(w, source, *method, iterations)))
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("measurement thread panicked"));
            }
        });
        results.sort_by_key(|(i, _)| *i);
        let cycles: Vec<u64> = results.into_iter().map(|(_, c)| c).collect();
        let pointer_baseline = cycles[0].max(1);
        let ported_baseline = cycles[4].max(1);

        for (slot, method) in IsolationMethod::ALL.iter().enumerate() {
            let measured = cycles[slot];
            let baseline = if *method == IsolationMethod::FeatureLimited {
                ported_baseline
            } else {
                pointer_baseline
            };
            rows.push(Fig3Row {
                workload: w.name.to_string(),
                method: *method,
                cycles: measured,
                slowdown_percent: (measured as f64 - baseline as f64) / baseline as f64 * 100.0,
            });
        }
    }
    rows
}

/// Renders Figure 3 as a text table.
pub fn render(rows: &[Fig3Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 3 — percentage slowdown vs No Isolation");
    let _ = writeln!(
        s,
        "{:<18} {:<16} {:>14} {:>12}",
        "workload", "memory model", "cycles", "slowdown %"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<18} {:<16} {:>14} {:>12.1}",
            r.workload,
            r.method.label(),
            r.cycles,
            r.slowdown_percent
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [Fig3Row], workload: &str, method: IsolationMethod) -> &'a Fig3Row {
        rows.iter()
            .find(|r| r.workload == workload && r.method == method)
            .unwrap()
    }

    #[test]
    fn quicksort_prefers_the_mpu_method() {
        let rows = measure(10);
        let mpu = row(&rows, "Quicksort", IsolationMethod::Mpu).slowdown_percent;
        let sw = row(&rows, "Quicksort", IsolationMethod::SoftwareOnly).slowdown_percent;
        let fl = row(&rows, "Quicksort", IsolationMethod::FeatureLimited).slowdown_percent;
        assert!(mpu > 0.0);
        assert!(mpu < sw, "MPU {mpu}% < Software Only {sw}%");
        assert!(
            sw < fl + 30.0,
            "Feature Limited is in the same ballpark or worse ({fl}%)"
        );
        assert!(fl > mpu, "Feature Limited {fl}% > MPU {mpu}%");
    }

    #[test]
    fn activity_cases_are_memory_heavy_so_mpu_beats_software_only() {
        let rows = measure(10);
        for case in ["Activity Case 1", "Activity Case 2"] {
            let mpu = row(&rows, case, IsolationMethod::Mpu).slowdown_percent;
            let sw = row(&rows, case, IsolationMethod::SoftwareOnly).slowdown_percent;
            assert!(mpu < sw, "{case}: MPU {mpu}% < SW {sw}%");
        }
    }

    #[test]
    fn no_isolation_rows_have_zero_slowdown_and_everything_else_is_bounded() {
        let rows = measure(5);
        for r in &rows {
            if r.method == IsolationMethod::NoIsolation {
                assert_eq!(r.slowdown_percent, 0.0);
            } else {
                assert!(r.slowdown_percent > 0.0, "{:?}", r);
                assert!(r.slowdown_percent < 120.0, "{:?}", r);
            }
        }
    }

    #[test]
    fn render_lists_all_three_workloads() {
        let text = render(&measure(3));
        assert!(text.contains("Activity Case 1"));
        assert!(text.contains("Activity Case 2"));
        assert!(text.contains("Quicksort"));
    }
}
