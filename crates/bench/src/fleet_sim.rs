//! The fleet-simulation bench: runs a [`amulet_fleet::FleetScenario`] and renders the
//! aggregate report — including the per-event vs batched switch-overhead
//! comparison — as `BENCH_fleet.json`.
//!
//! The deterministic part of the document (everything under `"scenario"`
//! and `"aggregate"`) is a pure function of the scenario seed, regardless
//! of worker count; wall-clock timing fields live in a separate
//! `"timing"` object that the binary fills in.
//!
//! An arrival-order report renders **exactly** the fields it always has;
//! the time-stepped fields (`time_mode`, idle energy, duty cycle,
//! delivery-latency percentiles, the battery-lifetime projection and the
//! per-event-vs-batched latency comparison) appear only under
//! [`TimeMode::Stepped`], so arrival-order documents stay byte-compatible
//! with every earlier consumer.
//!
//! [`TimeMode::Stepped`]: amulet_fleet::TimeMode::Stepped

use crate::json::Json;
use amulet_fleet::{FleetAggregate, FleetReport, FleetScenario, FleetSummary, TimeMode};

/// Renders the deterministic part of a fleet report as a JSON document;
/// `wall_seconds` (when known) adds the non-deterministic timing object.
pub fn render_json(report: &FleetReport, wall_seconds: Option<f64>) -> String {
    render_document(
        &report.scenario,
        report.workers,
        &report.aggregate,
        wall_seconds,
        None,
        None,
    )
}

/// Renders a streaming [`FleetSummary`] — the same document as
/// [`render_json`], byte for byte, since the renderer only ever reads the
/// scenario, the worker count and the aggregate.
pub fn render_summary_json(summary: &FleetSummary, wall_seconds: Option<f64>) -> String {
    render_document(
        &summary.scenario,
        summary.workers,
        &summary.aggregate,
        wall_seconds,
        None,
        None,
    )
}

/// The shared render core behind [`render_json`] and
/// [`render_summary_json`]; `scaling` (when present) appends the
/// scaling-campaign section the `--scaling` driver composes, and `store`
/// (when present) the `firmware_store` section — prewarm timing plus
/// [`amulet_fleet::FirmwareStoreStats`] counters.  Both are measurement
/// sections: like `timing`, they never enter the deterministic document
/// (`--report-out` renders with all three absent, which is what makes
/// cold-run and warm-run reports byte-comparable).
pub fn render_document(
    s: &FleetScenario,
    workers: usize,
    agg: &FleetAggregate,
    wall_seconds: Option<f64>,
    scaling: Option<Json>,
    store: Option<Json>,
) -> String {
    render_document_with(s, workers, agg, wall_seconds, scaling, store, Vec::new())
}

/// [`render_document`] plus arbitrary trailing document-level sections —
/// how the `--scaling` driver attaches the fault-storm `containment` and
/// `ota_wave` sections (measured on the storm scenario) to the committed
/// scaling document without disturbing any earlier field.
#[allow(clippy::too_many_arguments)]
pub fn render_document_with(
    s: &FleetScenario,
    workers: usize,
    agg: &FleetAggregate,
    wall_seconds: Option<f64>,
    scaling: Option<Json>,
    store: Option<Json>,
    extras: Vec<(&'static str, Json)>,
) -> String {
    let stepped = s.time_mode == TimeMode::Stepped;
    let mut scenario = Json::obj()
        .field("name", s.name.as_str())
        .field("seed", s.seed)
        .field("devices", s.devices)
        .field("events_per_device", s.events_per_device)
        .field("max_apps_per_device", s.max_apps_per_device)
        .field("max_batch", s.max_batch)
        .field("max_latency_events", s.max_latency_events);
    if stepped {
        scenario = scenario.field("time_mode", s.time_mode.label());
        if let Some(na) = s.lpm_current_override_na {
            scenario = scenario.field("lpm_current_override_na", u64::from(na));
        }
    }
    // Scaling-campaign knobs render only when set, so every historical
    // document (and its consumers) stays byte-compatible.
    if s.silent_permille > 0 {
        scenario = scenario.field("silent_permille", u64::from(s.silent_permille));
    }
    if let Some((start, len)) = s.catalog_window {
        scenario = scenario.field(
            "catalog_window",
            Json::obj().field("start", start).field("len", len),
        );
    }
    // Fault-campaign knobs, same rule: armed scenarios only.
    if s.fault_permille > 0 {
        scenario = scenario.field("fault_permille", u64::from(s.fault_permille));
    }
    if let Some(budget) = s.step_budget {
        scenario = scenario.field("step_budget", budget);
    }
    if s.watchdog_max_strikes > 0 {
        scenario = scenario.field(
            "watchdog",
            Json::obj()
                .field("base_backoff", u64::from(s.watchdog_base_backoff))
                .field("max_strikes", u64::from(s.watchdog_max_strikes)),
        );
    }
    if s.ota_permille > 0 {
        scenario = scenario
            .field("ota_permille", u64::from(s.ota_permille))
            .field("ota_corrupt_permille", u64::from(s.ota_corrupt_permille))
            .field("ota_max_retries", u64::from(s.ota_max_retries));
    }
    // Static-verification knobs, same armed-only rule.
    if s.verify {
        scenario = scenario.field("verify", Json::Bool(true));
    }
    if s.elide_checks {
        scenario = scenario.field("elide_checks", Json::Bool(true));
    }

    let policy = |p: &amulet_fleet::PolicyAggregate| {
        let mut o = Json::obj()
            .field("total_cycles", p.total_cycles)
            .field("switch_cycles", p.switch_cycles)
            .field("switch_overhead_share", p.switch_overhead_share)
            .field("switch_cycles_per_event", p.switch_cycles_per_event)
            .field("events_delivered", p.events_delivered)
            .field("faults", p.faults)
            .field("full_switches", p.full_switches)
            .field("batch_boundaries", p.batch_boundaries)
            .field(
                "energy_joules",
                Json::obj()
                    .field("total", p.energy.total_joules)
                    .field("mean", p.energy.mean_joules)
                    .field("p50", p.energy.p50_joules)
                    .field("p99", p.energy.p99_joules),
            );
        if stepped {
            o = o
                .field("idle_joules", p.idle_joules)
                .field("idle_energy_share", p.idle_energy_share)
                .field("duty_cycle", p.duty_cycle)
                .field(
                    "delivery_latency_ms",
                    Json::obj()
                        .field("events", p.delivery_latency.events)
                        .field("mean", p.delivery_latency.mean_ms)
                        .field("p50", p.delivery_latency.p50_ms)
                        .field("p99", p.delivery_latency.p99_ms)
                        .field("max", p.delivery_latency.max_ms)
                        .field("truncated_events", p.truncated_events),
                )
                .field("battery_weeks_p50", p.battery_weeks_p50);
        }
        o
    };
    let count_list = |items: &[(String, u64)]| {
        items
            .iter()
            .map(|(name, n)| {
                Json::obj()
                    .field("name", name.as_str())
                    .field("devices", *n)
            })
            .collect::<Vec<Json>>()
    };
    let histograms: Vec<Json> = agg
        .battery_histograms
        .iter()
        .map(|h| {
            Json::obj()
                .field("profile", h.profile.as_str())
                .field("instances", h.instances)
                .field("max_impact_percent", h.max_impact_percent)
                .field(
                    "bucket_edges_percent",
                    amulet_fleet::BATTERY_IMPACT_BUCKET_EDGES
                        .iter()
                        .map(|e| Json::F64(*e))
                        .collect::<Vec<_>>(),
                )
                .field(
                    "counts",
                    h.buckets.iter().map(|c| Json::U64(*c)).collect::<Vec<_>>(),
                )
        })
        .collect();

    let mut aggregate = Json::obj()
        .field("devices", agg.devices)
        .field(
            "devices_per_platform",
            count_list(&agg.devices_per_platform),
        )
        .field("devices_per_method", count_list(&agg.devices_per_method))
        .field("per_event", policy(&agg.per_event))
        .field("batched", policy(&agg.batched))
        .field(
            "switch_cycles_saved_percent",
            agg.switch_cycles_saved_percent,
        )
        .field(
            "switch_cycles_saved_per_event_percent",
            agg.switch_cycles_saved_per_event_percent,
        );
    if stepped {
        // What batching *costs* in delivery latency, next to what it
        // saves in switch cycles: the measured form of the DESIGN §6
        // latency trade.
        let (pe, ba) = (
            &agg.per_event.delivery_latency,
            &agg.batched.delivery_latency,
        );
        aggregate = aggregate.field(
            "latency_vs_batching",
            Json::obj()
                .field("per_event_p50_ms", pe.p50_ms)
                .field("per_event_p99_ms", pe.p99_ms)
                .field("batched_p50_ms", ba.p50_ms)
                .field("batched_p99_ms", ba.p99_ms)
                .field("batching_added_p50_ms", ba.p50_ms - pe.p50_ms)
                .field("batching_added_p99_ms", ba.p99_ms - pe.p99_ms),
        );
    }
    // The containment matrix and OTA-wave tallies exist only when the
    // scenario armed faults or waves — absent otherwise, like every
    // campaign field.
    if !agg.containment.is_empty() {
        aggregate = aggregate.field("containment", containment_json(&agg.containment));
    }
    if agg.ota_wave.devices > 0 {
        aggregate = aggregate.field("ota_wave", ota_wave_json(&agg.ota_wave));
    }
    let aggregate = aggregate.field("battery_impact_histograms", histograms);

    let mut doc = Json::obj()
        .field("bench", "fleet_sim")
        .field("scenario", scenario)
        .field("aggregate", aggregate);
    if let Some(secs) = wall_seconds {
        // Events/second is the discrete-event headline: a mostly-silent
        // 10⁵-device fleet does far less work per device than a dense one,
        // and devices/second alone would hide that.
        let events = agg.per_event.events_delivered + agg.batched.events_delivered;
        let rate = |n: f64| if secs > 0.0 { n / secs } else { 0.0 };
        doc = doc.field(
            "timing",
            Json::obj()
                .field("workers", workers)
                .field("wall_seconds", secs)
                .field("devices_per_second", rate(s.devices as f64))
                .field("events_per_second", rate(events as f64)),
        );
    }
    if let Some(scaling) = scaling {
        doc = doc.field("scaling", scaling);
    }
    if let Some(store) = store {
        doc = doc.field("firmware_store", store);
    }
    for (name, value) in extras {
        doc = doc.field(name, value);
    }
    doc.render()
}

/// Renders the per-(platform, method, fault) containment matrix as an
/// array of verdict-count rows, in the aggregate's deterministic
/// name-sorted order.
pub fn containment_json(rows: &[amulet_fleet::ContainmentRow]) -> Vec<Json> {
    rows.iter()
        .map(|r| {
            Json::obj()
                .field("platform", r.platform.as_str())
                .field("method", r.method.as_str())
                .field("fault", r.fault.as_str())
                .field("devices", r.devices)
                .field("caught_by_mpu", r.caught_by_mpu)
                .field("caught_by_software", r.caught_by_software)
                .field("escaped", r.escaped)
                .field("hung", r.hung)
                .field("crashed", r.crashed)
        })
        .collect()
}

/// Renders the fleet-wide OTA-wave tallies as one JSON object.
pub fn ota_wave_json(w: &amulet_fleet::OtaWaveStats) -> Json {
    Json::obj()
        .field("devices", w.devices)
        .field("installed", w.installed)
        .field("rolled_back", w.rolled_back)
        .field("bricked", w.bricked)
        .field("retried_devices", w.retried_devices)
        .field("attempts", w.attempts)
        .field("corrupt_attempts", w.corrupt_attempts)
        .field("backoff_ms", w.backoff_ms)
}

/// Renders a [`amulet_fleet::FleetVerifySummary`] as one JSON object —
/// the `verifier` section a `--verify` run attaches to its document.
/// Deterministic: every field is a pure function of the scenario.
pub fn verify_summary_json(v: &amulet_fleet::FleetVerifySummary) -> Json {
    Json::obj()
        .field("images", v.images)
        .field("apps", v.apps)
        .field("proven_safe", v.proven_safe)
        .field("proven_escape", v.proven_escape)
        .field("unknown", v.unknown)
        .field("elidable_sites", v.elidable_sites)
        .field("elidable_candidates", v.elidable_candidates)
        .field("passes_gate", Json::Bool(v.passes_gate()))
}

/// Renders [`amulet_fleet::FirmwareStoreStats`] counters as one JSON object
/// — the `FirmwareStoreStats` line the report carries for each store phase.
pub fn store_stats_json(stats: &amulet_fleet::FirmwareStoreStats) -> Json {
    Json::obj()
        .field("hits", stats.hits)
        .field("misses", stats.misses)
        .field("disk_hits", stats.disk_hits)
        .field("builds", stats.builds)
        .field("bytes_read", stats.bytes_read)
        .field("bytes_written", stats.bytes_written)
        .field("evictions", stats.evictions)
        .field("disk_evictions", stats.disk_evictions)
        .field("verify_failures", stats.verify_failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amulet_fleet::simulate;

    fn tiny() -> FleetScenario {
        FleetScenario {
            devices: 16,
            events_per_device: 24,
            ..FleetScenario::default()
        }
    }

    #[test]
    fn json_contains_the_headline_fields_and_balances() {
        let report = simulate(&tiny(), 2);
        let text = render_json(&report, Some(0.5));
        for needle in [
            "\"bench\": \"fleet_sim\"",
            "\"scenario\"",
            "\"aggregate\"",
            "\"per_event\"",
            "\"batched\"",
            "\"switch_cycles_saved_percent\"",
            "\"battery_impact_histograms\"",
            "\"devices_per_second\"",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn aggregate_json_is_identical_across_worker_counts() {
        // The fleet-determinism acceptance criterion, end to end: the
        // rendered aggregate document (timing omitted) must match byte for
        // byte between a serial and a parallel run of the same seed.
        let serial = render_json(&simulate(&tiny(), 1), None);
        let parallel = render_json(&simulate(&tiny(), 8), None);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn batching_saves_switch_cycles_in_the_rendered_report() {
        let report = simulate(&tiny(), 4);
        assert!(report.aggregate.batched.switch_cycles < report.aggregate.per_event.switch_cycles);
        let text = render_json(&report, None);
        assert!(!text.contains("\"timing\""), "timing only when measured");
    }

    #[test]
    fn arrival_order_reports_contain_no_stepped_fields() {
        let text = render_json(&simulate(&tiny(), 2), None);
        for absent in [
            "time_mode",
            "idle_joules",
            "idle_energy_share",
            "duty_cycle",
            "delivery_latency_ms",
            "battery_weeks_p50",
            "latency_vs_batching",
            "lpm_current_override_na",
            "silent_permille",
            "catalog_window",
            "truncated_events",
            "scaling",
            "firmware_store",
            "fault_permille",
            "step_budget",
            "watchdog",
            "ota_permille",
            "containment",
            "ota_wave",
            "\"verify\"",
            "elide_checks",
            "\"verifier\"",
        ] {
            assert!(!text.contains(absent), "{absent} leaked into arrival-order");
        }
    }

    #[test]
    fn verifier_knobs_and_section_render_only_when_armed() {
        let scenario = FleetScenario {
            verify: true,
            elide_checks: true,
            ..tiny()
        };
        let report = simulate(&scenario, 2);
        let summary = amulet_fleet::verify_fleet(&scenario, 2);
        let text = render_document_with(
            &report.scenario,
            report.workers,
            &report.aggregate,
            None,
            None,
            None,
            vec![("verifier", verify_summary_json(&summary))],
        );
        for needle in [
            "\"verify\": true",
            "\"elide_checks\": true",
            "\"verifier\"",
            "\"passes_gate\": true",
            "\"proven_escape\": 0",
            "\"elidable_sites\"",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }

    #[test]
    fn storm_reports_render_the_containment_matrix_and_ota_wave() {
        let scenario = FleetScenario::storm(600);
        let text = render_summary_json(&amulet_fleet::simulate_summary(&scenario, 1), None);
        for needle in [
            "\"fault_permille\": 400",
            "\"step_budget\": 20000",
            "\"watchdog\"",
            "\"max_strikes\": 3",
            "\"ota_permille\": 250",
            "\"ota_corrupt_permille\": 200",
            "\"ota_max_retries\": 3",
            "\"containment\"",
            "\"caught_by_mpu\"",
            "\"escaped\"",
            "\"ota_wave\"",
            "\"bricked\": 0",
            "\"rolled_back\"",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        let parallel = render_summary_json(&amulet_fleet::simulate_summary(&scenario, 8), None);
        assert_eq!(text, parallel, "storm reports are worker-count-free");
    }

    #[test]
    fn summary_renders_the_same_document_as_the_materialised_report() {
        let scenario = FleetScenario {
            time_mode: amulet_fleet::TimeMode::Stepped,
            silent_permille: 400,
            catalog_window: Some((2, 4)),
            ..tiny()
        };
        let report = render_json(&simulate(&scenario, 2), None);
        let summary = render_summary_json(&amulet_fleet::simulate_summary(&scenario, 2), None);
        assert_eq!(report, summary);
        for needle in [
            "\"silent_permille\": 400",
            "\"catalog_window\"",
            "\"truncated_events\"",
        ] {
            assert!(report.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn scaling_section_renders_when_provided() {
        let report = simulate(&tiny(), 1);
        let text = render_document(
            &report.scenario,
            report.workers,
            &report.aggregate,
            Some(1.0),
            Some(Json::obj().field("speedup_vs_extrapolated_linear_at_1e5", 50.0)),
            None,
        );
        assert!(text.contains("\"scaling\""));
        assert!(text.contains("\"events_per_second\""));
        assert!(text.contains("speedup_vs_extrapolated_linear_at_1e5"));
    }

    #[test]
    fn firmware_store_section_renders_only_when_measured() {
        let report = simulate(&tiny(), 1);
        let stats = amulet_fleet::FirmwareStoreStats {
            hits: 30,
            misses: 2,
            disk_hits: 1,
            builds: 1,
            bytes_read: 512,
            bytes_written: 512,
            ..Default::default()
        };
        let text = render_document(
            &report.scenario,
            report.workers,
            &report.aggregate,
            Some(1.0),
            None,
            Some(
                Json::obj()
                    .field("prewarm_seconds", 0.25)
                    .field("stats", store_stats_json(&stats)),
            ),
        );
        for needle in [
            "\"firmware_store\"",
            "\"prewarm_seconds\"",
            "\"hits\": 30",
            "\"disk_hits\": 1",
            "\"builds\": 1",
            "\"bytes_written\": 512",
            "\"evictions\": 0",
            "\"verify_failures\": 0",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
        // The deterministic document (the one `--report-out` writes and the
        // CI cold/warm byte-diff compares) must not carry store state.
        let bare = render_document(
            &report.scenario,
            report.workers,
            &report.aggregate,
            None,
            None,
            None,
        );
        assert!(!bare.contains("firmware_store"));
        assert!(!bare.contains("timing"));
    }

    #[test]
    fn stepped_reports_add_the_time_fields_and_stay_deterministic() {
        let scenario = FleetScenario {
            time_mode: amulet_fleet::TimeMode::Stepped,
            ..tiny()
        };
        let text = render_json(&simulate(&scenario, 2), None);
        for needle in [
            "\"time_mode\": \"stepped\"",
            "\"idle_joules\"",
            "\"idle_energy_share\"",
            "\"duty_cycle\"",
            "\"delivery_latency_ms\"",
            "\"battery_weeks_p50\"",
            "\"latency_vs_batching\"",
            "\"batching_added_p50_ms\"",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        let parallel = render_json(&simulate(&scenario, 8), None);
        assert_eq!(text, parallel, "stepped reports are worker-count-free");
    }
}
