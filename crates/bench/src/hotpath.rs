//! The hot-path bench: how fast does the simulator execute instructions,
//! and how many fleet devices per second does that buy?
//!
//! Two measurements, both emitted as `BENCH_hotpath.json` so the repo
//! keeps a perf trajectory across PRs:
//!
//! * **Microbench** — a tight arithmetic/load/store loop executed on one
//!   device with the MPU enabled, measured once with the bus's access-
//!   attribute cache on (the shipping configuration) and once with it off
//!   (every access runs the region cascade + MPU backend directly).  The
//!   ratio isolates what the flat attribute table buys on the per-access
//!   path; instruction fetch is O(1) in both modes.
//! * **Fleet throughput** — wall-clock devices/second for a
//!   [`FleetScenario`] run, the number the ROADMAP's "as fast as the
//!   hardware allows" goal is tracked by.  The JSON also records the
//!   pre-optimisation baseline measured at the commit this bench was
//!   introduced, so the speedup is visible without digging through git
//!   history.
//! * **Superinstruction fusion** — the static adjacent-pair profile of
//!   the Software-Only catalogue image (the evidence the fusion
//!   candidate set is the hot set), the image's fusion report, a
//!   check-heavy microbench measured through fused and unfused
//!   dispatch, and the catalogue workload driven both ways with an
//!   outcome-identity bit.

use crate::json::Json;
use amulet_aft::aft::Aft;
use amulet_core::energy::EnergyModel;
use amulet_core::method::IsolationMethod;
use amulet_core::perm::AccessKind;
use amulet_fleet::{simulate, FleetScenario};
use amulet_mcu::code::InstrStore;
use amulet_mcu::cpu::StepEvent;
use amulet_mcu::device::{Device, StopReason};
use amulet_mcu::firmware::Firmware;
use amulet_mcu::isa::{AluOp, Cond, Instr, Reg, Width};
use amulet_mcu::mpu::{MPUCTL0, MPUSAM, MPUSEGB1, MPUSEGB2};
use amulet_mcu::FuseReport;
use amulet_os::events::{Event, EventKind};
use amulet_os::os::AmuletOs;
use std::time::Instant;

/// The `fleet_sim` devices/second measured immediately **before** the
/// hot-path optimisation landed (BTreeMap instruction fetch, per-access
/// region cascade + MPU dispatch), on the reference dev container: 1000
/// devices, 120 events each, 1 worker, default scenario seed.  Kept as the
/// denominator of the speedup this bench reports.
pub const BASELINE_FLEET_DEVICES_PER_SECOND: f64 = 225.0;

/// Shape of the baseline measurement (what `fleet_sim` was invoked with).
pub const BASELINE_FLEET_SCENARIO: (usize, usize, usize) = (1000, 120, 1);

/// One microbench measurement.
#[derive(Clone, Copy, Debug)]
pub struct MicrobenchResult {
    /// Whether the access-attribute cache was enabled.
    pub attr_cache: bool,
    /// Instructions executed.
    pub instructions: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Simulated instructions per wall-clock second.
    pub instr_per_second: f64,
}

/// One fleet-throughput measurement.
#[derive(Clone, Copy, Debug)]
pub struct FleetThroughput {
    /// Devices simulated.
    pub devices: usize,
    /// Events delivered per device (per delivery policy).
    pub events_per_device: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Devices simulated per wall-clock second.
    pub devices_per_second: f64,
}

/// Builds the microbench device: a counting loop in MPU segment 1
/// (execute-only) that stores and re-loads its counter through segment 2
/// (read/write), with the segmented MPU enabled — so every iteration pays
/// one instruction-fetch check and two data-access checks, exactly the
/// per-access work the attribute cache collapses to a table index.
fn microbench_device() -> (Device, InstrStore) {
    let mut dev = Device::msp430fr5969();
    // Segment boundaries 0x6000/0x8000; seg1 execute-only, seg2 RW.
    dev.bus.write(MPUSEGB1, 2, 0x600).expect("segb1");
    dev.bus.write(MPUSEGB2, 2, 0x800).expect("segb2");
    dev.bus.write(MPUSAM, 2, 0x0034).expect("sam");
    dev.bus.write(MPUCTL0, 2, 0xA501).expect("ctl0");

    let mut code = InstrStore::new();
    let base = 0x4400;
    let mut cursor = base;
    let body = [
        Instr::MovImm {
            dst: Reg::R4,
            imm: 0,
        },
        Instr::MovImm {
            dst: Reg::R5,
            imm: 0x6000,
        },
        // loop:
        Instr::AluImm {
            op: AluOp::Add,
            dst: Reg::R4,
            imm: 1,
        },
        Instr::Store {
            src: Reg::R4,
            base: Reg::R5,
            offset: 0,
            width: Width::Word,
        },
        Instr::Load {
            dst: Reg::R6,
            base: Reg::R5,
            offset: 0,
            width: Width::Word,
        },
        Instr::Alu {
            op: AluOp::Xor,
            dst: Reg::R6,
            src: Reg::R4,
        },
        Instr::Jmp { target: 0x4408 },
    ];
    for i in &body {
        code.insert(cursor, *i);
        cursor += i.size_bytes();
    }
    debug_assert_eq!(cursor, 0x441A, "loop layout: Jmp target must be 0x4408");
    dev.cpu.set_pc(base);
    dev.cpu.set_sp(0x2400);
    (dev, code)
}

/// Runs the tight loop for `steps` instructions and reports the rate.
pub fn run_microbench(steps: u64, attr_cache: bool) -> MicrobenchResult {
    let (mut dev, code) = microbench_device();
    dev.bus.set_attr_cache_enabled(attr_cache);
    dev.code = std::sync::Arc::new(code);
    // Warm up (resolves the attribute table outside the timed region).
    assert!(dev.bus.check_execute(0x4400).is_ok());
    let started = Instant::now();
    let exit = dev.run(steps);
    let wall = started.elapsed().as_secs_f64();
    assert_eq!(exit.reason, StopReason::StepLimit, "loop must not fault");
    assert_eq!(exit.steps, steps);
    MicrobenchResult {
        attr_cache,
        instructions: steps,
        wall_seconds: wall,
        instr_per_second: steps as f64 / wall.max(1e-9),
    }
}

/// Sanity-checks that the cached and direct paths agree on the microbench
/// device before any measurement is trusted: same decisions for a sweep of
/// reads/writes/fetches, and the same loop register state after `steps`
/// instructions.
pub fn verify_equivalence(steps: u64) -> bool {
    let (mut cached, code) = microbench_device();
    let (mut direct, code2) = microbench_device();
    direct.bus.set_attr_cache_enabled(false);
    cached.code = std::sync::Arc::new(code);
    direct.code = std::sync::Arc::new(code2);
    for addr in (0u32..0x1_0000).step_by(64) {
        for kind in [AccessKind::Read, AccessKind::Write, AccessKind::Execute] {
            let a = match kind {
                AccessKind::Read => cached.bus.read(addr, 1).is_ok(),
                AccessKind::Write => cached.bus.write(addr & !1, 2, 0).is_ok(),
                AccessKind::Execute => cached.bus.check_execute(addr & !1).is_ok(),
            };
            let b = match kind {
                AccessKind::Read => direct.bus.read(addr, 1).is_ok(),
                AccessKind::Write => direct.bus.write(addr & !1, 2, 0).is_ok(),
                AccessKind::Execute => direct.bus.check_execute(addr & !1).is_ok(),
            };
            if a != b {
                return false;
            }
        }
    }
    // The sweep may have scribbled on the loop's data word; both devices
    // saw identical traffic, so the paired runs still must agree.
    for dev in [&mut cached, &mut direct] {
        dev.cpu.set_pc(0x4400);
        while let StepEvent::Continue = dev.step() {
            if dev.cpu.stats.instructions >= steps {
                break;
            }
        }
    }
    cached.cpu.reg(Reg::R4) == direct.cpu.reg(Reg::R4)
        && cached.cpu.cycles == direct.cpu.cycles
        && cached.bus.stats == direct.bus.stats
}

/// Elision counts for one isolation method on the paper's platform.
#[derive(Clone, Debug)]
pub struct ElisionCount {
    /// Isolation method label.
    pub method: String,
    /// Checks the verifier certified redundant and elided.
    pub elided: usize,
    /// Elidable-kind checks the compiler emitted.
    pub candidates: usize,
}

/// One measured run of the check-heavy catalogue workload.
#[derive(Clone, Copy, Debug)]
pub struct ElisionRun {
    /// Instructions the simulated CPU retired.
    pub instructions: u64,
    /// Simulated cycles consumed (identical across elided/unelided by
    /// construction — elision fillers are cycle-neutral).
    pub total_cycles: u64,
    /// Energy in joules (a pure function of cycles).
    pub energy_joules: f64,
    /// Faults raised.
    pub faults: u64,
    /// Host wall-clock seconds.
    pub wall_seconds: f64,
    /// Retired instructions per wall-clock second.
    pub instr_per_second: f64,
    /// Simulated cycles per wall-clock second — the comparable
    /// throughput metric, since both images consume identical cycles.
    pub cycles_per_second: f64,
}

/// The check-elision measurement: per-method elision counts plus the
/// Software-Only catalogue driven with and without elision.
#[derive(Clone, Debug)]
pub struct ElisionBench {
    /// Elided/candidate counts per isolation method (fr5969 catalogue).
    pub profiles: Vec<ElisionCount>,
    /// Event rounds driven through each image (one event per app per
    /// round).
    pub rounds: usize,
    /// The unelided (oracle) run.
    pub unelided: ElisionRun,
    /// The elided run.
    pub elided: ElisionRun,
    /// Whether cycles, energy, faults and log agreed between the runs —
    /// the elision soundness bit, asserted before the numbers are
    /// trusted.
    pub outcomes_identical: bool,
}

impl ElisionBench {
    /// Share of retired instructions elision removed, in percent.
    pub fn instr_retired_drop_percent(&self) -> f64 {
        let (b, e) = (self.unelided.instructions, self.elided.instructions);
        if b == 0 {
            0.0
        } else {
            100.0 * (b.saturating_sub(e)) as f64 / b as f64
        }
    }

    /// Wall-clock speedup of the elided image on the same workload.
    pub fn workload_speedup(&self) -> f64 {
        self.unelided.wall_seconds / self.elided.wall_seconds.max(1e-9)
    }
}

/// Drives `rounds` rounds of one event per catalogue app (each app's
/// dominant handler, varying payloads) through a booted image and
/// reports the run's counters.  Returns the run plus the service-log
/// length used for the outcome comparison.
fn drive_catalogue(firmware: &Firmware, rounds: usize) -> (ElisionRun, usize) {
    let apps = amulet_apps::catalog();
    let energy = EnergyModel::msp430fr5969();
    let mut os = AmuletOs::new(firmware.clone());
    let started = Instant::now();
    os.boot();
    for round in 0..rounds {
        for (index, app) in apps.iter().enumerate() {
            let payload = ((round * 37 + index * 11) % 97) as u16;
            os.post_event(Event::new(
                index,
                app.dominant_handler().0,
                payload,
                EventKind::User,
            ));
            os.pump();
        }
    }
    os.flush();
    let wall = started.elapsed().as_secs_f64();
    let stats = os.cpu_stats();
    let cycles = os.total_cycles();
    (
        ElisionRun {
            instructions: stats.instructions,
            total_cycles: cycles,
            energy_joules: energy.cycles_to_joules(cycles),
            faults: stats.faults,
            wall_seconds: wall,
            instr_per_second: stats.instructions as f64 / wall.max(1e-9),
            cycles_per_second: cycles as f64 / wall.max(1e-9),
        },
        os.services.log.len(),
    )
}

/// Runs the check-elision bench: counts elided checks per isolation
/// method, then drives the check-heavy Software-Only catalogue for
/// `rounds` event rounds on the unelided and the elided image.
pub fn run_check_elision(rounds: usize) -> ElisionBench {
    let build = |method: IsolationMethod| {
        let mut aft = Aft::new(method);
        for app in amulet_apps::catalog() {
            aft = aft.add_app(app.app_source());
        }
        aft.build()
            .unwrap_or_else(|e| panic!("catalogue build {method}: {e}"))
    };
    let mut profiles = Vec::new();
    let mut software_only = None;
    for method in [
        IsolationMethod::NoIsolation,
        IsolationMethod::FeatureLimited,
        IsolationMethod::Mpu,
        IsolationMethod::SoftwareOnly,
    ] {
        let out = build(method);
        let outcome = amulet_verify::elide_checks(&out);
        profiles.push(ElisionCount {
            method: method.to_string(),
            elided: outcome.elided,
            candidates: outcome.candidates,
        });
        if method == IsolationMethod::SoftwareOnly {
            software_only = Some((out.firmware, outcome.firmware));
        }
    }
    let (unelided_fw, elided_fw) = software_only.expect("Software-Only profile measured");
    let (unelided, base_log) = drive_catalogue(&unelided_fw, rounds);
    let (elided, fast_log) = drive_catalogue(&elided_fw, rounds);
    let outcomes_identical = unelided.total_cycles == elided.total_cycles
        && unelided.energy_joules == elided.energy_joules
        && unelided.faults == elided.faults
        && base_log == fast_log;
    ElisionBench {
        profiles,
        rounds,
        unelided,
        elided,
        outcomes_identical,
    }
}

/// One adjacent instruction pair and how often it occurs in the image.
#[derive(Clone, Debug)]
pub struct PairCount {
    /// The pair, rendered `Head+Next` (e.g. `CmpImm+Jcc`).
    pub pair: String,
    /// Occurrences of the pair at adjacent addresses.
    pub count: usize,
    /// Whether the superinstruction pass matches a sequence headed by
    /// this pair — the profile's hot pairs justify the candidate set.
    pub fused_candidate: bool,
}

/// One dispatch-rate measurement of the superinstruction microbench.
#[derive(Clone, Copy, Debug)]
pub struct DispatchRate {
    /// Instructions retired.
    pub instructions: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Simulated instructions per wall-clock second.
    pub instr_per_second: f64,
}

/// The superinstruction-fusion measurement: the static pair profile that
/// justifies the candidate set, the fusion report for the Software-Only
/// catalogue image, the check-heavy dispatch microbench fused vs
/// unfused, and the catalogue workload driven both ways.
#[derive(Clone, Debug)]
pub struct FusionBench {
    /// Adjacent-pair frequency profile of the (unfused) Software-Only
    /// catalogue image, hottest first.
    pub pair_profile: Vec<PairCount>,
    /// Instructions in the catalogue image the profile was taken from.
    pub image_instructions: usize,
    /// What fusing that image matched.
    pub report: FuseReport,
    /// The check-heavy microbench through unfused dispatch.
    pub micro_unfused: DispatchRate,
    /// The same loop through fused dispatch.
    pub micro_fused: DispatchRate,
    /// Event rounds driven through each catalogue image.
    pub rounds: usize,
    /// The unfused (oracle) catalogue run.
    pub unfused: ElisionRun,
    /// The fused catalogue run.
    pub fused: ElisionRun,
    /// Whether instructions, cycles, energy, faults, registers and log
    /// agreed between every fused/unfused pair of runs — the fusion
    /// soundness bit, asserted before the numbers are trusted.
    pub outcomes_identical: bool,
}

impl FusionBench {
    /// Instr/s ratio of fused over unfused dispatch on the check-heavy
    /// microbench — the headline number the ISSUE's ≥2× bar is read
    /// from.
    pub fn dispatch_speedup(&self) -> f64 {
        self.micro_fused.instr_per_second / self.micro_unfused.instr_per_second.max(1e-9)
    }

    /// Wall-clock speedup of the fused image on the catalogue workload.
    pub fn workload_speedup(&self) -> f64 {
        self.unfused.wall_seconds / self.fused.wall_seconds.max(1e-9)
    }

    /// Share of the image's instructions covered by fused sequences.
    pub fn fused_share_percent(&self) -> f64 {
        if self.image_instructions == 0 {
            0.0
        } else {
            100.0 * self.report.fused_instructions as f64 / self.image_instructions as f64
        }
    }
}

/// Variant name used by the pair profile.
fn mnemonic(i: &Instr) -> &'static str {
    match i {
        Instr::MovImm { .. } => "MovImm",
        Instr::Mov { .. } => "Mov",
        Instr::Load { .. } => "Load",
        Instr::Store { .. } => "Store",
        Instr::LoadAbs { .. } => "LoadAbs",
        Instr::StoreAbs { .. } => "StoreAbs",
        Instr::Push { .. } => "Push",
        Instr::Pop { .. } => "Pop",
        Instr::Alu { .. } => "Alu",
        Instr::AluImm { .. } => "AluImm",
        Instr::Unary { .. } => "Unary",
        Instr::Cmp { .. } => "Cmp",
        Instr::CmpImm { .. } => "CmpImm",
        Instr::Jmp { .. } => "Jmp",
        Instr::Jcc { .. } => "Jcc",
        Instr::Br { .. } => "Br",
        Instr::Call { .. } => "Call",
        Instr::CallReg { .. } => "CallReg",
        Instr::Ret => "Ret",
        Instr::Syscall { .. } => "Syscall",
        Instr::Fault { .. } => "Fault",
        Instr::Halt => "Halt",
        Instr::Nop => "Nop",
        Instr::Elided { .. } => "Elided",
    }
}

/// The sequence-head pairs the superinstruction pass matches (the
/// `AddCheck` head is `AluImm+CmpImm`; `Check`/`Check2` head is
/// `CmpImm+Jcc`).
const FUSED_HEAD_PAIRS: [(&str, &str); 5] = [
    ("CmpImm", "Jcc"),
    ("AluImm", "CmpImm"),
    ("Push", "Mov"),
    ("Mov", "Pop"),
    ("Elided", "Elided"),
];

/// Counts every address-adjacent instruction pair in `code`, hottest
/// first (ties broken by name for determinism), truncated to the top
/// `keep`.
fn pair_profile(code: &InstrStore, keep: usize) -> Vec<PairCount> {
    let items: Vec<(u32, Instr)> = code.iter().map(|(a, i)| (a, *i)).collect();
    let mut counts = std::collections::BTreeMap::<(&str, &str), usize>::new();
    for w in items.windows(2) {
        let ((a0, i0), (a1, i1)) = (w[0], w[1]);
        if a0 + i0.size_bytes() == a1 {
            *counts.entry((mnemonic(&i0), mnemonic(&i1))).or_default() += 1;
        }
    }
    let mut profile: Vec<PairCount> = counts
        .into_iter()
        .map(|((head, next), count)| PairCount {
            pair: format!("{head}+{next}"),
            count,
            fused_candidate: FUSED_HEAD_PAIRS.contains(&(head, next)),
        })
        .collect();
    profile.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.pair.cmp(&b.pair)));
    profile.truncate(keep);
    profile
}

/// Builds the superinstruction microbench device: the Software-Only
/// check idiom in a tight loop — two fused double checks (the emitted
/// lower+upper data-pointer pair, twice) and one fused
/// add-then-check-bounds triple per iteration, so nearly every retired
/// instruction flows through a superinstruction slot when fusion is on
/// and through ordinary one-at-a-time dispatch when it is off.
fn fusion_microbench_device() -> (Device, InstrStore) {
    let mut dev = Device::msp430fr5969();
    let mut code = InstrStore::new();
    let fault = 0x4500;
    let body: [(u32, Instr); 15] = [
        (
            0x4400,
            Instr::MovImm {
                dst: Reg::R14,
                imm: 0x1C00,
            },
        ),
        (
            0x4404,
            Instr::MovImm {
                dst: Reg::R4,
                imm: 0,
            },
        ),
        // loop: the emitted data-pointer lower+upper pair, twice over.
        (
            0x4408,
            Instr::CmpImm {
                a: Reg::R14,
                imm: 0x1C00,
            },
        ),
        (
            0x440C,
            Instr::Jcc {
                cond: Cond::Lo,
                target: fault as u16,
            },
        ),
        (
            0x4410,
            Instr::CmpImm {
                a: Reg::R14,
                imm: 0x2400,
            },
        ),
        (
            0x4414,
            Instr::Jcc {
                cond: Cond::Hs,
                target: fault as u16,
            },
        ),
        (
            0x4418,
            Instr::CmpImm {
                a: Reg::R14,
                imm: 0x1C00,
            },
        ),
        (
            0x441C,
            Instr::Jcc {
                cond: Cond::Lo,
                target: fault as u16,
            },
        ),
        (
            0x4420,
            Instr::CmpImm {
                a: Reg::R14,
                imm: 0x2400,
            },
        ),
        (
            0x4424,
            Instr::Jcc {
                cond: Cond::Hs,
                target: fault as u16,
            },
        ),
        // Loop bookkeeping: add-then-check-bounds, branch back taken.
        (
            0x4428,
            Instr::AluImm {
                op: AluOp::Add,
                dst: Reg::R4,
                imm: 1,
            },
        ),
        (
            0x442C,
            Instr::CmpImm {
                a: Reg::R4,
                imm: 0xFFFF,
            },
        ),
        (
            0x4430,
            Instr::Jcc {
                cond: Cond::Lo,
                target: 0x4408,
            },
        ),
        (0x4434, Instr::Jmp { target: 0x4404 }),
        (fault, Instr::Halt),
    ];
    for (addr, i) in body {
        code.insert(addr, i);
    }
    dev.cpu.set_pc(0x4400);
    dev.cpu.set_sp(0x2400);
    (dev, code)
}

/// Runs the check loop for `steps` instructions through fused or
/// unfused dispatch and reports the rate plus the outcome fingerprint
/// the soundness bit compares.
fn run_fusion_micro(steps: u64, fuse: bool) -> (DispatchRate, (u64, u64, u16, u16, u64)) {
    let (mut dev, mut code) = fusion_microbench_device();
    if fuse {
        let report = code.fuse();
        assert!(report.sequences > 0, "the check loop must fuse");
    }
    dev.code = std::sync::Arc::new(code);
    assert!(dev.bus.check_execute(0x4400).is_ok());
    let started = Instant::now();
    let exit = dev.run(steps);
    let wall = started.elapsed().as_secs_f64();
    assert_eq!(exit.reason, StopReason::StepLimit, "loop must not fault");
    assert_eq!(exit.steps, steps);
    (
        DispatchRate {
            instructions: dev.cpu.stats.instructions,
            wall_seconds: wall,
            instr_per_second: dev.cpu.stats.instructions as f64 / wall.max(1e-9),
        },
        (
            dev.cpu.stats.instructions,
            dev.cpu.cycles,
            dev.cpu.reg(Reg::R4),
            dev.cpu.reg(Reg::R14),
            dev.bus.timer.raw_cycles(),
        ),
    )
}

/// Runs the superinstruction bench: profiles the Software-Only
/// catalogue image's adjacent pairs, fuses it, measures the check-heavy
/// microbench through both dispatch paths for `steps` instructions, and
/// drives the catalogue for `rounds` event rounds on the unfused and
/// the fused image.
pub fn run_superinstruction(steps: u64, rounds: usize) -> FusionBench {
    let mut aft = Aft::new(IsolationMethod::SoftwareOnly);
    for app in amulet_apps::catalog() {
        aft = aft.add_app(app.app_source());
    }
    let out = aft
        .build()
        .unwrap_or_else(|e| panic!("Software-Only catalogue build: {e}"));
    let unfused_fw = out.firmware;
    let mut fused_fw = unfused_fw.clone();
    let report = fused_fw.fuse();
    let image_instructions = unfused_fw.code.iter().count();
    let profile = pair_profile(&unfused_fw.code, 16);

    let (micro_unfused, base_fp) = run_fusion_micro(steps, false);
    let (micro_fused, fast_fp) = run_fusion_micro(steps, true);

    let (unfused, base_log) = drive_catalogue(&unfused_fw, rounds);
    let (fused, fast_log) = drive_catalogue(&fused_fw, rounds);
    let outcomes_identical = base_fp == fast_fp
        && unfused.instructions == fused.instructions
        && unfused.total_cycles == fused.total_cycles
        && unfused.energy_joules == fused.energy_joules
        && unfused.faults == fused.faults
        && base_log == fast_log;
    FusionBench {
        pair_profile: profile,
        image_instructions,
        report,
        micro_unfused,
        micro_fused,
        rounds,
        unfused,
        fused,
        outcomes_identical,
    }
}

/// Runs a fleet scenario and reports wall-clock throughput.
pub fn run_fleet(devices: usize, events_per_device: usize, workers: usize) -> FleetThroughput {
    let scenario = FleetScenario {
        devices,
        events_per_device,
        ..FleetScenario::default()
    };
    let started = Instant::now();
    let report = simulate(&scenario, workers);
    let wall = started.elapsed().as_secs_f64();
    assert_eq!(report.devices.len(), devices);
    FleetThroughput {
        devices,
        events_per_device,
        workers,
        wall_seconds: wall,
        devices_per_second: devices as f64 / wall.max(1e-9),
    }
}

/// Renders the whole document.
pub fn render_json(
    micro_cached: &MicrobenchResult,
    micro_direct: &MicrobenchResult,
    fleet: &FleetThroughput,
    elision: &ElisionBench,
    fusion: &FusionBench,
) -> String {
    let elision_run = |r: &ElisionRun| {
        Json::obj()
            .field("instructions", r.instructions)
            .field("total_cycles", r.total_cycles)
            .field("energy_joules", r.energy_joules)
            .field("faults", r.faults)
            .field("wall_seconds", r.wall_seconds)
            .field("instr_per_second", r.instr_per_second)
            .field("cycles_per_second", r.cycles_per_second)
    };
    let micro = |m: &MicrobenchResult| {
        Json::obj()
            .field("attr_cache", m.attr_cache)
            .field("instructions", m.instructions)
            .field("wall_seconds", m.wall_seconds)
            .field("instr_per_second", m.instr_per_second)
    };
    let (b_devices, b_events, b_workers) = BASELINE_FLEET_SCENARIO;
    Json::obj()
        .field("bench", "hotpath")
        .field(
            "baseline",
            Json::obj()
                .field(
                    "label",
                    "pre-optimisation fleet_sim (BTreeMap fetch, per-access MPU cascade)",
                )
                .field("devices", b_devices as u64)
                .field("events_per_device", b_events as u64)
                .field("workers", b_workers as u64)
                .field("devices_per_second", BASELINE_FLEET_DEVICES_PER_SECOND),
        )
        .field("current", {
            let mut current = Json::obj()
                .field("devices", fleet.devices as u64)
                .field("events_per_device", fleet.events_per_device as u64)
                .field("workers", fleet.workers as u64)
                .field("wall_seconds", fleet.wall_seconds)
                .field("devices_per_second", fleet.devices_per_second);
            // A speedup is only meaningful against the baseline's own
            // scenario shape — a smaller fleet or more workers would
            // inflate the ratio for reasons unrelated to the hot path.
            if (fleet.devices, fleet.events_per_device, fleet.workers) == BASELINE_FLEET_SCENARIO {
                current = current.field(
                    "speedup_vs_baseline",
                    fleet.devices_per_second / BASELINE_FLEET_DEVICES_PER_SECOND,
                );
            } else {
                current = current.field(
                    "speedup_vs_baseline_note",
                    "scenario shape differs from the baseline; ratio omitted",
                );
            }
            current
        })
        .field(
            "microbench",
            Json::obj()
                .field("attr_cache_on", micro(micro_cached))
                .field("attr_cache_off", micro(micro_direct))
                .field(
                    "access_path_speedup",
                    micro_cached.instr_per_second / micro_direct.instr_per_second.max(1e-9),
                ),
        )
        .field(
            "check_elision",
            Json::obj()
                .field(
                    "elided_checks_per_profile",
                    elision
                        .profiles
                        .iter()
                        .map(|p| {
                            Json::obj()
                                .field("method", p.method.as_str())
                                .field("elided", p.elided)
                                .field("candidates", p.candidates)
                        })
                        .collect::<Vec<_>>(),
                )
                .field("workload", "Software-Only catalogue, dominant handlers")
                .field("rounds", elision.rounds)
                .field("unelided", elision_run(&elision.unelided))
                .field("elided", elision_run(&elision.elided))
                .field(
                    "instr_retired_drop_percent",
                    elision.instr_retired_drop_percent(),
                )
                .field("workload_speedup", elision.workload_speedup())
                .field("outcomes_identical", elision.outcomes_identical),
        )
        .field("superinstruction", {
            let rate = |r: &DispatchRate| {
                Json::obj()
                    .field("instructions", r.instructions)
                    .field("wall_seconds", r.wall_seconds)
                    .field("instr_per_second", r.instr_per_second)
            };
            Json::obj()
                .field(
                    "pair_profile",
                    fusion
                        .pair_profile
                        .iter()
                        .map(|p| {
                            Json::obj()
                                .field("pair", p.pair.as_str())
                                .field("count", p.count)
                                .field("fused_candidate", p.fused_candidate)
                        })
                        .collect::<Vec<_>>(),
                )
                .field(
                    "fuse_report",
                    Json::obj()
                        .field("image_instructions", fusion.image_instructions)
                        .field("sequences", fusion.report.sequences)
                        .field("fused_instructions", fusion.report.fused_instructions)
                        .field("fused_share_percent", fusion.fused_share_percent())
                        .field("checks", fusion.report.checks)
                        .field("double_checks", fusion.report.double_checks)
                        .field("add_checks", fusion.report.add_checks)
                        .field("prologues", fusion.report.prologues)
                        .field("epilogues", fusion.report.epilogues)
                        .field("elided_pairs", fusion.report.elided_pairs),
                )
                .field(
                    "microbench",
                    Json::obj()
                        .field(
                            "workload",
                            "Software-Only check idiom: two double checks + \
                             add-then-check-bounds per iteration",
                        )
                        .field("unfused", rate(&fusion.micro_unfused))
                        .field("fused", rate(&fusion.micro_fused))
                        .field("dispatch_speedup", fusion.dispatch_speedup()),
                )
                .field(
                    "catalogue",
                    Json::obj()
                        .field("workload", "Software-Only catalogue, dominant handlers")
                        .field("rounds", fusion.rounds)
                        .field("unfused", elision_run(&fusion.unfused))
                        .field("fused", elision_run(&fusion.fused))
                        .field("workload_speedup", fusion.workload_speedup()),
                )
                .field("outcomes_identical", fusion.outcomes_identical)
        })
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_loop_runs_and_reports_a_rate() {
        let r = run_microbench(10_000, true);
        assert_eq!(r.instructions, 10_000);
        assert!(r.instr_per_second > 0.0);
        let d = run_microbench(10_000, false);
        assert_eq!(d.instructions, 10_000);
    }

    #[test]
    fn cached_and_direct_paths_agree() {
        assert!(verify_equivalence(5_000));
    }

    #[test]
    fn fleet_throughput_smoke_and_json_shape() {
        let micro = run_microbench(1_000, true);
        let direct = run_microbench(1_000, false);
        let fleet = run_fleet(8, 10, 1);
        let elision = run_check_elision(3);
        let fusion = run_superinstruction(50_000, 2);
        let text = render_json(&micro, &direct, &fleet, &elision, &fusion);
        for needle in [
            "\"bench\": \"hotpath\"",
            "\"baseline\"",
            "\"devices_per_second\"",
            "\"access_path_speedup\"",
            "\"check_elision\"",
            "\"elided_checks_per_profile\"",
            "\"instr_retired_drop_percent\"",
            "\"outcomes_identical\": true",
            "\"superinstruction\"",
            "\"pair_profile\"",
            "\"fuse_report\"",
            "\"dispatch_speedup\"",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
        // This fleet shape differs from the baseline's, so the speedup
        // ratio must be omitted in favour of the explanatory note.
        assert!(text.contains("\"speedup_vs_baseline_note\""));
        assert!(!text.contains("\"speedup_vs_baseline\":"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());

        // A baseline-shaped measurement reports the ratio (synthesised
        // here; running the full baseline fleet is too slow for a test).
        let (devices, events_per_device, workers) = BASELINE_FLEET_SCENARIO;
        let baseline_shaped = FleetThroughput {
            devices,
            events_per_device,
            workers,
            wall_seconds: 1.0,
            devices_per_second: devices as f64,
        };
        let text = render_json(&micro, &direct, &baseline_shaped, &elision, &fusion);
        assert!(text.contains("\"speedup_vs_baseline\":"));
    }

    #[test]
    fn superinstruction_fusion_is_sound_on_micro_and_catalogue() {
        let bench = run_superinstruction(100_000, 3);
        assert!(bench.outcomes_identical, "fusion changed an outcome");
        // The Software-Only catalogue image is check-dominated, so the
        // hottest adjacent pair must itself be a fusion candidate and
        // the check pair must head the candidate hits.
        assert!(
            bench.pair_profile[0].fused_candidate,
            "hottest pair {} is not in the candidate set",
            bench.pair_profile[0].pair
        );
        let check_pair = bench
            .pair_profile
            .iter()
            .find(|p| p.pair == "CmpImm+Jcc")
            .expect("the check pair shows up in the profile");
        assert!(check_pair.fused_candidate && check_pair.count > 0);
        assert!(bench.report.sequences > 0 && bench.report.double_checks > 0);
        assert!(bench.report.prologues > 0 && bench.report.epilogues > 0);
        assert!(
            bench.fused_share_percent() > 10.0,
            "fusion must cover a real share"
        );
        // Fusion never changes what retires — only how fast it retires.
        assert_eq!(bench.unfused.instructions, bench.fused.instructions);
        assert_eq!(bench.unfused.total_cycles, bench.fused.total_cycles);
        assert_eq!(
            bench.micro_unfused.instructions,
            bench.micro_fused.instructions
        );
    }

    #[test]
    fn check_elision_is_sound_and_retires_fewer_instructions() {
        let bench = run_check_elision(4);
        assert!(bench.outcomes_identical, "elision changed an outcome");
        // Software Only is check-heavy: it must both emit candidates and
        // certify a real fraction of them.
        let sw = bench
            .profiles
            .iter()
            .find(|p| p.method == IsolationMethod::SoftwareOnly.to_string())
            .expect("Software-Only profile counted");
        assert!(sw.candidates > 0 && sw.elided > 0);
        let none = bench
            .profiles
            .iter()
            .find(|p| p.method == IsolationMethod::NoIsolation.to_string())
            .expect("No-Isolation profile counted");
        assert_eq!((none.elided, none.candidates), (0, 0));
        assert!(
            bench.elided.instructions < bench.unelided.instructions,
            "elided image must retire fewer instructions"
        );
        assert_eq!(bench.elided.total_cycles, bench.unelided.total_cycles);
        assert_eq!(bench.elided.energy_joules, bench.unelided.energy_joules);
        assert!(bench.instr_retired_drop_percent() > 0.0);
    }
}
