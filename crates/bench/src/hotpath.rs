//! The hot-path bench: how fast does the simulator execute instructions,
//! and how many fleet devices per second does that buy?
//!
//! Two measurements, both emitted as `BENCH_hotpath.json` so the repo
//! keeps a perf trajectory across PRs:
//!
//! * **Microbench** — a tight arithmetic/load/store loop executed on one
//!   device with the MPU enabled, measured once with the bus's access-
//!   attribute cache on (the shipping configuration) and once with it off
//!   (every access runs the region cascade + MPU backend directly).  The
//!   ratio isolates what the flat attribute table buys on the per-access
//!   path; instruction fetch is O(1) in both modes.
//! * **Fleet throughput** — wall-clock devices/second for a
//!   [`FleetScenario`] run, the number the ROADMAP's "as fast as the
//!   hardware allows" goal is tracked by.  The JSON also records the
//!   pre-optimisation baseline measured at the commit this bench was
//!   introduced, so the speedup is visible without digging through git
//!   history.

use crate::json::Json;
use amulet_core::perm::AccessKind;
use amulet_fleet::{simulate, FleetScenario};
use amulet_mcu::code::InstrStore;
use amulet_mcu::cpu::StepEvent;
use amulet_mcu::device::{Device, StopReason};
use amulet_mcu::isa::{AluOp, Instr, Reg, Width};
use amulet_mcu::mpu::{MPUCTL0, MPUSAM, MPUSEGB1, MPUSEGB2};
use std::time::Instant;

/// The `fleet_sim` devices/second measured immediately **before** the
/// hot-path optimisation landed (BTreeMap instruction fetch, per-access
/// region cascade + MPU dispatch), on the reference dev container: 1000
/// devices, 120 events each, 1 worker, default scenario seed.  Kept as the
/// denominator of the speedup this bench reports.
pub const BASELINE_FLEET_DEVICES_PER_SECOND: f64 = 225.0;

/// Shape of the baseline measurement (what `fleet_sim` was invoked with).
pub const BASELINE_FLEET_SCENARIO: (usize, usize, usize) = (1000, 120, 1);

/// One microbench measurement.
#[derive(Clone, Copy, Debug)]
pub struct MicrobenchResult {
    /// Whether the access-attribute cache was enabled.
    pub attr_cache: bool,
    /// Instructions executed.
    pub instructions: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Simulated instructions per wall-clock second.
    pub instr_per_second: f64,
}

/// One fleet-throughput measurement.
#[derive(Clone, Copy, Debug)]
pub struct FleetThroughput {
    /// Devices simulated.
    pub devices: usize,
    /// Events delivered per device (per delivery policy).
    pub events_per_device: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Devices simulated per wall-clock second.
    pub devices_per_second: f64,
}

/// Builds the microbench device: a counting loop in MPU segment 1
/// (execute-only) that stores and re-loads its counter through segment 2
/// (read/write), with the segmented MPU enabled — so every iteration pays
/// one instruction-fetch check and two data-access checks, exactly the
/// per-access work the attribute cache collapses to a table index.
fn microbench_device() -> (Device, InstrStore) {
    let mut dev = Device::msp430fr5969();
    // Segment boundaries 0x6000/0x8000; seg1 execute-only, seg2 RW.
    dev.bus.write(MPUSEGB1, 2, 0x600).expect("segb1");
    dev.bus.write(MPUSEGB2, 2, 0x800).expect("segb2");
    dev.bus.write(MPUSAM, 2, 0x0034).expect("sam");
    dev.bus.write(MPUCTL0, 2, 0xA501).expect("ctl0");

    let mut code = InstrStore::new();
    let base = 0x4400;
    let mut cursor = base;
    let body = [
        Instr::MovImm {
            dst: Reg::R4,
            imm: 0,
        },
        Instr::MovImm {
            dst: Reg::R5,
            imm: 0x6000,
        },
        // loop:
        Instr::AluImm {
            op: AluOp::Add,
            dst: Reg::R4,
            imm: 1,
        },
        Instr::Store {
            src: Reg::R4,
            base: Reg::R5,
            offset: 0,
            width: Width::Word,
        },
        Instr::Load {
            dst: Reg::R6,
            base: Reg::R5,
            offset: 0,
            width: Width::Word,
        },
        Instr::Alu {
            op: AluOp::Xor,
            dst: Reg::R6,
            src: Reg::R4,
        },
        Instr::Jmp { target: 0x4408 },
    ];
    for i in &body {
        code.insert(cursor, *i);
        cursor += i.size_bytes();
    }
    debug_assert_eq!(cursor, 0x441A, "loop layout: Jmp target must be 0x4408");
    dev.cpu.set_pc(base);
    dev.cpu.set_sp(0x2400);
    (dev, code)
}

/// Runs the tight loop for `steps` instructions and reports the rate.
pub fn run_microbench(steps: u64, attr_cache: bool) -> MicrobenchResult {
    let (mut dev, code) = microbench_device();
    dev.bus.set_attr_cache_enabled(attr_cache);
    dev.code = std::sync::Arc::new(code);
    // Warm up (resolves the attribute table outside the timed region).
    assert!(dev.bus.check_execute(0x4400).is_ok());
    let started = Instant::now();
    let exit = dev.run(steps);
    let wall = started.elapsed().as_secs_f64();
    assert_eq!(exit.reason, StopReason::StepLimit, "loop must not fault");
    assert_eq!(exit.steps, steps);
    MicrobenchResult {
        attr_cache,
        instructions: steps,
        wall_seconds: wall,
        instr_per_second: steps as f64 / wall.max(1e-9),
    }
}

/// Sanity-checks that the cached and direct paths agree on the microbench
/// device before any measurement is trusted: same decisions for a sweep of
/// reads/writes/fetches, and the same loop register state after `steps`
/// instructions.
pub fn verify_equivalence(steps: u64) -> bool {
    let (mut cached, code) = microbench_device();
    let (mut direct, code2) = microbench_device();
    direct.bus.set_attr_cache_enabled(false);
    cached.code = std::sync::Arc::new(code);
    direct.code = std::sync::Arc::new(code2);
    for addr in (0u32..0x1_0000).step_by(64) {
        for kind in [AccessKind::Read, AccessKind::Write, AccessKind::Execute] {
            let a = match kind {
                AccessKind::Read => cached.bus.read(addr, 1).is_ok(),
                AccessKind::Write => cached.bus.write(addr & !1, 2, 0).is_ok(),
                AccessKind::Execute => cached.bus.check_execute(addr & !1).is_ok(),
            };
            let b = match kind {
                AccessKind::Read => direct.bus.read(addr, 1).is_ok(),
                AccessKind::Write => direct.bus.write(addr & !1, 2, 0).is_ok(),
                AccessKind::Execute => direct.bus.check_execute(addr & !1).is_ok(),
            };
            if a != b {
                return false;
            }
        }
    }
    // The sweep may have scribbled on the loop's data word; both devices
    // saw identical traffic, so the paired runs still must agree.
    for dev in [&mut cached, &mut direct] {
        dev.cpu.set_pc(0x4400);
        while let StepEvent::Continue = dev.step() {
            if dev.cpu.stats.instructions >= steps {
                break;
            }
        }
    }
    cached.cpu.reg(Reg::R4) == direct.cpu.reg(Reg::R4)
        && cached.cpu.cycles == direct.cpu.cycles
        && cached.bus.stats == direct.bus.stats
}

/// Runs a fleet scenario and reports wall-clock throughput.
pub fn run_fleet(devices: usize, events_per_device: usize, workers: usize) -> FleetThroughput {
    let scenario = FleetScenario {
        devices,
        events_per_device,
        ..FleetScenario::default()
    };
    let started = Instant::now();
    let report = simulate(&scenario, workers);
    let wall = started.elapsed().as_secs_f64();
    assert_eq!(report.devices.len(), devices);
    FleetThroughput {
        devices,
        events_per_device,
        workers,
        wall_seconds: wall,
        devices_per_second: devices as f64 / wall.max(1e-9),
    }
}

/// Renders the whole document.
pub fn render_json(
    micro_cached: &MicrobenchResult,
    micro_direct: &MicrobenchResult,
    fleet: &FleetThroughput,
) -> String {
    let micro = |m: &MicrobenchResult| {
        Json::obj()
            .field("attr_cache", m.attr_cache)
            .field("instructions", m.instructions)
            .field("wall_seconds", m.wall_seconds)
            .field("instr_per_second", m.instr_per_second)
    };
    let (b_devices, b_events, b_workers) = BASELINE_FLEET_SCENARIO;
    Json::obj()
        .field("bench", "hotpath")
        .field(
            "baseline",
            Json::obj()
                .field(
                    "label",
                    "pre-optimisation fleet_sim (BTreeMap fetch, per-access MPU cascade)",
                )
                .field("devices", b_devices as u64)
                .field("events_per_device", b_events as u64)
                .field("workers", b_workers as u64)
                .field("devices_per_second", BASELINE_FLEET_DEVICES_PER_SECOND),
        )
        .field("current", {
            let mut current = Json::obj()
                .field("devices", fleet.devices as u64)
                .field("events_per_device", fleet.events_per_device as u64)
                .field("workers", fleet.workers as u64)
                .field("wall_seconds", fleet.wall_seconds)
                .field("devices_per_second", fleet.devices_per_second);
            // A speedup is only meaningful against the baseline's own
            // scenario shape — a smaller fleet or more workers would
            // inflate the ratio for reasons unrelated to the hot path.
            if (fleet.devices, fleet.events_per_device, fleet.workers) == BASELINE_FLEET_SCENARIO {
                current = current.field(
                    "speedup_vs_baseline",
                    fleet.devices_per_second / BASELINE_FLEET_DEVICES_PER_SECOND,
                );
            } else {
                current = current.field(
                    "speedup_vs_baseline_note",
                    "scenario shape differs from the baseline; ratio omitted",
                );
            }
            current
        })
        .field(
            "microbench",
            Json::obj()
                .field("attr_cache_on", micro(micro_cached))
                .field("attr_cache_off", micro(micro_direct))
                .field(
                    "access_path_speedup",
                    micro_cached.instr_per_second / micro_direct.instr_per_second.max(1e-9),
                ),
        )
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_loop_runs_and_reports_a_rate() {
        let r = run_microbench(10_000, true);
        assert_eq!(r.instructions, 10_000);
        assert!(r.instr_per_second > 0.0);
        let d = run_microbench(10_000, false);
        assert_eq!(d.instructions, 10_000);
    }

    #[test]
    fn cached_and_direct_paths_agree() {
        assert!(verify_equivalence(5_000));
    }

    #[test]
    fn fleet_throughput_smoke_and_json_shape() {
        let micro = run_microbench(1_000, true);
        let direct = run_microbench(1_000, false);
        let fleet = run_fleet(8, 10, 1);
        let text = render_json(&micro, &direct, &fleet);
        for needle in [
            "\"bench\": \"hotpath\"",
            "\"baseline\"",
            "\"devices_per_second\"",
            "\"access_path_speedup\"",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
        // This fleet shape differs from the baseline's, so the speedup
        // ratio must be omitted in favour of the explanatory note.
        assert!(text.contains("\"speedup_vs_baseline_note\""));
        assert!(!text.contains("\"speedup_vs_baseline\":"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());

        // A baseline-shaped measurement reports the ratio (synthesised
        // here; running the full baseline fleet is too slow for a test).
        let (devices, events_per_device, workers) = BASELINE_FLEET_SCENARIO;
        let baseline_shaped = FleetThroughput {
            devices,
            events_per_device,
            workers,
            wall_seconds: 1.0,
            devices_per_second: devices as f64,
        };
        let text = render_json(&micro, &direct, &baseline_shaped);
        assert!(text.contains("\"speedup_vs_baseline\":"));
    }
}
