//! A tiny JSON document builder shared by every bench binary that emits
//! JSON (`platform_compare`, `fleet_sim`, …).
//!
//! The build environment has no serialization dependency, and hand-rolled
//! `write!` chains proved easy to unbalance; this module provides the one
//! JSON writer the crate needs.  Rendering is deterministic: object keys
//! keep insertion order, floats use Rust's shortest-roundtrip `Display`
//! (never scientific notation), and non-finite floats become `null`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (rendered via shortest-roundtrip `Display`; non-finite
    /// values render as `null`).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object and returns it (builder style).
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let s = v.to_string();
                    let integral = !s.contains('.') && !s.contains('e') && !s.contains('E');
                    out.push_str(&s);
                    if integral {
                        // Keep integral floats visibly floating-point.
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}  \"{}\": ", escape(key));
                    value.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents_with_balanced_brackets() {
        let doc = Json::obj()
            .field("name", "fleet")
            .field("n", 3u64)
            .field(
                "rows",
                vec![Json::obj().field("x", 1u64), Json::obj().field("y", 2.5f64)],
            )
            .field("empty", Json::Arr(vec![]));
        let text = doc.render();
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        assert!(text.contains("\"name\": \"fleet\""));
        assert!(text.contains("\"y\": 2.5"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn floats_render_deterministically_and_json_safely() {
        assert_eq!(Json::F64(0.5).render(), "0.5\n");
        assert_eq!(Json::F64(2.0).render(), "2.0\n");
        assert_eq!(Json::F64(f64::NAN).render(), "null\n");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null\n");
        // Tiny values must not use scientific notation.
        assert!(!Json::F64(1e-7).render().contains('e'));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let doc = Json::Str("say \"hi\"".into()).render();
        assert_eq!(doc, "\"say \\\"hi\\\"\"\n");
    }
}
