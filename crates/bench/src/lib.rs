//! # amulet-bench
//!
//! The benchmark harness that regenerates every table and figure of
//! "Application Memory Isolation on Ultra-Low-Power MCUs" (USENIX ATC 2018):
//!
//! * [`table1`] — average cycle counts for the basic isolation operations
//!   (memory access, context switch) under the four memory models;
//! * [`fig2`] — weekly isolation-overhead cycles and battery-lifetime impact
//!   for the nine Amulet applications;
//! * [`fig3`] — percentage slowdown of the Activity Detection and Quicksort
//!   benchmarks under each isolation method;
//! * [`ablation`] — the per-app-stack-vs-shared-stack ablation (a §3 design
//!   decision) and the "advanced MPU" ablation (§5 future work);
//! * [`platform_compare`] — the same isolation policies evaluated on every
//!   built-in platform profile, as JSON;
//! * [`fleet_sim`] — the fleet-scale study: ≥ 1000 seeded devices in
//!   parallel, with the per-event vs batched delivery comparison, as JSON;
//! * [`hotpath`] — the simulator's own throughput (instructions/second with
//!   the bus attribute cache on vs off, fleet devices/second vs the
//!   recorded pre-optimisation baseline), as JSON;
//! * [`lint`] — the `firmware_lint` static-verification document: every
//!   distinct image of a fleet scenario run through `amulet-verify`, as a
//!   deterministic text report CI pins with a golden fixture.
//!
//! Each module exposes a pure function returning structured rows plus a
//! `render` helper; the `table1`, `fig2`, `fig3`, `ablation_stacks`,
//! `ablation_advanced_mpu`, `platform_compare` and `fleet_sim` binaries
//! print them, and the Criterion benches wrap the same entry points.  JSON
//! output goes through the shared [`json`] writer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig2;
pub mod fig3;
pub mod fleet_sim;
pub mod hotpath;
pub mod json;
pub mod lint;
pub mod platform_compare;
pub mod table1;

use amulet_aft::aft::Aft;
use amulet_core::method::IsolationMethod;
use amulet_os::os::AmuletOs;

/// Builds a single benchmark app for `method` and boots an OS around it
/// (on the paper's MSP430FR5969).
pub fn boot_benchmark(app: &amulet_apps::BenchmarkApp, method: IsolationMethod) -> AmuletOs {
    boot_benchmark_on(&amulet_core::platform::Msp430Fr5969, app, method)
}

/// Builds a single benchmark app for `method` on any platform and boots an
/// OS around it.
pub fn boot_benchmark_on(
    platform: &impl amulet_core::platform::Platform,
    app: &amulet_apps::BenchmarkApp,
    method: IsolationMethod,
) -> AmuletOs {
    let out = Aft::for_platform(method, platform)
        .add_app(app.app_source(method))
        .build()
        .unwrap_or_else(|e| panic!("{method}: failed to build {}: {e}", app.name));
    let mut os = AmuletOs::new(out.firmware);
    os.boot();
    os
}
