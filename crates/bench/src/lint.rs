//! The `firmware_lint` document: every distinct firmware image a fleet
//! scenario deploys, statically verified, rendered as one deterministic
//! text report.
//!
//! The document is a pure function of the scenario (worker count changes
//! nothing — the reports come back in derivation order), which is what
//! lets CI keep a golden fixture of it: any change to the verifier's
//! verdicts on the committed catalogue shows up as a byte diff, reviewed
//! like any other behaviour change and re-blessed with `BLESS_GOLDEN=1`.

use amulet_fleet::{verify_fleet_reports, FleetScenario, FleetVerifySummary};
use std::fmt::Write as _;

/// Renders the lint document for `scenario` and returns it with the
/// folded fleet-wide counters (whose `passes_gate()` decides the lint's
/// exit code).
pub fn lint_document(scenario: &FleetScenario, workers: usize) -> (String, FleetVerifySummary) {
    let reports = verify_fleet_reports(scenario, workers);
    let summary = FleetVerifySummary::from_reports(&reports);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "firmware_lint: scenario {:?} seed {:#x} — {} distinct images",
        scenario.name, scenario.seed, summary.images
    );
    // Compact per-image form: counters, structural findings and the
    // *undecided* accesses — the lines a reviewer needs to act on.  The
    // full proven-safe listing (one line per access) lives in the
    // report's `Display` and would swamp a committed fixture.
    for (key, report) in &reports {
        let _ = writeln!(out, "== {key}");
        let _ = writeln!(
            out,
            "  {} safe, {} unknown, {} escape, {} elidable",
            report.proven_safe(),
            report.unknown(),
            report.proven_escape(),
            report.elidable_sites(),
        );
        for app in &report.apps {
            let _ = writeln!(
                out,
                "  {}: {} reachable, {} dead, elidable {}/{}",
                app.app,
                app.reachable_instrs,
                app.dead_instrs,
                app.elidable_sites.len(),
                app.elidable_candidates,
            );
            for finding in &app.findings {
                let _ = writeln!(out, "    {finding}");
            }
            for access in &app.accesses {
                if access.verdict == amulet_verify::AccessVerdict::Unknown {
                    let _ = writeln!(
                        out,
                        "    unknown: {:#06x} {} targets [{:#06x}, {:#06x}]",
                        access.at, access.instr, access.lo, access.hi
                    );
                }
                if access.verdict == amulet_verify::AccessVerdict::ProvenEscape {
                    let _ = writeln!(
                        out,
                        "    ESCAPE: {:#06x} {} targets [{:#06x}, {:#06x}]",
                        access.at, access.instr, access.lo, access.hi
                    );
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "firmware_lint: {} images, {} apps — {} safe, {} unknown, {} escape, {}/{} elidable — {}",
        summary.images,
        summary.apps,
        summary.proven_safe,
        summary.unknown,
        summary.proven_escape,
        summary.elidable_sites,
        summary.elidable_candidates,
        if summary.passes_gate() {
            "GATE PASS"
        } else {
            "GATE FAIL"
        },
    );
    for key in &summary.gate_failures {
        let _ = writeln!(out, "firmware_lint: proven escape in {key}");
    }
    (out, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_document_is_deterministic_and_passes_on_the_benign_mix() {
        let scenario = FleetScenario::scaling(40);
        let (a, summary) = lint_document(&scenario, 1);
        let (b, _) = lint_document(&scenario, 8);
        assert_eq!(a, b, "worker count must not reorder the document");
        assert!(summary.passes_gate(), "benign mix must pass");
        assert!(a.contains("GATE PASS"));
        assert!(a.contains("== "), "per-image sections present");
        assert!(!a.contains("proven escape in"));
    }
}
