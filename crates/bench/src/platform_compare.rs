//! Platform comparison: the same isolation policies evaluated on every
//! built-in platform profile, emitted as JSON.
//!
//! For each platform the comparison reports, per isolation method:
//!
//! * the analytic per-operation costs (absolute memory-access and
//!   context-switch cycles — the platform's own "Table 1");
//! * the measured per-delivery switch cycles of a live counter app on the
//!   simulated device, proving the simulator agrees with the analytic plan
//!   on every platform, not just the FR5969;
//! * the weekly overhead and battery impact of the nine-app catalogue under
//!   that platform's check policy and switch costs;
//!
//! plus platform-level facts: the MPU model, and how efficiently the
//! Figure-1 planner packs the nine-app catalogue given the platform's MPU
//! alignment (finer region alignment wastes less padding).

use crate::json::Json;
use amulet_aft::aft::Aft;
use amulet_arp::arp::Arp;
use amulet_core::layout::PlatformSpec;
use amulet_core::method::IsolationMethod;
use amulet_core::overhead::OverheadModel;
use amulet_core::platform::builtin_platforms;
use amulet_os::os::{AmuletOs, DeliveryOutcome};

/// Per-method figures on one platform.
#[derive(Clone, Debug)]
pub struct MethodComparison {
    /// Isolation method.
    pub method: IsolationMethod,
    /// Analytic absolute cycles per guarded memory access.
    pub memory_access_cycles: u64,
    /// Analytic absolute cycles per context-switch round trip.
    pub context_switch_cycles: u64,
    /// Measured switch cycles per delivered event of the live counter app.
    pub measured_switch_cycles_per_event: u64,
    /// Worst-case weekly battery impact across the nine-app catalogue, in
    /// percent.
    pub max_battery_impact_percent: f64,
}

/// One platform's comparison row.
#[derive(Clone, Debug)]
pub struct PlatformComparison {
    /// Platform name.
    pub platform: String,
    /// Human-readable MPU model description.
    pub mpu_model: String,
    /// Human-readable region base/size rule (region platforms only;
    /// `"segment boundaries"` on segmented parts).
    pub size_rule: String,
    /// Whether the MPU bounds apps from below (no software lower-bound
    /// checks needed).
    pub hardware_bounds_below: bool,
    /// Whether the MPU's jurisdiction covers peripheral space (no software
    /// function-pointer checks needed either).
    pub hardware_checks_peripherals: bool,
    /// Bytes of FRAM the nine-app catalogue occupies once planned,
    /// including alignment padding.
    pub catalog_footprint_bytes: u32,
    /// Bytes of that footprint that are pure alignment padding.
    pub catalog_padding_bytes: u32,
    /// The planner's own per-app waste accounting summed over the
    /// catalogue ([`amulet_core::layout::MemoryMap::total_padding_bytes`])
    /// — on NAPOT platforms this is dominated by power-of-two size
    /// rounding.
    pub catalog_planner_padding_bytes: u32,
    /// Per-method figures.
    pub methods: Vec<MethodComparison>,
}

/// Measures the per-event switch cycles of a single pointer-free counter
/// app on a live simulated device for the given platform and method.
fn measure_switch_cycles(platform: &PlatformSpec, method: IsolationMethod) -> u64 {
    let counter = r#"
        int n = 0;
        void main(void) { }
        int tick(int d) { n += d; return n; }
    "#;
    let out = Aft::for_platform(method, platform)
        .add_app(amulet_aft::aft::AppSource::new(
            "Counter",
            counter,
            &["main", "tick"],
        ))
        .build()
        .unwrap_or_else(|e| panic!("{}: {method}: {e}", platform.name));
    let mut os = AmuletOs::new(out.firmware);
    os.boot();
    let before = os.stats[0].switch_cycles;
    let events = 8u64;
    for _ in 0..events {
        let (outcome, _) = os.call_handler(0, "tick", 1);
        assert_eq!(outcome, DeliveryOutcome::Completed);
    }
    (os.stats[0].switch_cycles - before) / events
}

/// Builds the nine-app catalogue for the platform (under the MPU method)
/// and reports how the planner packed it: (footprint, padding,
/// planner-accounted padding) in bytes.  Padding is footprint minus the
/// bytes the apps actually need — coarser MPU alignment (and, in the
/// extreme, NAPOT power-of-two rounding) wastes more of it; the third
/// figure is the planner's own per-app waste accounting.
fn catalog_packing(platform: &PlatformSpec) -> (u32, u32, u32) {
    let mut aft = Aft::for_platform(IsolationMethod::Mpu, platform);
    for app in amulet_apps::catalog() {
        aft = aft.add_app(app.app_source());
    }
    let out = aft
        .build()
        .unwrap_or_else(|e| panic!("{}: catalogue build failed: {e}", platform.name));
    let footprint = out.memory_map.apps_end() - out.memory_map.apps_base();
    let used: u32 = out
        .report
        .apps
        .iter()
        .map(|a| a.code_bytes + a.data_bytes + a.stack_bytes)
        .sum();
    (
        footprint,
        footprint.saturating_sub(used),
        out.memory_map.total_padding_bytes(),
    )
}

/// Runs the full comparison across every built-in platform.
pub fn compare() -> Vec<PlatformComparison> {
    let profiles: Vec<_> = amulet_apps::catalog()
        .into_iter()
        .map(|a| a.profile)
        .collect();
    builtin_platforms()
        .into_iter()
        .map(|platform| {
            let arp = Arp::for_platform(&platform);
            let (footprint, padding, planner_padding) = catalog_packing(&platform);
            let methods = IsolationMethod::ALL
                .iter()
                .map(|&method| {
                    let model = OverheadModel::for_platform(method, &platform);
                    let max_impact = profiles
                        .iter()
                        .map(|p| arp.estimate_on(&platform, p, method).battery_impact_percent)
                        .fold(0.0, f64::max);
                    MethodComparison {
                        method,
                        memory_access_cycles: model.absolute_memory_access_cycles(),
                        context_switch_cycles: model.absolute_context_switch_cycles(),
                        measured_switch_cycles_per_event: measure_switch_cycles(&platform, method),
                        max_battery_impact_percent: max_impact,
                    }
                })
                .collect();
            PlatformComparison {
                platform: platform.name.clone(),
                mpu_model: platform.mpu.to_string(),
                size_rule: platform
                    .mpu
                    .constraints()
                    .map(|c| c.size_rule.to_string())
                    .unwrap_or_else(|| "segment boundaries".to_string()),
                hardware_bounds_below: platform.mpu.bounds_app_below(),
                hardware_checks_peripherals: platform.mpu.covers_peripherals(),
                catalog_footprint_bytes: footprint,
                catalog_padding_bytes: padding,
                catalog_planner_padding_bytes: planner_padding,
                methods,
            }
        })
        .collect()
}

/// Renders the comparison as JSON via the shared [`crate::json`] writer
/// (the build environment has no serialization dependency).
pub fn render_json(rows: &[PlatformComparison]) -> String {
    let platforms: Vec<Json> = rows
        .iter()
        .map(|row| {
            let methods: Vec<Json> = row
                .methods
                .iter()
                .map(|m| {
                    Json::obj()
                        .field("method", m.method.label())
                        .field("memory_access_cycles", m.memory_access_cycles)
                        .field("context_switch_cycles", m.context_switch_cycles)
                        .field(
                            "measured_switch_cycles_per_event",
                            m.measured_switch_cycles_per_event,
                        )
                        .field("max_battery_impact_percent", m.max_battery_impact_percent)
                })
                .collect();
            Json::obj()
                .field("name", row.platform.as_str())
                .field("mpu_model", row.mpu_model.as_str())
                .field("size_rule", row.size_rule.as_str())
                .field("hardware_bounds_below", row.hardware_bounds_below)
                .field(
                    "hardware_checks_peripherals",
                    row.hardware_checks_peripherals,
                )
                .field("catalog_footprint_bytes", row.catalog_footprint_bytes)
                .field("catalog_padding_bytes", row.catalog_padding_bytes)
                .field(
                    "catalog_planner_padding_bytes",
                    row.catalog_planner_padding_bytes,
                )
                .field("methods", methods)
        })
        .collect();
    Json::obj().field("platforms", platforms).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amulet_core::switch::ContextSwitchPlan;

    #[test]
    fn compares_every_builtin_platform_and_method() {
        let rows = compare();
        assert_eq!(rows.len(), builtin_platforms().len());
        for row in &rows {
            assert_eq!(row.methods.len(), 4);
            assert!(row.catalog_footprint_bytes > 0);
        }
    }

    #[test]
    fn fr5969_rows_reproduce_table1() {
        let rows = compare();
        let fr5969 = rows.iter().find(|r| r.platform == "msp430fr5969").unwrap();
        let get = |m: IsolationMethod| fr5969.methods.iter().find(|x| x.method == m).unwrap();
        assert_eq!(get(IsolationMethod::NoIsolation).memory_access_cycles, 23);
        assert_eq!(get(IsolationMethod::Mpu).memory_access_cycles, 29);
        assert_eq!(get(IsolationMethod::Mpu).context_switch_cycles, 142);
        assert_eq!(get(IsolationMethod::SoftwareOnly).context_switch_cycles, 98);
    }

    #[test]
    fn region_platform_trades_switch_cost_for_zero_access_overhead() {
        let rows = compare();
        let fr5994 = rows.iter().find(|r| r.platform == "msp430fr5994").unwrap();
        let fr5969 = rows.iter().find(|r| r.platform == "msp430fr5969").unwrap();
        let mpu94 = fr5994
            .methods
            .iter()
            .find(|m| m.method == IsolationMethod::Mpu)
            .unwrap();
        let mpu69 = fr5969
            .methods
            .iter()
            .find(|m| m.method == IsolationMethod::Mpu)
            .unwrap();
        // Full-coverage region hardware removes the per-access check…
        assert_eq!(
            mpu94.memory_access_cycles, 23,
            "no compiler-inserted access checks"
        );
        assert!(mpu69.memory_access_cycles > mpu94.memory_access_cycles);
        // …but reprogramming regions costs more per switch.
        assert!(mpu94.context_switch_cycles > mpu69.context_switch_cycles);
        // Finer region alignment packs the catalogue with less padding.
        assert!(fr5994.catalog_padding_bytes < fr5969.catalog_padding_bytes);
    }

    #[test]
    fn measured_switch_cycles_track_the_analytic_plan() {
        for row in compare() {
            let platform = builtin_platforms()
                .into_iter()
                .find(|p| p.name == row.platform)
                .unwrap();
            for m in &row.methods {
                let analytic = ContextSwitchPlan::round_trip_cycles_for(&platform, m.method);
                let measured = m.measured_switch_cycles_per_event;
                assert!(
                    measured >= analytic,
                    "{} {}: measured {measured} < analytic {analytic}",
                    row.platform,
                    m.method
                );
                // The measured figure includes only the fixed per-delivery
                // machinery on top of the plan; it must stay in the same
                // ballpark.
                assert!(
                    measured <= analytic + 60,
                    "{} {}: measured {measured} far above analytic {analytic}",
                    row.platform,
                    m.method
                );
            }
        }
    }

    #[test]
    fn json_is_syntactically_plausible_and_complete() {
        let text = render_json(&compare());
        for platform in [
            "\"msp430fr5969\"",
            "\"msp430fr5969-advanced-mpu\"",
            "\"msp430fr5994\"",
            "\"riscv-pmp\"",
            "\"cortex-m33\"",
        ] {
            assert!(text.contains(platform), "missing {platform}");
        }
        assert!(text.contains("\"Software Only\""));
        assert!(text.contains("\"size_rule\""));
        assert!(text.contains("\"catalog_planner_padding_bytes\""));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn riscv_pmp_regions_are_napot_valid_and_waste_is_reported() {
        // The acceptance shape for the NAPOT backend: every planned region
        // of the nine-app catalogue is a size-aligned power of two, and
        // the rounding waste shows up in the comparison row.
        let platform = amulet_core::layout::PlatformSpec::riscv_pmp();
        let mut aft = Aft::for_platform(IsolationMethod::Mpu, &platform);
        for app in amulet_apps::catalog() {
            aft = aft.add_app(app.app_source());
        }
        let out = aft.build().unwrap();
        for i in 0..out.memory_map.apps.len() {
            let plan = amulet_core::mpu_plan::MpuPlan::for_app_on(&out.memory_map, i).unwrap();
            for seg in &plan.segments {
                let len = seg.range.len();
                assert!(len.is_power_of_two(), "{:?} not a power of two", seg.range);
                assert!(len >= 0x40, "{:?} under the NAPOT minimum", seg.range);
                assert_eq!(seg.range.start % len, 0, "{:?} not size-aligned", seg.range);
            }
        }
        let rows = compare();
        let pmp = rows.iter().find(|r| r.platform == "riscv-pmp").unwrap();
        let fr5994 = rows.iter().find(|r| r.platform == "msp430fr5994").unwrap();
        assert!(pmp.size_rule.contains("NAPOT"));
        assert!(
            pmp.catalog_planner_padding_bytes > 0,
            "NAPOT rounding waste is accounted"
        );
        // Power-of-two rounding wastes more than 256-byte alignment does.
        assert!(pmp.catalog_padding_bytes > fr5994.catalog_padding_bytes);
    }

    #[test]
    fn peripheral_jurisdiction_platforms_drop_all_pointer_checks() {
        let rows = compare();
        for name in ["cortex-m33", "riscv-pmp"] {
            let row = rows.iter().find(|r| r.platform == name).unwrap();
            assert!(row.hardware_checks_peripherals, "{name}");
            let mpu = row
                .methods
                .iter()
                .find(|m| m.method == IsolationMethod::Mpu)
                .unwrap();
            assert_eq!(
                mpu.memory_access_cycles, 23,
                "{name}: no compiler-inserted access checks"
            );
        }
        // The FR5994 profile's jurisdiction stops at peripherals.
        let fr5994 = rows.iter().find(|r| r.platform == "msp430fr5994").unwrap();
        assert!(!fr5994.hardware_checks_peripherals);
    }
}
