//! Table 1: average cycle count for basic memory-isolation operations.
//!
//! The paper measures two operations with the Synthetic App: a guarded
//! application memory access, and an OS context switch (an API-call round
//! trip).  This module measures the same two operations on the simulator —
//! by differencing two run lengths of each Synthetic App handler, so that
//! handler-invocation overhead cancels — and also reports the analytic
//! per-operation costs derived from the check policy and switch plan, plus
//! the numbers printed in the paper for comparison.

use crate::boot_benchmark;
use amulet_core::method::IsolationMethod;
use amulet_core::overhead::OverheadModel;
use amulet_os::os::DeliveryOutcome;
use std::fmt::Write as _;

/// Memory accesses performed per `mem_ops(1)` round (the Synthetic App's
/// inner loop does 64 iterations with one load and one store each; the ARP
/// counts the guarded accesses, i.e. 2 × 64 per round).
const ACCESSES_PER_ROUND: u64 = 128;
/// API-call round trips per `switch_ops(1)` round.
const SWITCHES_PER_ROUND: u64 = 1;

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Isolation method.
    pub method: IsolationMethod,
    /// Measured cycles per application memory access.
    pub memory_access_cycles: f64,
    /// Measured cycles per context switch (API-call round trip).
    pub context_switch_cycles: f64,
    /// Analytic cycles per memory access (baseline + check policy).
    pub analytic_memory_access: u64,
    /// Analytic cycles per context switch (switch plan).
    pub analytic_context_switch: u64,
    /// The value printed in the paper's Table 1 (memory access).
    pub paper_memory_access: u64,
    /// The value printed in the paper's Table 1 (context switch).
    pub paper_context_switch: u64,
}

/// The paper's Table 1 values, in column order.
pub fn paper_values(method: IsolationMethod) -> (u64, u64) {
    match method {
        IsolationMethod::NoIsolation => (23, 90),
        IsolationMethod::FeatureLimited => (41, 90),
        IsolationMethod::Mpu => (29, 142),
        IsolationMethod::SoftwareOnly => (32, 98),
    }
}

/// Measures Table 1 on the simulator.
///
/// `rounds` controls how long each measured run is (the paper uses 200
/// iterations; the differencing below makes the result insensitive to the
/// exact value beyond a handful of rounds).
pub fn measure(rounds: u16) -> Vec<Table1Row> {
    let rounds = rounds.max(2);
    let synthetic = amulet_apps::synthetic();
    let mut rows = Vec::new();
    for method in IsolationMethod::ALL {
        let mut os = boot_benchmark(&synthetic, method);

        // Memory access cost: difference a long and a short run of the
        // memory-access handler so the per-invocation overhead cancels.
        let short = run(&mut os, "mem_ops", 1);
        let long = run(&mut os, "mem_ops", rounds);
        let mem_per_op = (long - short) as f64 / ((rounds as u64 - 1) * ACCESSES_PER_ROUND) as f64;

        // Context switch cost: same differencing on the API-call handler.
        let short = run(&mut os, "switch_ops", 1);
        let long = run(&mut os, "switch_ops", rounds);
        let switch_per_op =
            (long - short) as f64 / ((rounds as u64 - 1) * SWITCHES_PER_ROUND) as f64;

        let model = OverheadModel::for_method(method);
        let (paper_mem, paper_switch) = paper_values(method);
        rows.push(Table1Row {
            method,
            memory_access_cycles: mem_per_op,
            context_switch_cycles: switch_per_op,
            analytic_memory_access: model.absolute_memory_access_cycles(),
            analytic_context_switch: model.absolute_context_switch_cycles(),
            paper_memory_access: paper_mem,
            paper_context_switch: paper_switch,
        });
    }
    rows
}

fn run(os: &mut amulet_os::os::AmuletOs, handler: &str, rounds: u16) -> u64 {
    let (outcome, cycles) = os.call_handler(0, handler, rounds);
    assert_eq!(outcome, DeliveryOutcome::Completed, "{handler}({rounds})");
    cycles
}

/// Renders the table (measured, analytic and paper values side by side).
pub fn render(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 1 — average cycle count for basic memory isolation operations"
    );
    let _ = writeln!(
        s,
        "{:<16} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>7}",
        "", "mem meas", "mem anal", "paper", "sw meas", "sw anal", "paper"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<16} | {:>9.1} {:>9} {:>7} | {:>9.1} {:>9} {:>7}",
            r.method.label(),
            r.memory_access_cycles,
            r.analytic_memory_access,
            r.paper_memory_access,
            r.context_switch_cycles,
            r.analytic_context_switch,
            r.paper_context_switch,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_values_match_the_paper_exactly() {
        for method in IsolationMethod::ALL {
            let model = OverheadModel::for_method(method);
            let (mem, switch) = paper_values(method);
            assert_eq!(model.absolute_memory_access_cycles(), mem, "{method}");
            assert_eq!(model.absolute_context_switch_cycles(), switch, "{method}");
        }
    }

    #[test]
    fn measured_table1_preserves_the_paper_orderings() {
        let rows = measure(8);
        let by_method = |m: IsolationMethod| rows.iter().find(|r| r.method == m).unwrap();
        let none = by_method(IsolationMethod::NoIsolation);
        let fl = by_method(IsolationMethod::FeatureLimited);
        let mpu = by_method(IsolationMethod::Mpu);
        let sw = by_method(IsolationMethod::SoftwareOnly);

        // Memory access: NoIsolation < MPU < SoftwareOnly < FeatureLimited.
        assert!(none.memory_access_cycles < mpu.memory_access_cycles);
        assert!(mpu.memory_access_cycles < sw.memory_access_cycles);
        assert!(sw.memory_access_cycles < fl.memory_access_cycles);

        // Context switch: {NoIsolation, FeatureLimited} < SoftwareOnly < MPU.
        assert!((none.context_switch_cycles - fl.context_switch_cycles).abs() < 1.0);
        assert!(fl.context_switch_cycles < sw.context_switch_cycles);
        assert!(sw.context_switch_cycles < mpu.context_switch_cycles);

        // The MPU method's switch premium over Software Only should be in
        // the same ballpark as the paper's 142 − 98 = 44 cycles.
        let premium = mpu.context_switch_cycles - sw.context_switch_cycles;
        assert!((20.0..=80.0).contains(&premium), "premium {premium}");
    }

    #[test]
    fn render_mentions_every_method() {
        let rows = measure(4);
        let text = render(&rows);
        for m in IsolationMethod::ALL {
            assert!(text.contains(m.label()));
        }
    }
}
