//! Golden fixture for the `firmware_lint` document.
//!
//! The lint document is a pure function of the scenario, so this test can
//! pin it byte for byte: any change to the verifier's verdicts on the
//! committed catalogue — a new finding, a lost elision, a verdict flip —
//! shows up as a fixture diff that must be reviewed and re-blessed
//! deliberately, never silently.
//!
//! To re-bless after an intentional verifier change:
//! `BLESS_GOLDEN=1 cargo test -p amulet-bench --test golden_lint`

use amulet_bench::lint::lint_document;
use amulet_fleet::FleetScenario;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/firmware_lint_scaling60.txt")
}

#[test]
fn lint_document_matches_the_golden_fixture() {
    let scenario = FleetScenario::scaling(60);
    let (doc, summary) = lint_document(&scenario, 4);
    assert!(
        summary.passes_gate(),
        "the benign scaling catalogue must pass the verify gate"
    );

    let path = fixture_path();
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &doc).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with BLESS_GOLDEN=1",
            path.display()
        )
    });
    if doc != golden {
        // Find the first diverging line so the failure is actionable
        // without diffing 25 KB by hand.
        let mismatch = doc
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}: {a:?} != {b:?}", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "lengths differ: {} vs {} lines",
                    doc.lines().count(),
                    golden.lines().count()
                )
            });
        panic!(
            "firmware_lint document diverged from the golden fixture \
             ({mismatch}); if the verifier change is intentional, re-bless \
             with BLESS_GOLDEN=1"
        );
    }
}
