//! Property tests for the rendered fleet report's compatibility guarantee:
//! an arrival-order document must be **byte-identical** no matter which of
//! the PR's time-stepped knobs are present on the scenario — the pre-PR
//! renderer had no `time_mode`, no LPM override and no latency fields, so
//! any byte they could leak into an arrival-order report is a regression.

use amulet_bench::fleet_sim::render_json;
use amulet_fleet::{simulate, FleetScenario, TimeMode};
use proptest::prelude::*;

proptest! {
    // Each case runs a few small fleets end to end; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn arrival_order_bytes_are_invariant_to_the_stepped_knobs(
        seed in 0u64..1_000_000,
        devices in 3usize..8,
        lpm_na in 0u32..1_000_000,
    ) {
        let base = FleetScenario {
            seed,
            devices,
            events_per_device: 10,
            ..FleetScenario::default()
        };
        let plain = render_json(&simulate(&base, 2), None);
        // The LPM override is a stepped-only knob: arrival-order rendering
        // must not change by a single byte when it is set.
        let with_knob = render_json(
            &simulate(
                &FleetScenario {
                    lpm_current_override_na: Some(lpm_na),
                    ..base.clone()
                },
                2,
            ),
            None,
        );
        prop_assert_eq!(&plain, &with_knob);
        // No stepped-only field may appear in an arrival-order document.
        for absent in [
            "time_mode",
            "idle_joules",
            "duty_cycle",
            "delivery_latency_ms",
            "battery_weeks_p50",
            "latency_vs_batching",
        ] {
            prop_assert!(!plain.contains(absent), "{} leaked", absent);
        }
        // The identical scenario in stepped mode renders a superset: the
        // shared prefix of fields carries the same scenario numbers.
        let stepped = render_json(
            &simulate(
                &FleetScenario {
                    time_mode: TimeMode::Stepped,
                    ..base
                },
                2,
            ),
            None,
        );
        prop_assert!(stepped.contains("\"time_mode\": \"stepped\""));
        prop_assert!(stepped.contains("\"delivery_latency_ms\""));
    }
}
