//! Addresses and address ranges on the 16-bit MSP430-class address space.
//!
//! The MSP430FR5969 used by the Amulet has a 64 KiB, byte-addressed address
//! space (we ignore the 20-bit extended addressing, which the Amulet firmware
//! does not use).  Addresses are represented as [`Addr`] (`u32` holding values
//! `0..=0xFFFF`) so that end-exclusive ranges can express "one past the top of
//! memory" (`0x1_0000`) without overflow gymnastics.

use std::fmt;

/// A byte address in the MCU's 64 KiB address space.
///
/// Valid addresses are `0..=0xFFFF`; the value `0x1_0000` is used only as an
/// exclusive range end.
pub type Addr = u32;

/// One past the highest valid address (exclusive upper limit of the address
/// space).
pub const ADDRESS_SPACE_END: Addr = 0x1_0000;

/// A half-open `[start, end)` range of byte addresses.
///
/// Ranges are the vocabulary shared by the memory-map planner, the MPU plan,
/// the linker in `amulet-aft` and the bus model in `amulet-mcu`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AddrRange {
    /// Inclusive start address.
    pub start: Addr,
    /// Exclusive end address.
    pub end: Addr,
}

impl AddrRange {
    /// Creates a new range; panics if `start > end` or the range leaves the
    /// 64 KiB address space.
    ///
    /// # Panics
    ///
    /// Panics when `start > end` or `end > 0x1_0000`.
    pub fn new(start: Addr, end: Addr) -> Self {
        assert!(start <= end, "AddrRange start {start:#x} > end {end:#x}");
        assert!(
            end <= ADDRESS_SPACE_END,
            "AddrRange end {end:#x} exceeds the 64 KiB address space"
        );
        Self { start, end }
    }

    /// Creates a range from a start address and a length in bytes.
    pub fn from_len(start: Addr, len: u32) -> Self {
        Self::new(start, start + len)
    }

    /// An empty range at address zero.
    pub const fn empty() -> Self {
        Self { start: 0, end: 0 }
    }

    /// Number of bytes covered by the range.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the range covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `addr` falls inside the range.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Whether `other` is entirely contained in `self`.
    pub fn contains_range(&self, other: &AddrRange) -> bool {
        other.is_empty() || (other.start >= self.start && other.end <= self.end)
    }

    /// Whether the two ranges share at least one byte.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// Whether an access of `size` bytes starting at `addr` lies entirely in
    /// the range.
    pub fn contains_access(&self, addr: Addr, size: u32) -> bool {
        addr >= self.start && addr.saturating_add(size) <= self.end
    }

    /// Returns the range rounded outward to `align`-byte boundaries.
    ///
    /// `align` must be a power of two.
    pub fn align_outward(&self, align: u32) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let mask = align - 1;
        let start = self.start & !mask;
        let end = (self.end + mask) & !mask;
        Self::new(start, end.min(ADDRESS_SPACE_END))
    }

    /// Splits the range at `mid`, returning `([start, mid), [mid, end))`.
    ///
    /// # Panics
    ///
    /// Panics when `mid` is outside `[start, end]`.
    pub fn split_at(&self, mid: Addr) -> (Self, Self) {
        assert!(
            mid >= self.start && mid <= self.end,
            "split point {mid:#x} outside range {self:?}"
        );
        (Self::new(self.start, mid), Self::new(mid, self.end))
    }
}

impl fmt::Debug for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#06x}, {:#06x})", self.start, self.end)
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#06x}..{:#06x} ({} B)",
            self.start,
            self.end,
            self.len()
        )
    }
}

/// Rounds `value` up to the next multiple of `align` (power of two).
pub fn align_up(value: u32, align: u32) -> u32 {
    assert!(align.is_power_of_two(), "alignment must be a power of two");
    (value + align - 1) & !(align - 1)
}

/// Rounds `value` down to the previous multiple of `align` (power of two).
pub fn align_down(value: u32, align: u32) -> u32 {
    assert!(align.is_power_of_two(), "alignment must be a power of two");
    value & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = AddrRange::new(0x4400, 0x4800);
        assert_eq!(r.len(), 0x400);
        assert!(!r.is_empty());
        assert!(r.contains(0x4400));
        assert!(r.contains(0x47FF));
        assert!(!r.contains(0x4800));
        assert!(!r.contains(0x43FF));
    }

    #[test]
    fn from_len_matches_new() {
        assert_eq!(
            AddrRange::from_len(0x1C00, 0x800),
            AddrRange::new(0x1C00, 0x2400)
        );
    }

    #[test]
    fn empty_range_contains_nothing() {
        let r = AddrRange::empty();
        assert!(r.is_empty());
        assert!(!r.contains(0));
        assert!(!r.overlaps(&AddrRange::new(0, ADDRESS_SPACE_END)));
    }

    #[test]
    fn overlap_detection() {
        let a = AddrRange::new(0x1000, 0x2000);
        let b = AddrRange::new(0x1800, 0x2800);
        let c = AddrRange::new(0x2000, 0x3000);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c), "touching ranges do not overlap");
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn contains_range_and_access() {
        let outer = AddrRange::new(0x4400, 0x6000);
        assert!(outer.contains_range(&AddrRange::new(0x4400, 0x6000)));
        assert!(outer.contains_range(&AddrRange::new(0x5000, 0x5002)));
        assert!(outer.contains_range(&AddrRange::empty()));
        assert!(!outer.contains_range(&AddrRange::new(0x43FE, 0x4402)));
        assert!(outer.contains_access(0x5FFE, 2));
        assert!(!outer.contains_access(0x5FFF, 2));
    }

    #[test]
    fn align_outward_rounds_both_ends() {
        let r = AddrRange::new(0x4410, 0x47F0).align_outward(0x400);
        assert_eq!(r, AddrRange::new(0x4400, 0x4800));
    }

    #[test]
    fn split_at_partitions() {
        let r = AddrRange::new(0x1000, 0x2000);
        let (lo, hi) = r.split_at(0x1800);
        assert_eq!(lo, AddrRange::new(0x1000, 0x1800));
        assert_eq!(hi, AddrRange::new(0x1800, 0x2000));
        assert_eq!(lo.len() + hi.len(), r.len());
    }

    #[test]
    #[should_panic(expected = "exceeds the 64 KiB address space")]
    fn rejects_out_of_space_range() {
        let _ = AddrRange::new(0xFFFF, 0x2_0000);
    }

    #[test]
    fn align_helpers() {
        assert_eq!(align_up(0x401, 0x400), 0x800);
        assert_eq!(align_up(0x400, 0x400), 0x400);
        assert_eq!(align_down(0x7FF, 0x400), 0x400);
        assert_eq!(align_down(0x800, 0x400), 0x800);
    }

    #[test]
    fn display_and_debug_are_hex() {
        let r = AddrRange::new(0x4400, 0x4800);
        assert_eq!(format!("{r:?}"), "[0x4400, 0x4800)");
        assert!(format!("{r}").contains("1024 B"));
    }
}
