//! Compiler-inserted run-time checks.
//!
//! Every check the AFT inserts is, as the paper notes, "a simple comparison
//! against a constant, followed by a conditional branch (jump) to the
//! fault-handling code".  This module describes *which* checks each isolation
//! method requires and what each costs in instructions and cycles, so that
//! both the compiler passes (`amulet-aft::passes`) and the analytic overhead
//! model ([`crate::overhead`]) agree on the policy.

use crate::fault::FaultClass;
use crate::method::IsolationMethod;
use std::fmt;

/// A kind of compiler-inserted run-time check.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CheckKind {
    /// `if (address < D_i) FAULT()` before a data-pointer dereference.
    DataPointerLower,
    /// `if (address >= top_i) FAULT()` before a data-pointer dereference
    /// (only needed when the MPU is not protecting the region above the app).
    DataPointerUpper,
    /// `if (address < C_i) FAULT()` before an indirect call through a
    /// function pointer.
    FunctionPointerLower,
    /// `if (address >= D_i) FAULT()` before an indirect call through a
    /// function pointer (Software Only).
    FunctionPointerUpper,
    /// `if (index >= length) FAULT()` around an array access
    /// (Feature Limited; indexes are unsigned so a single compare suffices).
    ArrayBounds,
    /// `if (return_address < C_i || return_address >= D_i) FAULT()` before a
    /// function return, defending against stack smashing.
    ReturnAddress,
}

impl CheckKind {
    /// Every check kind.
    pub const ALL: [CheckKind; 6] = [
        CheckKind::DataPointerLower,
        CheckKind::DataPointerUpper,
        CheckKind::FunctionPointerLower,
        CheckKind::FunctionPointerUpper,
        CheckKind::ArrayBounds,
        CheckKind::ReturnAddress,
    ];

    /// The fault class reported when this check fails.
    pub fn fault_class(&self) -> FaultClass {
        match self {
            CheckKind::DataPointerLower => FaultClass::DataPointerLowerBound,
            CheckKind::DataPointerUpper => FaultClass::DataPointerUpperBound,
            CheckKind::FunctionPointerLower => FaultClass::FunctionPointerLowerBound,
            CheckKind::FunctionPointerUpper => FaultClass::FunctionPointerUpperBound,
            CheckKind::ArrayBounds => FaultClass::ArrayBounds,
            CheckKind::ReturnAddress => FaultClass::ReturnAddress,
        }
    }

    /// Number of machine instructions in the inserted sequence
    /// (compare-immediate + conditional branch, twice for the two-sided
    /// return-address check).
    pub fn instruction_count(&self) -> u32 {
        match self {
            CheckKind::ReturnAddress => 4,
            _ => 2,
        }
    }

    /// Cycle cost of the inserted sequence when the check passes (the hot
    /// path), using MSP430-flavoured costs.
    ///
    /// The *lower*-bound checks materialise the pointer value before
    /// comparing (compare-with-extension-word + not-taken jump, 6 cycles);
    /// when an *upper*-bound check follows it reuses the already-loaded
    /// register, so it only adds the compare and jump (3 cycles).  These
    /// constants make the analytic model reproduce Table 1 exactly
    /// (23 → 29 for MPU, 23 → 32 for Software Only).
    pub fn cycle_cost(&self) -> u64 {
        match self {
            // Array bounds checks in the Feature Limited tool additionally
            // reload the (possibly just computed) index and the array length
            // from the array descriptor in memory before comparing, which is
            // why the paper's Table 1 shows the Feature Limited memory access
            // costing noticeably more than the pointer checks (41 vs 29/32).
            CheckKind::ArrayBounds => 9,
            CheckKind::ReturnAddress => 10,
            CheckKind::DataPointerLower | CheckKind::FunctionPointerLower => 6,
            CheckKind::DataPointerUpper | CheckKind::FunctionPointerUpper => 3,
        }
    }
}

impl CheckKind {
    /// Whether the static verifier may elide this check when the guarded
    /// access is proven in-bounds.
    ///
    /// Only the four *bound* checks qualify: each is a self-contained
    /// `CmpImm` + `Jcc` pair whose compare immediate **is** the linked
    /// bound, whose flags are dead past the branch (the compiler always
    /// re-materialises a compare before every branch), and whose
    /// fall-through cost is flat — so the pair can be replaced by a
    /// same-size, same-cycles placeholder without disturbing anything.
    /// The return-address check is excluded because its cycle cost is
    /// path-dependent (cheap sentinel exit vs full two-sided compare), and
    /// the array-bounds check because its bound lives in a runtime array
    /// descriptor, not in the instruction stream.
    pub fn is_elidable(&self) -> bool {
        matches!(
            self,
            CheckKind::DataPointerLower
                | CheckKind::DataPointerUpper
                | CheckKind::FunctionPointerLower
                | CheckKind::FunctionPointerUpper
        )
    }

    /// Encoded size, in 16-bit code words, of an elidable check's
    /// `CmpImm` + `Jcc` pair (two 2-word instructions).
    pub fn elidable_pair_words(&self) -> Option<u32> {
        self.is_elidable().then_some(4)
    }

    /// Fall-through cycle cost of an elidable check's `CmpImm` (2) +
    /// not-taken `Jcc` (2) pair — what the placeholder must keep charging
    /// for the elided image to stay cycle-identical.
    pub fn elidable_pair_cycles(&self) -> Option<u64> {
        self.is_elidable().then_some(4)
    }
}

/// One compiler-inserted check sequence, located in the linked image.
///
/// The AFT records a `CheckSite` for every check it emits; the linker
/// rebases the address.  The static verifier consumes these to decide,
/// per site, whether the guarded branch can ever be taken — and the
/// elision pass rewrites provably-redundant sites into placeholders.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CheckSite {
    /// Which check this site implements.
    pub kind: CheckKind,
    /// Absolute address of the first instruction of the sequence (the
    /// `CmpImm` of a bound check).
    pub addr: u32,
    /// Number of machine instructions in the sequence.
    pub len: u32,
}

impl fmt::Display for CheckSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {:#06x} ({} instrs)",
            self.kind, self.addr, self.len
        )
    }
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckKind::DataPointerLower => "data-pointer lower-bound check",
            CheckKind::DataPointerUpper => "data-pointer upper-bound check",
            CheckKind::FunctionPointerLower => "function-pointer lower-bound check",
            CheckKind::FunctionPointerUpper => "function-pointer upper-bound check",
            CheckKind::ArrayBounds => "array bounds check",
            CheckKind::ReturnAddress => "return-address check",
        };
        f.write_str(s)
    }
}

/// The set of checks an isolation method requires the compiler to insert.
///
/// This is the single source of truth consulted by the AFT passes and by the
/// analytic overhead model, so the simulation and the extrapolation cannot
/// drift apart.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CheckPolicy {
    /// The isolation method this policy belongs to.
    pub method: IsolationMethod,
    /// Check inserted before every data-pointer dereference against the app's
    /// lower data bound `D_i`.
    pub data_pointer_lower: bool,
    /// Check inserted before every data-pointer dereference against the app's
    /// upper bound.
    pub data_pointer_upper: bool,
    /// Check inserted before every indirect call against the app's code
    /// lower bound `C_i`.
    pub function_pointer_lower: bool,
    /// Check inserted before every indirect call against the app's code upper
    /// bound.
    pub function_pointer_upper: bool,
    /// Check inserted around every array access (Feature Limited).
    pub array_bounds: bool,
    /// Check inserted before every function return.
    pub return_address: bool,
}

impl CheckPolicy {
    /// The check policy for a given isolation method **on specific MPU
    /// hardware**, derived from the backend's
    /// [`crate::platform::RegionConstraints`].
    ///
    /// The paper's policy (see [`CheckPolicy::for_method`]) assumes the
    /// FR5969's segmented MPU, which cannot bound the running app from
    /// below and polices neither SRAM nor peripherals — hence the
    /// compiler-inserted lower-bound checks under the MPU method.  A region
    /// MPU with deny-by-default coverage of FRAM *and* SRAM bounds the app
    /// on both sides and shields the OS stack, so the data-pointer
    /// lower-bound check becomes redundant — exactly the §5 projection the
    /// paper makes for more capable MPUs.  Function-pointer checks are
    /// kept on backends like the FR5994 profile's, whose jurisdiction
    /// stops at peripheral space (a corrupted code pointer could still
    /// escape into unpoliced peripheral, boot-ROM or vector memory); on
    /// backends that police the **full platform space** (`cortex-m33`,
    /// `riscv-pmp` — peripherals, boot ROM and vectors are all inside the
    /// deny-by-default jurisdiction) a stray indirect call faults in
    /// hardware everywhere outside the app's execute-only code region, so
    /// the function-pointer check is dropped as well.  Return-address
    /// checks are retained on every profile: they catch *intra-app* stack
    /// smashing — a return diverted to the wrong address inside the app's
    /// own executable region — which no app-granularity MPU can see.
    ///
    /// A *segmented* MPU with four segments can also bound an app from
    /// below (see [`crate::mpu_plan::MpuPlan::for_app_advanced`]), but it
    /// still leaves SRAM open, so its check policy is unchanged — that
    /// configuration remains an analytic ablation.
    pub fn for_method_on(method: IsolationMethod, mpu: &crate::platform::MpuModel) -> Self {
        let mut policy = Self::for_method(method);
        if method == IsolationMethod::Mpu && mpu.is_region_based() {
            policy.data_pointer_lower = false;
            if mpu.covers_peripherals() {
                policy.function_pointer_lower = false;
            }
        }
        policy
    }

    /// The check policy for a given isolation method, exactly as described in
    /// §3 of the paper.
    pub fn for_method(method: IsolationMethod) -> Self {
        match method {
            IsolationMethod::NoIsolation => CheckPolicy {
                method,
                data_pointer_lower: false,
                data_pointer_upper: false,
                function_pointer_lower: false,
                function_pointer_upper: false,
                array_bounds: false,
                return_address: false,
            },
            // The native Amulet approach: no pointers exist in the language,
            // so only array accesses need guarding.
            IsolationMethod::FeatureLimited => CheckPolicy {
                method,
                data_pointer_lower: false,
                data_pointer_upper: false,
                function_pointer_lower: false,
                function_pointer_upper: false,
                array_bounds: true,
                return_address: false,
            },
            // MPU method: the hardware faults on accesses above the app, so
            // only the lower bounds need software checks.
            IsolationMethod::Mpu => CheckPolicy {
                method,
                data_pointer_lower: true,
                data_pointer_upper: false,
                function_pointer_lower: true,
                function_pointer_upper: false,
                array_bounds: false,
                return_address: true,
            },
            // Software Only: both bounds of every pointer dereference are
            // checked in software.
            IsolationMethod::SoftwareOnly => CheckPolicy {
                method,
                data_pointer_lower: true,
                data_pointer_upper: true,
                function_pointer_lower: true,
                function_pointer_upper: true,
                array_bounds: false,
                return_address: true,
            },
        }
    }

    /// The checks inserted before a *data pointer* dereference.
    pub fn data_pointer_checks(&self) -> Vec<CheckKind> {
        let mut v = Vec::new();
        if self.data_pointer_lower {
            v.push(CheckKind::DataPointerLower);
        }
        if self.data_pointer_upper {
            v.push(CheckKind::DataPointerUpper);
        }
        v
    }

    /// The checks inserted before an indirect call through a function
    /// pointer.
    pub fn function_pointer_checks(&self) -> Vec<CheckKind> {
        let mut v = Vec::new();
        if self.function_pointer_lower {
            v.push(CheckKind::FunctionPointerLower);
        }
        if self.function_pointer_upper {
            v.push(CheckKind::FunctionPointerUpper);
        }
        v
    }

    /// The checks inserted around an array access.
    pub fn array_checks(&self) -> Vec<CheckKind> {
        if self.array_bounds {
            vec![CheckKind::ArrayBounds]
        } else {
            Vec::new()
        }
    }

    /// The checks inserted before a function return.
    pub fn return_checks(&self) -> Vec<CheckKind> {
        if self.return_address {
            vec![CheckKind::ReturnAddress]
        } else {
            Vec::new()
        }
    }

    /// Total number of checks inserted per data-pointer dereference.
    pub fn checks_per_pointer_deref(&self) -> u32 {
        self.data_pointer_lower as u32 + self.data_pointer_upper as u32
    }

    /// Extra cycles added to a single data-memory access (pointer dereference
    /// under the pointer-enabled methods, array access under Feature
    /// Limited).  This is the per-access component of the analytic model.
    pub fn memory_access_overhead_cycles(&self) -> u64 {
        match self.method {
            IsolationMethod::FeatureLimited => {
                self
                .array_checks()
                .iter()
                .map(|c| c.cycle_cost())
                .sum::<u64>()
                // The Feature Limited tool also re-materialises the bound from
                // the array descriptor it keeps in memory (two extra memory
                // operands), which the paper's 41-cycle figure includes.
                + 9
            }
            _ => self
                .data_pointer_checks()
                .iter()
                .map(|c| c.cycle_cost())
                .sum(),
        }
    }

    /// Human-readable one-line summary (used by ARP-view reports).
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for k in CheckKind::ALL {
            let enabled = match k {
                CheckKind::DataPointerLower => self.data_pointer_lower,
                CheckKind::DataPointerUpper => self.data_pointer_upper,
                CheckKind::FunctionPointerLower => self.function_pointer_lower,
                CheckKind::FunctionPointerUpper => self.function_pointer_upper,
                CheckKind::ArrayBounds => self.array_bounds,
                CheckKind::ReturnAddress => self.return_address,
            };
            if enabled {
                parts.push(k.to_string());
            }
        }
        if parts.is_empty() {
            format!("{}: no compiler-inserted checks", self.method)
        } else {
            format!("{}: {}", self.method, parts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_isolation_inserts_nothing() {
        let p = CheckPolicy::for_method(IsolationMethod::NoIsolation);
        assert!(p.data_pointer_checks().is_empty());
        assert!(p.function_pointer_checks().is_empty());
        assert!(p.array_checks().is_empty());
        assert!(p.return_checks().is_empty());
        assert_eq!(p.memory_access_overhead_cycles(), 0);
    }

    #[test]
    fn mpu_method_needs_half_the_pointer_checks_of_software_only() {
        let mpu = CheckPolicy::for_method(IsolationMethod::Mpu);
        let sw = CheckPolicy::for_method(IsolationMethod::SoftwareOnly);
        assert_eq!(mpu.checks_per_pointer_deref(), 1);
        assert_eq!(sw.checks_per_pointer_deref(), 2);
        assert_eq!(
            sw.checks_per_pointer_deref(),
            2 * mpu.checks_per_pointer_deref()
        );
    }

    #[test]
    fn feature_limited_guards_arrays_only() {
        let p = CheckPolicy::for_method(IsolationMethod::FeatureLimited);
        assert!(p.array_bounds);
        assert!(!p.data_pointer_lower && !p.data_pointer_upper);
        assert!(!p.function_pointer_lower && !p.function_pointer_upper);
    }

    #[test]
    fn table1_memory_access_overhead_ordering() {
        // Table 1: 23 (none) < 29 (MPU) < 32 (SW only) < 41 (feature limited).
        let none =
            CheckPolicy::for_method(IsolationMethod::NoIsolation).memory_access_overhead_cycles();
        let mpu = CheckPolicy::for_method(IsolationMethod::Mpu).memory_access_overhead_cycles();
        let sw =
            CheckPolicy::for_method(IsolationMethod::SoftwareOnly).memory_access_overhead_cycles();
        let fl = CheckPolicy::for_method(IsolationMethod::FeatureLimited)
            .memory_access_overhead_cycles();
        assert!(none < mpu, "{none} < {mpu}");
        assert!(mpu < sw, "{mpu} < {sw}");
        assert!(sw < fl, "{sw} < {fl}");
    }

    #[test]
    fn check_kinds_map_to_matching_fault_classes() {
        assert_eq!(
            CheckKind::DataPointerLower.fault_class(),
            FaultClass::DataPointerLowerBound
        );
        assert_eq!(
            CheckKind::ArrayBounds.fault_class(),
            FaultClass::ArrayBounds
        );
        assert_eq!(
            CheckKind::ReturnAddress.fault_class(),
            FaultClass::ReturnAddress
        );
    }

    #[test]
    fn every_check_is_a_compare_and_branch() {
        for k in CheckKind::ALL {
            assert!(k.instruction_count() >= 2);
            assert!(k.cycle_cost() >= 3, "{k} suspiciously cheap");
            assert!(k.cycle_cost() <= 12, "{k} suspiciously expensive");
        }
    }

    #[test]
    fn only_bound_checks_are_elidable() {
        for k in CheckKind::ALL {
            let elidable = k.is_elidable();
            assert_eq!(
                elidable,
                !matches!(k, CheckKind::ArrayBounds | CheckKind::ReturnAddress),
                "{k}"
            );
            assert_eq!(k.elidable_pair_words().is_some(), elidable);
            if elidable {
                // Two 2-word instructions, each 2 cycles on fall-through.
                assert_eq!(k.elidable_pair_words(), Some(4));
                assert_eq!(k.elidable_pair_cycles(), Some(4));
                assert_eq!(k.instruction_count(), 2);
            }
        }
    }

    #[test]
    fn summary_mentions_method_name() {
        for m in IsolationMethod::ALL {
            assert!(CheckPolicy::for_method(m).summary().contains(m.label()));
        }
    }
}
