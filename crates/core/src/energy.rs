//! Energy and battery-lifetime model.
//!
//! Figure 2 of the paper converts weekly isolation-overhead cycles into a
//! battery-lifetime impact percentage.  The conversion is:
//!
//! ```text
//! overhead seconds = overhead cycles / CPU frequency
//! overhead energy  = overhead seconds × active power
//! impact %         = overhead energy / weekly energy budget × 100
//! ```
//!
//! The constants default to the MSP430FR5969 running at 16 MHz from a 3 V
//! supply (≈100 µA/MHz active current per the datasheet) and an Amulet-like
//! 100 mAh battery with a one-week baseline lifetime.  The absolute figures
//! depend on these constants, but the paper's headline claim — every
//! application stays **below 0.5 % battery impact** under either isolation
//! method — is robust to any reasonable choice, and the benches print both
//! the constants and the result so the comparison is explicit.
//!
//! Ultra-low-power devices spend almost all of their life asleep, so the
//! model also carries the **low-power-mode (LPM) current** — the draw
//! between events, with the CPU stopped and only the RTC/wakeup logic
//! running (≈0.7 µA in LPM3 on the FR5969).  The time-stepped fleet mode
//! charges `active energy = cycles × joules/cycle` while handlers run and
//! `idle energy = LPM power × gap seconds` across inter-event gaps, which
//! is what turns per-event overhead cycles into a battery-lifetime number.

/// CPU frequency and active/sleep power model of the MCU.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// CPU clock frequency in Hz.
    pub frequency_hz: f64,
    /// Active-mode supply current in amperes at that frequency.
    pub active_current_a: f64,
    /// Low-power-mode (sleep) supply current in amperes — what the device
    /// draws between events while waiting for the next wakeup.
    pub lpm_current_a: f64,
    /// Supply voltage in volts.
    pub supply_voltage_v: f64,
}

impl EnergyModel {
    /// MSP430FR5969 at 16 MHz: ≈100 µA/MHz active, ≈0.7 µA in LPM3, from a
    /// 3 V supply.
    pub fn msp430fr5969() -> Self {
        EnergyModel {
            frequency_hz: 16_000_000.0,
            active_current_a: 1.6e-3,
            lpm_current_a: 0.7e-6,
            supply_voltage_v: 3.0,
        }
    }

    /// The energy model for a platform, derived from the electrical
    /// parameters its spec carries — every profile, including future ones,
    /// gets its own numbers rather than a silent FR5969 fallback.
    pub fn for_platform(platform: &crate::layout::PlatformSpec) -> Self {
        EnergyModel {
            frequency_hz: platform.energy.frequency_hz as f64,
            active_current_a: platform.energy.active_current_ua as f64 / 1e6,
            lpm_current_a: platform.energy.lpm_current_na as f64 / 1e9,
            supply_voltage_v: platform.energy.supply_millivolts as f64 / 1000.0,
        }
    }

    /// Active power draw in watts.
    pub fn active_power_w(&self) -> f64 {
        self.active_current_a * self.supply_voltage_v
    }

    /// Low-power-mode (sleep) power draw in watts.
    pub fn lpm_power_w(&self) -> f64 {
        self.lpm_current_a * self.supply_voltage_v
    }

    /// Energy consumed by `seconds` of low-power-mode idling, in joules.
    pub fn idle_joules(&self, seconds: f64) -> f64 {
        self.lpm_power_w() * seconds.max(0.0)
    }

    /// Energy consumed per active CPU cycle, in joules.
    pub fn joules_per_cycle(&self) -> f64 {
        self.active_power_w() / self.frequency_hz
    }

    /// Converts a cycle count to active execution time in seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.frequency_hz
    }

    /// Converts a cycle count to energy in joules.
    pub fn cycles_to_joules(&self, cycles: u64) -> f64 {
        cycles as f64 * self.joules_per_cycle()
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::msp430fr5969()
    }
}

/// Battery capacity and baseline lifetime of the wearable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatteryModel {
    /// Battery capacity in milliamp-hours.
    pub capacity_mah: f64,
    /// Nominal battery voltage in volts.
    pub voltage_v: f64,
    /// Baseline battery lifetime, in weeks, with no isolation overhead.  The
    /// Amulet platform targets multi-week lifetimes; we use one week so the
    /// weekly energy budget equals the full battery capacity, which is the
    /// most conservative (largest-impact) assumption.
    pub baseline_lifetime_weeks: f64,
}

impl BatteryModel {
    /// Amulet-like battery: 100 mAh at 3 V with a one-week baseline lifetime.
    pub fn amulet() -> Self {
        BatteryModel {
            capacity_mah: 100.0,
            voltage_v: 3.0,
            baseline_lifetime_weeks: 1.0,
        }
    }

    /// Total energy stored in the battery, in joules.
    pub fn capacity_joules(&self) -> f64 {
        self.capacity_mah / 1000.0 * 3600.0 * self.voltage_v
    }

    /// Energy budget consumed per week at the baseline lifetime, in joules.
    pub fn weekly_budget_joules(&self) -> f64 {
        self.capacity_joules() / self.baseline_lifetime_weeks
    }

    /// Battery-lifetime impact (in percent) of spending `overhead_joules`
    /// extra per week.
    pub fn impact_percent(&self, overhead_joules_per_week: f64) -> f64 {
        overhead_joules_per_week / self.weekly_budget_joules() * 100.0
    }

    /// Battery-lifetime impact (in percent) of `overhead_cycles_per_week`
    /// extra active cycles per week under the given energy model.
    pub fn impact_percent_from_cycles(
        &self,
        energy: &EnergyModel,
        overhead_cycles_per_week: u64,
    ) -> f64 {
        self.impact_percent(energy.cycles_to_joules(overhead_cycles_per_week))
    }

    /// Battery lifetime, in weeks, of a device whose long-run average power
    /// draw is `average_power_w` watts — the end-to-end projection the
    /// time-stepped fleet mode uses: average power = (active + idle energy)
    /// over the simulated virtual time, and the battery lasts
    /// `capacity / power` seconds.  A non-positive power yields infinity
    /// (the device never drains the battery in this model).
    pub fn lifetime_weeks_at_power(&self, average_power_w: f64) -> f64 {
        if average_power_w <= 0.0 {
            return f64::INFINITY;
        }
        self.capacity_joules() / average_power_w / (7.0 * 86_400.0)
    }

    /// New battery lifetime, in weeks, after adding the weekly overhead.
    pub fn lifetime_with_overhead_weeks(&self, overhead_joules_per_week: f64) -> f64 {
        let baseline_weekly = self.weekly_budget_joules();
        self.capacity_joules() / (baseline_weekly + overhead_joules_per_week)
            * (self.baseline_lifetime_weeks / (self.capacity_joules() / baseline_weekly))
    }
}

impl Default for BatteryModel {
    fn default() -> Self {
        Self::amulet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs().max(1e-12)
    }

    #[test]
    fn msp430_power_is_a_few_milliwatts() {
        let e = EnergyModel::msp430fr5969();
        assert!(
            close(e.active_power_w(), 4.8e-3, 1e-9),
            "{}",
            e.active_power_w()
        );
        assert!(e.joules_per_cycle() < 1e-9, "sub-nanojoule per cycle");
    }

    #[test]
    fn cycles_convert_to_time_and_energy() {
        let e = EnergyModel::msp430fr5969();
        assert!(close(e.cycles_to_seconds(16_000_000), 1.0, 1e-12));
        assert!(close(
            e.cycles_to_joules(16_000_000),
            e.active_power_w(),
            1e-12
        ));
    }

    #[test]
    fn battery_capacity_math() {
        let b = BatteryModel::amulet();
        // 100 mAh * 3 V = 0.1 * 3600 * 3 = 1080 J.
        assert!(close(b.capacity_joules(), 1080.0, 1e-12));
        assert!(close(b.weekly_budget_joules(), 1080.0, 1e-12));
    }

    #[test]
    fn figure2_scale_overheads_stay_below_half_percent() {
        // The largest per-app overhead in Figure 2 is on the order of a few
        // billion cycles per week; that must land below the paper's 0.5 %
        // battery-impact bound under the default models.
        let e = EnergyModel::msp430fr5969();
        let b = BatteryModel::amulet();
        for cycles in [0_u64, 100_000_000, 1_000_000_000, 3_000_000_000] {
            let impact = b.impact_percent_from_cycles(&e, cycles);
            assert!(impact < 0.5, "{cycles} cycles => {impact}%");
        }
    }

    #[test]
    fn impact_is_monotone_in_cycles() {
        let e = EnergyModel::msp430fr5969();
        let b = BatteryModel::amulet();
        let mut prev = -1.0;
        for cycles in [0_u64, 1_000, 1_000_000, 1_000_000_000, 10_000_000_000] {
            let impact = b.impact_percent_from_cycles(&e, cycles);
            assert!(impact >= prev);
            prev = impact;
        }
    }

    #[test]
    fn lpm_power_is_orders_of_magnitude_below_active() {
        let e = EnergyModel::msp430fr5969();
        assert!(close(e.lpm_power_w(), 2.1e-6, 1e-9), "{}", e.lpm_power_w());
        assert!(e.lpm_power_w() < e.active_power_w() / 1000.0);
        // A week of LPM3 idling costs ~1.27 J — about 0.1 % of the battery.
        let week = e.idle_joules(7.0 * 86_400.0);
        assert!(week > 1.0 && week < 2.0, "{week}");
        assert_eq!(e.idle_joules(-5.0), 0.0, "negative time clamps to zero");
    }

    #[test]
    fn lifetime_at_power_inverts_capacity() {
        let b = BatteryModel::amulet();
        // 1080 J at ≈1.79 mW lasts exactly one week… scale-check both ends.
        let one_week_w = b.capacity_joules() / (7.0 * 86_400.0);
        assert!(close(b.lifetime_weeks_at_power(one_week_w), 1.0, 1e-12));
        assert!(close(
            b.lifetime_weeks_at_power(one_week_w / 4.0),
            4.0,
            1e-12
        ));
        assert!(b.lifetime_weeks_at_power(0.0).is_infinite());
        // A pure-LPM3 device (2.1 µW) projects to a multi-year lifetime:
        // 1080 J / 2.1 µW ≈ 850 weeks.
        let e = EnergyModel::msp430fr5969();
        let weeks = b.lifetime_weeks_at_power(e.lpm_power_w());
        assert!(weeks > 500.0 && weeks < 1500.0, "{weeks}");
    }

    #[test]
    fn lifetime_shrinks_with_overhead() {
        let b = BatteryModel::amulet();
        let without = b.lifetime_with_overhead_weeks(0.0);
        let with = b.lifetime_with_overhead_weeks(100.0);
        assert!(close(without, b.baseline_lifetime_weeks, 1e-12));
        assert!(with < without);
    }
}
