//! Error types shared by the planning code in this crate.

use std::fmt;

/// Result alias for fallible operations in `amulet-core`.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors produced by the memory-map planner and MPU-plan derivation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// The OS image (code + data) does not fit in the low-FRAM region
    /// reserved for it.
    OsImageTooLarge {
        /// Bytes required by the OS image.
        required: u32,
        /// Bytes available in low FRAM.
        available: u32,
    },
    /// The combined application images do not fit in high FRAM.
    AppsDoNotFit {
        /// Bytes required by all application images together.
        required: u32,
        /// Bytes available in high FRAM.
        available: u32,
    },
    /// An individual application region is larger than the address space can
    /// express or is otherwise malformed.
    AppImageInvalid {
        /// Name of the offending application.
        app: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The OS stack does not fit in SRAM.
    OsStackTooLarge {
        /// Bytes requested for the OS stack.
        required: u32,
        /// Bytes of SRAM available.
        available: u32,
    },
    /// A boundary required by the plan cannot be expressed at the MPU's
    /// segment-boundary granularity.
    UnalignedMpuBoundary {
        /// The boundary address that would be required.
        addr: u32,
        /// The MPU's boundary granularity in bytes.
        granularity: u32,
    },
    /// The plan needs more distinct MPU segments than the hardware provides.
    TooManySegments {
        /// Segments required.
        required: usize,
        /// Segments available on the device.
        available: usize,
    },
    /// A named application appears more than once in the build.
    DuplicateApp(String),
    /// The platform description itself is inconsistent (e.g. overlapping
    /// fixed regions).
    InvalidPlatform(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::OsImageTooLarge { required, available } => write!(
                f,
                "OS image needs {required} bytes but only {available} bytes of low FRAM are available"
            ),
            CoreError::AppsDoNotFit { required, available } => write!(
                f,
                "applications need {required} bytes but only {available} bytes of high FRAM are available"
            ),
            CoreError::AppImageInvalid { app, reason } => {
                write!(f, "application `{app}` has an invalid image: {reason}")
            }
            CoreError::OsStackTooLarge { required, available } => write!(
                f,
                "OS stack of {required} bytes does not fit in {available} bytes of SRAM"
            ),
            CoreError::UnalignedMpuBoundary { addr, granularity } => write!(
                f,
                "MPU boundary {addr:#06x} is not aligned to the {granularity}-byte segment granularity"
            ),
            CoreError::TooManySegments { required, available } => write!(
                f,
                "plan requires {required} MPU segments but the device only has {available}"
            ),
            CoreError::DuplicateApp(name) => write!(f, "application `{name}` listed twice"),
            CoreError::InvalidPlatform(reason) => write!(f, "invalid platform description: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_useful_messages() {
        let e = CoreError::OsImageTooLarge {
            required: 40000,
            available: 30000,
        };
        assert!(e.to_string().contains("40000"));
        let e = CoreError::UnalignedMpuBoundary {
            addr: 0x4410,
            granularity: 1024,
        };
        assert!(e.to_string().contains("0x4410"));
        let e = CoreError::DuplicateApp("HR".into());
        assert!(e.to_string().contains("HR"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<CoreError>();
    }
}
