//! Classification of application faults.
//!
//! Both hardware (MPU violation) and software (compiler-inserted check)
//! protection mechanisms ultimately land in the OS FAULT handler; this module
//! provides the shared vocabulary for describing *why*.

use std::fmt;

/// Why an application was faulted.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultClass {
    /// The MPU detected an access that violates the current segment
    /// permissions (the hardware half of the paper's MPU method).
    MpuViolation,
    /// A compiler-inserted lower-bound check on a data-pointer dereference
    /// failed (`address < D_i`).
    DataPointerLowerBound,
    /// A compiler-inserted upper-bound check on a data-pointer dereference
    /// failed (Software Only method).
    DataPointerUpperBound,
    /// A compiler-inserted lower-bound check on a function-pointer call
    /// failed (`address < C_i`).
    FunctionPointerLowerBound,
    /// A compiler-inserted upper-bound check on a function-pointer call
    /// failed (Software Only method).
    FunctionPointerUpperBound,
    /// A compiler-inserted array bounds check failed (Feature Limited
    /// method).
    ArrayBounds,
    /// The return-address check before a function return failed, indicating a
    /// smashed stack.
    ReturnAddress,
    /// The application's stack grew past its allocation.  Under the MPU
    /// method this manifests as an MPU violation when the stack crosses into
    /// the execute-only code segment; the OS records it separately when it
    /// can attribute the violation to the stack pointer.
    StackOverflow,
    /// The application attempted to call a system function outside the
    /// approved API surface.
    ApiViolation,
    /// The CPU fetched an instruction it cannot decode (e.g. after a wild
    /// jump under No Isolation).
    IllegalInstruction,
    /// The OS watchdog declared the handler runaway: it burned through its
    /// instruction step budget without returning.  Distinct from
    /// [`FaultClass::IllegalInstruction`] so fleet campaigns can tell a
    /// *hung* app (bounded by the watchdog) from one that crashed.
    WatchdogBudget,
}

impl FaultClass {
    /// Every fault class, for exhaustive reporting and property tests.
    pub const ALL: [FaultClass; 11] = [
        FaultClass::MpuViolation,
        FaultClass::DataPointerLowerBound,
        FaultClass::DataPointerUpperBound,
        FaultClass::FunctionPointerLowerBound,
        FaultClass::FunctionPointerUpperBound,
        FaultClass::ArrayBounds,
        FaultClass::ReturnAddress,
        FaultClass::StackOverflow,
        FaultClass::ApiViolation,
        FaultClass::IllegalInstruction,
        FaultClass::WatchdogBudget,
    ];

    /// Whether this fault was raised by hardware (the MPU) rather than a
    /// compiler-inserted software check.
    pub fn is_hardware(&self) -> bool {
        matches!(
            self,
            FaultClass::MpuViolation | FaultClass::IllegalInstruction
        )
    }

    /// Whether this fault indicates an attempted isolation violation (as
    /// opposed to a plain programming error such as an illegal instruction).
    pub fn is_isolation_violation(&self) -> bool {
        !matches!(
            self,
            FaultClass::IllegalInstruction | FaultClass::WatchdogBudget
        )
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultClass::MpuViolation => "MPU segment violation",
            FaultClass::DataPointerLowerBound => "data pointer below app lower bound",
            FaultClass::DataPointerUpperBound => "data pointer above app upper bound",
            FaultClass::FunctionPointerLowerBound => "function pointer below app code bound",
            FaultClass::FunctionPointerUpperBound => "function pointer above app code bound",
            FaultClass::ArrayBounds => "array index out of bounds",
            FaultClass::ReturnAddress => "corrupted return address",
            FaultClass::StackOverflow => "application stack overflow",
            FaultClass::ApiViolation => "call outside approved system API",
            FaultClass::IllegalInstruction => "illegal instruction",
            FaultClass::WatchdogBudget => "watchdog step budget exhausted",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_vs_software_classification() {
        assert!(FaultClass::MpuViolation.is_hardware());
        assert!(!FaultClass::DataPointerLowerBound.is_hardware());
        assert!(!FaultClass::ArrayBounds.is_hardware());
    }

    #[test]
    fn all_is_exhaustive_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in FaultClass::ALL {
            assert!(seen.insert(format!("{c:?}")));
        }
        assert_eq!(seen.len(), 11);
    }

    #[test]
    fn displays_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for c in FaultClass::ALL {
            assert!(seen.insert(c.to_string()), "duplicate display for {c:?}");
        }
    }
}
