//! The Figure-1 memory map and the planner that produces it.
//!
//! The planner takes the sizes of the OS image and of every application image
//! (code, data, estimated maximum stack) and places them into the
//! MSP430FR5969 address space exactly as Figure 1 of the paper describes:
//!
//! * the OS stack lives in SRAM,
//! * OS code and data live in low FRAM,
//! * applications live in high FRAM, grouped per app, with each app's code at
//!   lower addresses than its data/stack segment,
//! * each app's stack sits *below* its data inside the data/stack segment and
//!   grows downward, so an overflow crosses into the execute-only code
//!   segment and faults.
//!
//! The per-app boundaries `C_i` (start of the app's code), `D_i` (start of
//! the app's data/stack) and `T_i` (end of the app's data/stack) are exactly
//! the constants the AFT patches into the compiler-inserted checks, and
//! `D_i`/`T_i` are the two movable MPU segment boundaries programmed while
//! app *i* runs.

use crate::addr::{align_up, Addr, AddrRange};
use crate::error::{CoreError, CoreResult};
use crate::platform::{CycleCostTable, EnergyParams, MpuModel, Platform, SizeRule};
use std::collections::HashSet;
use std::fmt;

/// Description of a target device: its fixed memory regions, its MPU
/// capability model, and its cycle-cost table.
///
/// `PlatformSpec` is the materialised form of the [`Platform`] trait —
/// profile types like [`crate::platform::Msp430Fr5969`] produce one, and a
/// spec is itself a `Platform`, so either can be passed wherever a platform
/// is expected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlatformSpec {
    /// Stable platform name (used in reports and the comparison bench).
    pub name: String,
    /// Memory-mapped peripheral registers (not protectable by the MPU).
    pub peripherals: AddrRange,
    /// Bootstrap loader ROM.
    pub bootstrap_loader: AddrRange,
    /// Information memory (MPU segment 0; pinned, unused by the paper).
    pub info_mem: AddrRange,
    /// SRAM (holds the OS stack; not protectable by the MPU).
    pub sram: AddrRange,
    /// Main FRAM (OS + applications).
    pub fram: AddrRange,
    /// Interrupt vector table.
    pub interrupt_vectors: AddrRange,
    /// The MPU capability model of the device.
    pub mpu: MpuModel,
    /// Per-platform cycle costs for the analytic models.
    pub costs: CycleCostTable,
    /// Electrical parameters for the energy/battery models.
    pub energy: EnergyParams,
}

impl Platform for PlatformSpec {
    fn spec(&self) -> PlatformSpec {
        self.clone()
    }
}

impl PlatformSpec {
    /// The TI MSP430FR5969 memory map used by the Amulet.
    ///
    /// Region boundaries follow the device datasheet: 2 KiB SRAM at
    /// `0x1C00`, 48 KiB of main FRAM starting at `0x4400`, interrupt vectors
    /// at the top of the address space, and 512 B of InfoMem at `0x1800`.
    pub fn msp430fr5969() -> Self {
        PlatformSpec {
            name: "msp430fr5969".into(),
            peripherals: AddrRange::new(0x0000, 0x1000),
            bootstrap_loader: AddrRange::new(0x1000, 0x1800),
            info_mem: AddrRange::new(0x1800, 0x1A00),
            sram: AddrRange::new(0x1C00, 0x2400),
            fram: AddrRange::new(0x4400, 0xFF80),
            interrupt_vectors: AddrRange::new(0xFF80, 0x1_0000),
            mpu: MpuModel::Segmented {
                main_segments: 3,
                boundary_granularity: 0x400,
            },
            costs: CycleCostTable::default(),
            energy: EnergyParams::default(),
        }
    }

    /// A hypothetical "advanced MPU" variant of the FR5969 used by the
    /// ablation study: same memory map, but the MPU supports enough segments
    /// to bound an app from below as well, removing the need for
    /// compiler-inserted lower-bound checks.
    pub fn msp430fr5969_advanced_mpu() -> Self {
        PlatformSpec {
            name: "msp430fr5969-advanced-mpu".into(),
            mpu: MpuModel::Segmented {
                main_segments: 4,
                boundary_granularity: 0x400,
            },
            ..Self::msp430fr5969()
        }
    }

    /// An MSP430FR5994-class device: the larger sibling of the FR5969
    /// (4 KiB of SRAM; the simulator models the lower 64 KiB window of its
    /// address space since the modelled CPU core is 16-bit), fitted with a
    /// Tock/Cortex-M-style region MPU: eight base/limit regions at 256-byte
    /// alignment with deny-by-default coverage of FRAM, InfoMem and SRAM.
    pub fn msp430fr5994() -> Self {
        PlatformSpec {
            name: "msp430fr5994".into(),
            peripherals: AddrRange::new(0x0000, 0x1000),
            bootstrap_loader: AddrRange::new(0x1000, 0x1800),
            info_mem: AddrRange::new(0x1800, 0x1A00),
            sram: AddrRange::new(0x1C00, 0x2C00),
            fram: AddrRange::new(0x4400, 0xFF80),
            interrupt_vectors: AddrRange::new(0xFF80, 0x1_0000),
            mpu: MpuModel::tock_region(8, 0x100),
            costs: CycleCostTable::default(),
            // The larger part draws slightly more current in both modes
            // (≈118 µA/MHz active, ≈0.9 µA in LPM3 per its datasheet).
            energy: EnergyParams {
                active_current_ua: 1900,
                lpm_current_na: 900,
                ..EnergyParams::default()
            },
        }
    }

    /// An MMU-less RISC-V microcontroller class (FE310-like, clocked at the
    /// same 16 MHz so cycle figures stay comparable): the FR5969 memory
    /// geometry re-expressed over flash/SRAM, protected by an 8-entry PMP
    /// whose NAPOT entries must be power-of-two sized and size-aligned
    /// (minimum 64 B).  User mode is policed over the whole address space
    /// — peripherals included — and machine mode bypasses the PMP, so the
    /// OS-running configuration is a single privilege-mode toggle.
    pub fn riscv_pmp() -> Self {
        PlatformSpec {
            name: "riscv-pmp".into(),
            peripherals: AddrRange::new(0x0000, 0x1000),
            bootstrap_loader: AddrRange::new(0x1000, 0x1800),
            info_mem: AddrRange::new(0x1800, 0x1A00),
            sram: AddrRange::new(0x1C00, 0x2C00),
            fram: AddrRange::new(0x4400, 0xFF80),
            interrupt_vectors: AddrRange::new(0xFF80, 0x1_0000),
            mpu: MpuModel::riscv_pmp_napot(8, 0x40),
            costs: CycleCostTable::default(),
            // RV32 microcontroller-class draw: ≈80 µA/MHz active, ≈0.5 µA
            // in deep sleep with the RTC running.
            energy: EnergyParams {
                active_current_ua: 1300,
                lpm_current_na: 500,
                ..EnergyParams::default()
            },
        }
    }

    /// A Cortex-M33-class (ARMv8-M) device: 16 MPU regions at 32-byte
    /// alignment whose deny-by-default jurisdiction **includes peripheral
    /// space**, so the OS configuration carries a fifth (peripheral)
    /// region and the compiler drops the function-pointer checks too.
    /// Same 16 MHz clock and memory geometry as the FR5994 profile for
    /// comparability; modelled in the lower 64 KiB window.
    pub fn cortex_m33() -> Self {
        PlatformSpec {
            name: "cortex-m33".into(),
            peripherals: AddrRange::new(0x0000, 0x1000),
            bootstrap_loader: AddrRange::new(0x1000, 0x1800),
            info_mem: AddrRange::new(0x1800, 0x1A00),
            sram: AddrRange::new(0x1C00, 0x3400),
            fram: AddrRange::new(0x4400, 0xFF80),
            interrupt_vectors: AddrRange::new(0xFF80, 0x1_0000),
            mpu: MpuModel::cortex_m33_region(16),
            costs: CycleCostTable::default(),
            // M33-class draw at 16 MHz: ≈110 µA/MHz active, ≈1.1 µA stop
            // mode with RTC.
            energy: EnergyParams {
                active_current_ua: 1750,
                lpm_current_na: 1100,
                ..EnergyParams::default()
            },
        }
    }

    /// Every mapped range of the platform that a full-platform-jurisdiction
    /// MPU polices: FRAM, InfoMem, SRAM, peripheral space, the boot ROM
    /// and the vector table.  The single source of the "nowhere unpoliced
    /// to escape to" soundness argument — the simulator's backends and the
    /// tests that certify it both consume this list.
    pub fn full_jurisdiction_ranges(&self) -> [AddrRange; 6] {
        [
            self.fram,
            self.info_mem,
            self.sram,
            self.peripherals,
            self.bootstrap_loader,
            self.interrupt_vectors,
        ]
    }

    /// Granularity at which app bounds must be placed so the MPU can
    /// bracket the app (segment-boundary granularity or region alignment).
    pub fn mpu_boundary_granularity(&self) -> u32 {
        self.mpu.boundary_granularity()
    }

    /// Number of MPU protection slots (segments or regions) the device
    /// offers.
    pub fn mpu_main_segments(&self) -> usize {
        self.mpu.main_segments()
    }

    /// Validates that the fixed regions are non-overlapping and ordered and
    /// that the MPU model is coherent.
    pub fn validate(&self) -> CoreResult<()> {
        let regions = [
            ("peripherals", self.peripherals),
            ("bootstrap_loader", self.bootstrap_loader),
            ("info_mem", self.info_mem),
            ("sram", self.sram),
            ("fram", self.fram),
            ("interrupt_vectors", self.interrupt_vectors),
        ];
        for (i, (name_a, a)) in regions.iter().enumerate() {
            for (name_b, b) in regions.iter().skip(i + 1) {
                if a.overlaps(b) {
                    return Err(CoreError::InvalidPlatform(format!(
                        "region `{name_a}` {a:?} overlaps `{name_b}` {b:?}"
                    )));
                }
            }
        }
        if !self.mpu_boundary_granularity().is_power_of_two() {
            return Err(CoreError::InvalidPlatform(format!(
                "MPU boundary granularity {} is not a power of two",
                self.mpu_boundary_granularity()
            )));
        }
        match &self.mpu {
            MpuModel::Segmented { main_segments, .. } if *main_segments < 3 => {
                return Err(CoreError::InvalidPlatform(format!(
                    "at least 3 main MPU segments are required, got {main_segments}"
                )));
            }
            // An app plan needs a code and a data region; a non-bypass OS
            // plan needs its full region set resident at once.
            MpuModel::Region(c)
                if (c.regions as u32)
                    < c.os_plan_regions().max(crate::platform::APP_PLAN_REGIONS) =>
            {
                return Err(CoreError::InvalidPlatform(format!(
                    "at least {} MPU regions are required, got {}",
                    c.os_plan_regions().max(crate::platform::APP_PLAN_REGIONS),
                    c.regions
                )));
            }
            _ => {}
        }
        Ok(())
    }
}

/// Sizes of the OS image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OsImageSpec {
    /// Bytes of OS code.
    pub code_size: u32,
    /// Bytes of OS global data.
    pub data_size: u32,
    /// Bytes reserved in SRAM for the OS stack.
    pub stack_size: u32,
}

impl Default for OsImageSpec {
    fn default() -> Self {
        OsImageSpec {
            code_size: 0x3000,
            data_size: 0x800,
            stack_size: 0x400,
        }
    }
}

/// Sizes of a single application image, as measured by the AFT in its final
/// analysis phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppImageSpec {
    /// Application name (must be unique within a build).
    pub name: String,
    /// Bytes of application code.
    pub code_size: u32,
    /// Bytes of application global data.
    pub data_size: u32,
    /// Bytes reserved for the application stack (the AFT's maximum-stack-
    /// depth estimate, or a developer-provided bound when recursion makes
    /// the estimate impossible).
    pub stack_size: u32,
}

impl AppImageSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, code_size: u32, data_size: u32, stack_size: u32) -> Self {
        AppImageSpec {
            name: name.into(),
            code_size,
            data_size,
            stack_size,
        }
    }

    /// Total bytes the app will occupy before alignment padding.
    pub fn total_size(&self) -> u32 {
        self.code_size + self.data_size + self.stack_size
    }
}

/// Where one application landed in FRAM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppPlacement {
    /// Application name.
    pub name: String,
    /// Index of the app in the build (0 = lowest addresses).
    pub index: usize,
    /// The app's code region `[C_i, D_i)` (execute-only while the app runs).
    pub code: AddrRange,
    /// The app's stack region (bottom part of the data/stack segment; grows
    /// downward toward the code region).
    pub stack: AddrRange,
    /// Bytes consumed for this app (from the previous app's end up to
    /// `T_i`, so a leading gap forced by base alignment counts too) that
    /// back none of the requested code, stack or data — pure
    /// alignment/size-rounding waste the platform's region constraints
    /// forced (coarse boundary granularity on segmented parts,
    /// power-of-two size rounding on NAPOT parts).  The planner measures
    /// this so every report can account for the memory cost of a
    /// backend's size rule, not just its cycle cost.
    pub padding_bytes: u32,
    /// The app's global-data region (top part of the data/stack segment).
    pub data: AddrRange,
}

impl AppPlacement {
    /// `C_i`: the lowest address belonging to this app; function pointers
    /// below this value are rejected.
    pub fn code_lower_bound(&self) -> Addr {
        self.code.start
    }

    /// `D_i`: the start of the app's data/stack segment; data pointers below
    /// this value are rejected by the compiler-inserted lower-bound check.
    pub fn data_lower_bound(&self) -> Addr {
        self.stack.start
    }

    /// `T_i`: one past the app's highest address; data pointers at or above
    /// this value are rejected by the Software Only upper-bound check (and by
    /// the MPU under the MPU method).
    pub fn upper_bound(&self) -> Addr {
        self.data.end
    }

    /// The combined data/stack segment `[D_i, T_i)` (MPU segment 2 while the
    /// app runs).
    pub fn data_stack(&self) -> AddrRange {
        AddrRange::new(self.data_lower_bound(), self.upper_bound())
    }

    /// The whole footprint of the app, `[C_i, T_i)`.
    pub fn footprint(&self) -> AddrRange {
        AddrRange::new(self.code_lower_bound(), self.upper_bound())
    }

    /// Initial stack pointer for this app: the top of the stack region
    /// (stacks grow downward, and the top of the stack sits just below the
    /// app's data, as §3 of the paper specifies).
    pub fn initial_stack_pointer(&self) -> Addr {
        self.stack.end
    }
}

/// The complete memory map produced by the planner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoryMap {
    /// Platform the map was planned for.
    pub platform: PlatformSpec,
    /// OS code region in low FRAM.
    pub os_code: AddrRange,
    /// OS data region in low FRAM, directly above the OS code.
    pub os_data: AddrRange,
    /// OS stack in SRAM.
    pub os_stack: AddrRange,
    /// Application placements, ordered by increasing address.
    pub apps: Vec<AppPlacement>,
}

impl MemoryMap {
    /// Returns the placement of the named application, if present.
    pub fn app(&self, name: &str) -> Option<&AppPlacement> {
        self.apps.iter().find(|a| a.name == name)
    }

    /// Returns the placement of the application that owns `addr`, if any.
    pub fn app_owning(&self, addr: Addr) -> Option<&AppPlacement> {
        self.apps.iter().find(|a| a.footprint().contains(addr))
    }

    /// The start of the application area in high FRAM (everything below this
    /// belongs to the OS).
    pub fn apps_base(&self) -> Addr {
        self.apps
            .first()
            .map(|a| a.code.start)
            .unwrap_or(self.os_data.end)
    }

    /// The end of the application area (one past the last app's top bound).
    pub fn apps_end(&self) -> Addr {
        self.apps
            .last()
            .map(|a| a.upper_bound())
            .unwrap_or(self.os_data.end)
    }

    /// Initial OS stack pointer (top of the SRAM stack region).
    pub fn os_initial_stack_pointer(&self) -> Addr {
        self.os_stack.end
    }

    /// Total alignment/size-rounding waste across every app placement, in
    /// bytes (the sum of [`AppPlacement::padding_bytes`]).  Reports use
    /// this to compare how efficiently different region constraints pack
    /// the same build — NAPOT's power-of-two rounding is the extreme case.
    pub fn total_padding_bytes(&self) -> u32 {
        self.apps.iter().map(|a| a.padding_bytes).sum()
    }

    /// Consistency check: regions must not overlap, must stay inside their
    /// parent regions, and every app's bounds must be expressible under
    /// the platform's MPU constraints — boundary granularity on segmented
    /// parts, the full base/size rule (including NAPOT power-of-two
    /// sizing) on region parts.
    pub fn validate(&self) -> CoreResult<()> {
        let g = self.platform.mpu_boundary_granularity();
        if !self.platform.fram.contains_range(&self.os_code)
            || !self.platform.fram.contains_range(&self.os_data)
        {
            return Err(CoreError::OsImageTooLarge {
                required: self.os_code.len() + self.os_data.len(),
                available: self.platform.fram.len(),
            });
        }
        if !self.platform.sram.contains_range(&self.os_stack) {
            return Err(CoreError::OsStackTooLarge {
                required: self.os_stack.len(),
                available: self.platform.sram.len(),
            });
        }
        let mut prev_end = self.os_data.end;
        for app in &self.apps {
            let fp = app.footprint();
            if fp.start < prev_end {
                return Err(CoreError::AppImageInvalid {
                    app: app.name.clone(),
                    reason: format!("footprint {fp:?} overlaps the region below it"),
                });
            }
            if !self.platform.fram.contains_range(&fp) {
                return Err(CoreError::AppsDoNotFit {
                    required: self.apps_end() - self.apps_base(),
                    available: self.platform.fram.end - self.apps_base(),
                });
            }
            if app.data_lower_bound() % g != 0 {
                return Err(CoreError::UnalignedMpuBoundary {
                    addr: app.data_lower_bound(),
                    granularity: g,
                });
            }
            if app.upper_bound() % g != 0 && app.upper_bound() != self.platform.fram.end {
                return Err(CoreError::UnalignedMpuBoundary {
                    addr: app.upper_bound(),
                    granularity: g,
                });
            }
            if let Some(c) = self.platform.mpu.constraints() {
                // Region hardware brackets the app with two regions (code
                // and data/stack); both must satisfy the backend's full
                // base/size rule, not just the minimum alignment.
                for (what, range) in [("code", app.code), ("data/stack", app.data_stack())] {
                    if !c.size_rule.is_valid_region(&range) {
                        return Err(CoreError::AppImageInvalid {
                            app: app.name.clone(),
                            reason: format!(
                                "{what} region {range:?} violates the region size rule ({})",
                                c.size_rule
                            ),
                        });
                    }
                }
            }
            if app.stack.end != app.data.start {
                return Err(CoreError::AppImageInvalid {
                    app: app.name.clone(),
                    reason: "stack must sit directly below the app's data".into(),
                });
            }
            prev_end = fp.end;
        }
        Ok(())
    }
}

impl fmt::Display for MemoryMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Memory map (Figure 1 layout)")?;
        writeln!(f, "  OS stack (SRAM):   {}", self.os_stack)?;
        writeln!(f, "  OS code (FRAM):    {}", self.os_code)?;
        writeln!(f, "  OS data (FRAM):    {}", self.os_data)?;
        for app in &self.apps {
            writeln!(
                f,
                "  app {:<14} code {}  stack {}  data {}",
                app.name, app.code, app.stack, app.data
            )?;
        }
        Ok(())
    }
}

/// Plans Figure-1 memory maps.
#[derive(Clone, Debug)]
pub struct MemoryMapPlanner {
    platform: PlatformSpec,
}

impl MemoryMapPlanner {
    /// Creates a planner for the given platform.
    pub fn new(platform: PlatformSpec) -> CoreResult<Self> {
        platform.validate()?;
        Ok(MemoryMapPlanner { platform })
    }

    /// Creates a planner for any [`Platform`] (profile type or spec).
    pub fn for_platform(platform: &impl Platform) -> CoreResult<Self> {
        Self::new(platform.spec())
    }

    /// Creates a planner for the default MSP430FR5969 platform.
    pub fn msp430fr5969() -> Self {
        Self::new(PlatformSpec::msp430fr5969()).expect("builtin platform spec is valid")
    }

    /// The platform this planner targets.
    pub fn platform(&self) -> &PlatformSpec {
        &self.platform
    }

    /// Produces a memory map placing the OS and the given applications.
    ///
    /// Applications are placed in the order given, from low to high FRAM
    /// addresses, with each app's bounds solved against the platform's MPU
    /// constraints:
    ///
    /// * on segmented and aligned-region hardware, `D_i` and `T_i` land on
    ///   the boundary granularity / region alignment (the Figure-1 rule);
    /// * on NAPOT hardware, the code region `[C_i, D_i)` and the
    ///   data/stack region `[D_i, T_i)` are each rounded up to a
    ///   power-of-two span and placed size-aligned, and the rounding waste
    ///   is recorded in [`AppPlacement::padding_bytes`].
    pub fn plan(&self, os: &OsImageSpec, apps: &[AppImageSpec]) -> CoreResult<MemoryMap> {
        let g = self.platform.mpu_boundary_granularity();

        // Reject duplicate app names up front: bounds are keyed by name in
        // the AFT's final patch phase.
        let mut seen = HashSet::new();
        for app in apps {
            if !seen.insert(app.name.as_str()) {
                return Err(CoreError::DuplicateApp(app.name.clone()));
            }
            if app.code_size == 0 {
                return Err(CoreError::AppImageInvalid {
                    app: app.name.clone(),
                    reason: "code size must be non-zero".into(),
                });
            }
            if app.stack_size == 0 {
                return Err(CoreError::AppImageInvalid {
                    app: app.name.clone(),
                    reason: "stack size must be non-zero".into(),
                });
            }
        }

        // OS stack at the top of SRAM.
        if os.stack_size > self.platform.sram.len() {
            return Err(CoreError::OsStackTooLarge {
                required: os.stack_size,
                available: self.platform.sram.len(),
            });
        }
        let os_stack = AddrRange::new(
            self.platform.sram.end - os.stack_size,
            self.platform.sram.end,
        );

        // OS code then OS data at the bottom of FRAM (word aligned).
        let os_code_start = self.platform.fram.start;
        let os_code = AddrRange::from_len(os_code_start, align_up(os.code_size.max(2), 2));
        let os_data = AddrRange::from_len(os_code.end, align_up(os.data_size.max(2), 2));
        if os_data.end > self.platform.fram.end {
            return Err(CoreError::OsImageTooLarge {
                required: os.code_size + os.data_size,
                available: self.platform.fram.len(),
            });
        }

        // Applications, grouped per app, in high FRAM.  The NAPOT solver
        // (see `place_napot`) only kicks in for NAPOT constraints; every
        // other backend reduces to the AnyAligned rule, whose placement is
        // byte-identical to the original Figure-1 arithmetic.
        let napot = match self.platform.mpu.constraints().map(|c| c.size_rule) {
            Some(rule @ SizeRule::NapotPow2 { .. }) => Some(rule),
            _ => None,
        };
        let mut placements = Vec::with_capacity(apps.len());
        let mut cursor = align_up(os_data.end, g);
        for (index, app) in apps.iter().enumerate() {
            // Compute every bound in plain integers first so an oversized
            // build is reported as `AppsDoNotFit` instead of panicking while
            // constructing an out-of-space range.
            let does_not_fit = || {
                let required: u32 = apps.iter().map(|a| a.total_size()).sum();
                CoreError::AppsDoNotFit {
                    required,
                    available: self.platform.fram.end - align_up(os_data.end, g),
                }
            };
            let stack_bytes = align_up(app.stack_size, 2);
            let data_bytes = align_up(app.data_size.max(2), 2);
            let (code_start, data_lower, upper) = match napot {
                Some(rule) => {
                    Self::place_napot(rule, cursor, app.code_size, stack_bytes, data_bytes)
                        .ok_or_else(does_not_fit)?
                }
                None => {
                    let code_start = cursor;
                    let code_end_unaligned = code_start
                        .checked_add(app.code_size)
                        .ok_or_else(does_not_fit)?;
                    // D_i must land on an MPU boundary.
                    let data_lower = align_up(code_end_unaligned, g);
                    let data_end = data_lower
                        .checked_add(stack_bytes)
                        .and_then(|s| s.checked_add(data_bytes))
                        .ok_or_else(does_not_fit)?;
                    // T_i must land on an MPU boundary too.
                    (code_start, data_lower, align_up(data_end, g))
                }
            };
            if upper > self.platform.fram.end {
                return Err(does_not_fit());
            }
            let stack_end = data_lower + stack_bytes;
            let stack = AddrRange::new(data_lower, stack_end);
            // Pad the data region up to the solved upper bound so the whole
            // segment is owned by the app (the linker places nothing there).
            let data = AddrRange::new(stack_end, upper);
            // Waste is measured from the previous app's end, so a leading
            // gap forced by NAPOT base alignment is charged to the app
            // that needed it.
            let consumed = upper - cursor;
            placements.push(AppPlacement {
                name: app.name.clone(),
                index,
                code: AddrRange::new(code_start, data_lower),
                stack,
                data,
                padding_bytes: consumed - app.code_size - stack_bytes - data_bytes,
            });
            cursor = upper;
        }

        let map = MemoryMap {
            platform: self.platform.clone(),
            os_code,
            os_data,
            os_stack,
            apps: placements,
        };
        map.validate()?;
        Ok(map)
    }

    /// Solves one app's bounds under a NAPOT size rule, returning
    /// `(C_i, D_i, T_i)` — or `None` on arithmetic overflow (the caller
    /// reports it as an oversized build).
    ///
    /// Both hardware regions are rounded up to power-of-two spans
    /// (`code_span` covers the code, `data_span` covers stack + data) and
    /// must each be aligned to their own size.  Because the two spans are
    /// powers of two, aligning the shared boundary `D_i` to the *larger*
    /// span aligns it to both: `C_i = D_i − code_span` is then
    /// automatically `code_span`-aligned, and `T_i = D_i + data_span` is
    /// `data_span`-aligned.  The solver therefore places
    /// `D_i = align_up(cursor + code_span, max(code_span, data_span))`,
    /// which is the lowest boundary with `C_i ≥ cursor`.
    fn place_napot(
        rule: SizeRule,
        cursor: Addr,
        code_size: u32,
        stack_bytes: u32,
        data_bytes: u32,
    ) -> Option<(Addr, Addr, Addr)> {
        let code_span = rule.region_span(code_size);
        let data_span = rule.region_span(stack_bytes.checked_add(data_bytes)?);
        let align = code_span.max(data_span);
        let data_lower = cursor.checked_add(code_span)?.checked_add(align - 1)? / align * align;
        let upper = data_lower.checked_add(data_span)?;
        Some((data_lower - code_span, data_lower, upper))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_apps() -> Vec<AppImageSpec> {
        vec![
            AppImageSpec::new("HeartRate", 0x900, 0x200, 0x100),
            AppImageSpec::new("Pedometer", 0x1200, 0x400, 0x180),
            AppImageSpec::new("Clock", 0x600, 0x100, 0x80),
        ]
    }

    #[test]
    fn plans_the_figure1_layout() {
        let planner = MemoryMapPlanner::msp430fr5969();
        let map = planner
            .plan(&OsImageSpec::default(), &three_apps())
            .unwrap();
        assert!(map.validate().is_ok());

        // OS stack in SRAM, OS image in low FRAM.
        assert!(map.platform.sram.contains_range(&map.os_stack));
        assert!(map.platform.fram.contains_range(&map.os_code));
        assert_eq!(map.os_data.start, map.os_code.end);

        // Apps above the OS, in order, code below data/stack.
        let mut prev_end = map.os_data.end;
        for app in &map.apps {
            assert!(app.code.start >= prev_end);
            assert!(app.code.end <= app.stack.start);
            assert_eq!(app.stack.end, app.data.start);
            prev_end = app.upper_bound();
        }
    }

    #[test]
    fn bounds_are_mpu_aligned() {
        let planner = MemoryMapPlanner::msp430fr5969();
        let map = planner
            .plan(&OsImageSpec::default(), &three_apps())
            .unwrap();
        let g = map.platform.mpu_boundary_granularity();
        for app in &map.apps {
            assert_eq!(app.data_lower_bound() % g, 0, "{} D_i unaligned", app.name);
            assert_eq!(app.upper_bound() % g, 0, "{} T_i unaligned", app.name);
        }
    }

    #[test]
    fn stack_sits_below_data_and_grows_toward_code() {
        let planner = MemoryMapPlanner::msp430fr5969();
        let map = planner
            .plan(&OsImageSpec::default(), &three_apps())
            .unwrap();
        for app in &map.apps {
            assert!(app.stack.start < app.data.start);
            assert_eq!(app.initial_stack_pointer(), app.stack.end);
            // Growing down from the initial SP eventually reaches the code
            // segment boundary D_i == stack.start.
            assert_eq!(app.stack.start, app.data_lower_bound());
        }
    }

    #[test]
    fn app_lookup_by_name_and_address() {
        let planner = MemoryMapPlanner::msp430fr5969();
        let map = planner
            .plan(&OsImageSpec::default(), &three_apps())
            .unwrap();
        let ped = map.app("Pedometer").unwrap();
        assert_eq!(map.app_owning(ped.code.start).unwrap().name, "Pedometer");
        assert_eq!(map.app_owning(ped.data.end - 1).unwrap().name, "Pedometer");
        assert!(map.app("NoSuchApp").is_none());
        assert!(map.app_owning(map.os_code.start).is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let planner = MemoryMapPlanner::msp430fr5969();
        let apps = vec![
            AppImageSpec::new("HR", 0x400, 0x100, 0x80),
            AppImageSpec::new("HR", 0x400, 0x100, 0x80),
        ];
        assert_eq!(
            planner.plan(&OsImageSpec::default(), &apps),
            Err(CoreError::DuplicateApp("HR".into()))
        );
    }

    #[test]
    fn oversized_build_is_rejected() {
        let planner = MemoryMapPlanner::msp430fr5969();
        let apps = vec![
            AppImageSpec::new("Big1", 0x8000, 0x2000, 0x400),
            AppImageSpec::new("Big2", 0x8000, 0x2000, 0x400),
            AppImageSpec::new("Big3", 0x8000, 0x2000, 0x400),
        ];
        match planner.plan(&OsImageSpec::default(), &apps) {
            Err(CoreError::AppsDoNotFit { .. }) => {}
            other => panic!("expected AppsDoNotFit, got {other:?}"),
        }
    }

    #[test]
    fn oversized_os_stack_is_rejected() {
        let planner = MemoryMapPlanner::msp430fr5969();
        let os = OsImageSpec {
            stack_size: 0x10000,
            ..OsImageSpec::default()
        };
        match planner.plan(&os, &three_apps()) {
            Err(CoreError::OsStackTooLarge { .. }) => {}
            other => panic!("expected OsStackTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn zero_sized_code_or_stack_rejected() {
        let planner = MemoryMapPlanner::msp430fr5969();
        let apps = vec![AppImageSpec::new("Empty", 0, 0x10, 0x40)];
        assert!(matches!(
            planner.plan(&OsImageSpec::default(), &apps),
            Err(CoreError::AppImageInvalid { .. })
        ));
        let apps = vec![AppImageSpec::new("NoStack", 0x40, 0x10, 0)];
        assert!(matches!(
            planner.plan(&OsImageSpec::default(), &apps),
            Err(CoreError::AppImageInvalid { .. })
        ));
    }

    #[test]
    fn empty_app_list_is_fine() {
        let planner = MemoryMapPlanner::msp430fr5969();
        let map = planner.plan(&OsImageSpec::default(), &[]).unwrap();
        assert!(map.apps.is_empty());
        assert_eq!(map.apps_base(), map.os_data.end);
        assert_eq!(map.apps_end(), map.os_data.end);
    }

    #[test]
    fn display_renders_every_app() {
        let planner = MemoryMapPlanner::msp430fr5969();
        let map = planner
            .plan(&OsImageSpec::default(), &three_apps())
            .unwrap();
        let s = map.to_string();
        for app in ["HeartRate", "Pedometer", "Clock"] {
            assert!(s.contains(app));
        }
    }

    #[test]
    fn platform_validation_catches_overlaps() {
        let mut p = PlatformSpec::msp430fr5969();
        p.sram = AddrRange::new(0x1800, 0x2400); // overlaps info_mem
        assert!(matches!(p.validate(), Err(CoreError::InvalidPlatform(_))));
    }

    #[test]
    fn advanced_mpu_platform_has_four_segments() {
        let p = PlatformSpec::msp430fr5969_advanced_mpu();
        assert_eq!(p.mpu_main_segments(), 4);
        assert!(p.validate().is_ok());
    }
}
