//! # amulet-core
//!
//! Core abstractions for the Amulet memory-isolation reproduction
//! ("Application Memory Isolation on Ultra-Low-Power MCUs", USENIX ATC 2018).
//!
//! This crate contains everything that is *policy*: which isolation methods
//! exist, which run-time checks each method requires the compiler to insert,
//! how the MPU must be programmed while an application or the OS is running,
//! how application images are laid out in FRAM, what a context switch costs,
//! and the analytic overhead / energy model used by the Amulet Resource
//! Profiler.
//!
//! The *mechanisms* live in the sibling crates: `amulet-mcu` simulates the
//! MSP430FR5969-class hardware, `amulet-aft` is the compiler that actually
//! inserts the checks this crate describes, and `amulet-os` performs the
//! context switches this crate plans.
//!
//! ## Quick tour
//!
//! * [`method::IsolationMethod`] — the four memory models compared in the
//!   paper (No Isolation, Feature Limited, Software Only, MPU).
//! * [`checks::CheckPolicy`] — which compare-and-branch checks the toolchain
//!   inserts for a given method.
//! * [`layout::MemoryMapPlanner`] — places the OS and every application into
//!   the Figure-1 memory map and derives each app's bounds `C_i`/`D_i`.
//! * [`mpu_plan`] — MPU segment boundaries and permissions for "app *i*
//!   running" and "OS running".
//! * [`switch::ContextSwitchPlan`] — the steps (and cycle cost) of an
//!   OS↔app transition under each method.
//! * [`overhead::OverheadModel`] — per-operation overhead cycles, the model
//!   behind Figure 2.
//! * [`energy`] — cycles → Joules → battery-lifetime impact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod checks;
pub mod energy;
pub mod error;
pub mod fault;
pub mod layout;
pub mod method;
pub mod mpu_plan;
pub mod overhead;
pub mod perm;
pub mod platform;
pub mod serial;
pub mod switch;

pub use addr::{Addr, AddrRange};
pub use checks::{CheckKind, CheckPolicy};
pub use energy::{BatteryModel, EnergyModel};
pub use error::{CoreError, CoreResult};
pub use fault::FaultClass;
pub use layout::{AppImageSpec, AppPlacement, MemoryMap, MemoryMapPlanner, PlatformSpec};
pub use method::IsolationMethod;
pub use mpu_plan::{
    MpuConfig, MpuPlan, MpuSegmentPlan, PmpRegisterValues, RegionDesc, RegionRegisterValues,
    SegmentRole,
};
pub use overhead::{OpCounts, OverheadBreakdown, OverheadModel};
pub use perm::Perm;
pub use platform::{
    builtin_platforms, CortexM33, CycleCostTable, MpuModel, Msp430Fr5969, Msp430Fr5969AdvancedMpu,
    Msp430Fr5994, Platform, RegionConstraints, RiscvPmp, SizeRule,
};
pub use serial::{fnv1a64, Codec, DecodeError};
pub use switch::{ContextSwitchPlan, SwitchDirection, SwitchStep};
