//! The four memory models compared by the paper.

use std::fmt;

/// One of the four memory-isolation methods evaluated in the paper.
///
/// The ordering used throughout the benches matches Table 1's column order:
/// `NoIsolation`, `FeatureLimited`, `Mpu`, `SoftwareOnly`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum IsolationMethod {
    /// Baseline: applications run with no isolation whatsoever.  Used only to
    /// measure the cost of the other methods against.
    NoIsolation,
    /// The native Amulet approach: the application language is restricted
    /// (no pointers, no recursion, no `goto`, no inline assembly) and the
    /// compiler inserts bounds checks around every array access.
    FeatureLimited,
    /// The paper's contribution: the MPU is configured per application so
    /// that accesses *above* the app's region fault in hardware, and the
    /// compiler inserts only the *lower*-bound check the MPU cannot express.
    /// The MPU must be reconfigured (and the stack pointer switched) on every
    /// context switch.
    Mpu,
    /// Full software isolation: pointers and recursion are allowed and the
    /// compiler inserts both a lower- and an upper-bound check before every
    /// pointer dereference; the MPU is left unused.
    SoftwareOnly,
}

impl IsolationMethod {
    /// All four methods in the paper's Table-1 column order.
    pub const ALL: [IsolationMethod; 4] = [
        IsolationMethod::NoIsolation,
        IsolationMethod::FeatureLimited,
        IsolationMethod::Mpu,
        IsolationMethod::SoftwareOnly,
    ];

    /// The three methods that actually provide isolation (everything but the
    /// baseline), in the order used by Figure 2 and Figure 3.
    pub const ISOLATING: [IsolationMethod; 3] = [
        IsolationMethod::FeatureLimited,
        IsolationMethod::Mpu,
        IsolationMethod::SoftwareOnly,
    ];

    /// Whether this method permits application code to use C pointers
    /// (including function pointers).
    pub fn allows_pointers(&self) -> bool {
        !matches!(self, IsolationMethod::FeatureLimited)
    }

    /// Whether this method permits recursive application code.
    ///
    /// Recursion is rejected by the Feature Limited front end; the other
    /// methods allow it but then cannot statically bound the stack, as noted
    /// in the paper's AFT description.
    pub fn allows_recursion(&self) -> bool {
        !matches!(self, IsolationMethod::FeatureLimited)
    }

    /// Whether the MPU hardware is used while apps run under this method.
    pub fn uses_mpu(&self) -> bool {
        matches!(self, IsolationMethod::Mpu)
    }

    /// Whether the compiler inserts any run-time checks for this method.
    pub fn inserts_checks(&self) -> bool {
        !matches!(self, IsolationMethod::NoIsolation)
    }

    /// Whether the method gives each application its own stack region
    /// (requiring the stack pointer to be switched on every OS↔app
    /// transition).  The original Amulet design shares a single stack.
    pub fn uses_per_app_stacks(&self) -> bool {
        matches!(self, IsolationMethod::Mpu | IsolationMethod::SoftwareOnly)
    }

    /// Whether this method guarantees that an app cannot read or write
    /// memory outside its own region (the paper's memory-isolation property).
    pub fn provides_isolation(&self) -> bool {
        !matches!(self, IsolationMethod::NoIsolation)
    }

    /// Short human-readable name as used in the paper's tables and figures.
    pub fn label(&self) -> &'static str {
        match self {
            IsolationMethod::NoIsolation => "No Isolation",
            IsolationMethod::FeatureLimited => "Feature Limited",
            IsolationMethod::Mpu => "MPU",
            IsolationMethod::SoftwareOnly => "Software Only",
        }
    }
}

impl fmt::Display for IsolationMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_column_order() {
        assert_eq!(
            IsolationMethod::ALL,
            [
                IsolationMethod::NoIsolation,
                IsolationMethod::FeatureLimited,
                IsolationMethod::Mpu,
                IsolationMethod::SoftwareOnly
            ]
        );
    }

    #[test]
    fn feature_limited_is_the_only_restricted_language() {
        for m in IsolationMethod::ALL {
            assert_eq!(m.allows_pointers(), m != IsolationMethod::FeatureLimited);
            assert_eq!(m.allows_recursion(), m != IsolationMethod::FeatureLimited);
        }
    }

    #[test]
    fn only_mpu_method_uses_mpu() {
        assert!(IsolationMethod::Mpu.uses_mpu());
        assert!(!IsolationMethod::SoftwareOnly.uses_mpu());
        assert!(!IsolationMethod::FeatureLimited.uses_mpu());
        assert!(!IsolationMethod::NoIsolation.uses_mpu());
    }

    #[test]
    fn isolation_guarantee() {
        assert!(!IsolationMethod::NoIsolation.provides_isolation());
        for m in IsolationMethod::ISOLATING {
            assert!(m.provides_isolation());
        }
    }

    #[test]
    fn per_app_stacks_only_for_pointer_enabled_methods() {
        assert!(IsolationMethod::Mpu.uses_per_app_stacks());
        assert!(IsolationMethod::SoftwareOnly.uses_per_app_stacks());
        assert!(!IsolationMethod::FeatureLimited.uses_per_app_stacks());
        assert!(!IsolationMethod::NoIsolation.uses_per_app_stacks());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(IsolationMethod::Mpu.to_string(), "MPU");
        assert_eq!(IsolationMethod::SoftwareOnly.to_string(), "Software Only");
        assert_eq!(
            IsolationMethod::FeatureLimited.to_string(),
            "Feature Limited"
        );
        assert_eq!(IsolationMethod::NoIsolation.to_string(), "No Isolation");
    }
}
