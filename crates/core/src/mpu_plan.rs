//! MPU configurations for "app *i* running" and "OS running".
//!
//! The MSP430FR5969 MPU divides main FRAM into three segments using two
//! movable boundaries (plus a fourth segment pinned to InfoMem), and each
//! segment carries read/write/execute bits.  While application *i* runs the
//! paper programs it as (Figure 1):
//!
//! | segment | contents                                   | access |
//! |---------|--------------------------------------------|--------|
//! | 0       | InfoMem (unused)                           | `---`  |
//! | 1       | OS, lower-memory apps, app *i*'s code      | `--X`  |
//! | 2       | app *i*'s data and stack                   | `RW-`  |
//! | 3       | higher-memory apps                         | `---`  |
//!
//! and while the OS runs:
//!
//! | segment | contents                       | access |
//! |---------|--------------------------------|--------|
//! | 0       | InfoMem (unused)               | `---`  |
//! | 1       | OS code                        | `--X`  |
//! | 2       | OS data (and vectors)          | `RW-`  |
//! | 3       | applications                   | `RW-`  |
//!
//! [`MpuPlan`] captures those configurations abstractly;
//! [`MpuRegisterValues`] encodes them into the MSP430-style memory-mapped
//! registers that the OS's MPU driver writes on every context switch.

use crate::addr::{align_down, Addr, AddrRange};
use crate::error::{CoreError, CoreResult};
use crate::layout::MemoryMap;
use crate::perm::Perm;
use std::fmt;

/// What a planned MPU segment is protecting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SegmentRole {
    /// The pinned InfoMem segment (segment 0), unused by the paper's design.
    InfoMem,
    /// Everything below the running app's data: OS image, lower apps, and the
    /// running app's own code (execute-only).
    BelowAppData,
    /// The running app's data/stack segment (read-write).
    AppDataStack,
    /// Apps above the running app (no access).
    AboveApp,
    /// OS code while the OS runs (execute-only).
    OsCode,
    /// OS data while the OS runs (read-write).
    OsData,
    /// The whole application area while the OS runs (read-write so the OS can
    /// deliver events and copy buffers).
    AppsRegion,
    /// The running app's code segment in the "advanced MPU" ablation, where a
    /// fourth segment lets hardware bound the app from below as well.
    AppCode,
    /// Memory below the running app in the "advanced MPU" ablation
    /// (no access).
    BelowAppBlocked,
    /// SRAM (the OS stack) while the OS runs — only region MPUs police
    /// SRAM, which is what makes their no-software-lower-check policy
    /// sound.
    OsSram,
    /// The memory-mapped peripheral space while the OS runs — present only
    /// on backends whose jurisdiction covers peripherals (the OS must keep
    /// its own access to the register files it drives).
    OsPeripherals,
}

/// Whose execution a plan is for.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MpuContext {
    /// The OS (scheduler, services, drivers) is running.
    OsRunning,
    /// The named application (at the given build index) is running.
    AppRunning {
        /// Application name.
        name: String,
        /// Application index in the build.
        index: usize,
    },
}

/// One planned MPU segment: an address range, its permissions, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MpuSegmentPlan {
    /// Hardware segment index (0 = InfoMem).
    pub index: usize,
    /// Address range covered by the segment.
    pub range: AddrRange,
    /// Permissions granted to code running while this plan is active.
    pub perm: Perm,
    /// What the segment is protecting.
    pub role: SegmentRole,
}

/// A full MPU configuration: every segment plus the two movable boundaries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MpuPlan {
    /// Whose execution this configuration is for.
    pub context: MpuContext,
    /// All segments, ordered by hardware index.
    pub segments: Vec<MpuSegmentPlan>,
    /// First movable boundary (between main segments 1 and 2).
    pub boundary1: Addr,
    /// Second movable boundary (between main segments 2 and 3).
    pub boundary2: Addr,
}

/// Values for the MSP430-style memory-mapped MPU registers.
///
/// Encodings follow the FR5969 conventions: boundary registers hold the
/// address divided by 16, `MPUSAM` packs R/W/X bits per segment in nibbles,
/// and `MPUCTL0` carries the enable bit and must be written together with the
/// `0xA5xx` password.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MpuRegisterValues {
    /// `MPUCTL0`: password (high byte `0xA5`) | enable (bit 0) | lock (bit 1).
    pub mpuctl0: u16,
    /// `MPUSEGB1`: first boundary address >> 4.
    pub mpusegb1: u16,
    /// `MPUSEGB2`: second boundary address >> 4.
    pub mpusegb2: u16,
    /// `MPUSAM`: access bits, segment 1 in bits 0..3, segment 2 in bits
    /// 4..7, segment 3 in bits 8..11, InfoMem in bits 12..15.
    pub mpusam: u16,
}

impl MpuRegisterValues {
    /// Number of peripheral-register writes the OS performs to install this
    /// configuration during a context switch (boundaries, access bits, then
    /// control/enable).  This count is what makes the MPU method's context
    /// switch more expensive in Table 1.
    pub const WRITE_COUNT: u32 = 4;
}

/// One region of a region-based (Tock/Cortex-M-style) MPU configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionDesc {
    /// Address range the region covers.
    pub range: AddrRange,
    /// Permissions the region grants.
    pub perm: Perm,
}

/// Values for a region-based MPU's register file: the regions to program
/// (each costing a select + base + limit/attribute write) plus the control
/// word.  Regions not listed are disabled, and — unlike the segmented part —
/// accesses within the MPU's jurisdiction that no region grants are denied.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RegionRegisterValues {
    /// Regions to program, in slot order starting at slot 0.
    pub regions: Vec<RegionDesc>,
}

impl RegionRegisterValues {
    /// Register writes per region of the RNR/RBAR/RLAR interface both
    /// aligned-region backends share: select the slot, write its base,
    /// write its limit/attribute word.
    pub const WRITES_PER_REGION: u32 = 3;

    /// Number of peripheral-register writes needed to install this
    /// configuration (select/base/limit per region, then the control word).
    pub fn write_count(&self) -> u32 {
        self.regions.len() as u32 * Self::WRITES_PER_REGION + 1
    }
}

/// Values for a RISC-V-PMP-style register file: NAPOT entries (each one
/// `pmpaddr` CSR write; their R/W/X+enable nibbles pack four to a `pmpcfg`
/// word, and a switch rewrites the register file's **both** `pmpcfg`
/// words so stale entries from a wider previous configuration are always
/// disabled) plus the privilege-mode toggle.  `user_mode == false` is the
/// machine-mode configuration the OS runs under — the PMP does not
/// constrain machine mode, so installing it is the mode toggle alone.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct PmpRegisterValues {
    /// NAPOT entries to program, in entry order starting at entry 0.  Every
    /// range must be NAPOT-valid (power-of-two length, length-aligned
    /// base) for the `pmpaddr` encoding to round-trip.
    pub entries: Vec<RegionDesc>,
    /// Whether the configuration enforces (user mode) or bypasses (machine
    /// mode) the PMP.
    pub user_mode: bool,
}

impl PmpRegisterValues {
    /// `pmpcfg` words the modelled PMP register file packs its eight
    /// entry configs into; a user-mode install rewrites all of them.
    pub const CFG_WORDS: u32 = 2;

    /// Number of register writes needed to install this configuration:
    /// one `pmpaddr` per entry, both packed `pmpcfg` words, and the
    /// privilege-mode toggle — or the mode toggle alone for the
    /// machine-mode configuration.
    pub fn write_count(&self) -> u32 {
        if !self.user_mode {
            return 1;
        }
        self.entries.len() as u32 + Self::CFG_WORDS + 1
    }
}

/// A full MPU configuration for any hardware shape — what the firmware
/// image carries per app (and for the OS) and what the OS's switch code
/// installs through the bus on every transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpuConfig {
    /// FR5969-style segmented register values.
    Segmented(MpuRegisterValues),
    /// Aligned-region (RNR/RBAR/RLAR) register values.
    Region(RegionRegisterValues),
    /// RISC-V-PMP-style NAPOT register values.
    Pmp(PmpRegisterValues),
}

impl MpuConfig {
    /// Number of peripheral-register writes installing this configuration
    /// costs.
    pub fn write_count(&self) -> u32 {
        match self {
            MpuConfig::Segmented(_) => MpuRegisterValues::WRITE_COUNT,
            MpuConfig::Region(r) => r.write_count(),
            MpuConfig::Pmp(p) => p.write_count(),
        }
    }
}

impl MpuPlan {
    /// Builds the Figure-1 configuration for application `app_index` of the
    /// given memory map.
    pub fn for_app(map: &MemoryMap, app_index: usize) -> CoreResult<Self> {
        let app = map
            .apps
            .get(app_index)
            .ok_or_else(|| CoreError::AppImageInvalid {
                app: format!("#{app_index}"),
                reason: "no such application in the memory map".into(),
            })?;
        let fram = map.platform.fram;
        let g = map.platform.mpu_boundary_granularity();
        let b1 = app.data_lower_bound();
        let b2 = app.upper_bound();
        for b in [b1, b2] {
            if b % g != 0 && b != fram.end {
                return Err(CoreError::UnalignedMpuBoundary {
                    addr: b,
                    granularity: g,
                });
            }
        }
        let segments = vec![
            MpuSegmentPlan {
                index: 0,
                range: map.platform.info_mem,
                perm: Perm::NONE,
                role: SegmentRole::InfoMem,
            },
            MpuSegmentPlan {
                index: 1,
                range: AddrRange::new(fram.start, b1),
                perm: Perm::X,
                role: SegmentRole::BelowAppData,
            },
            MpuSegmentPlan {
                index: 2,
                range: AddrRange::new(b1, b2),
                perm: Perm::RW,
                role: SegmentRole::AppDataStack,
            },
            MpuSegmentPlan {
                index: 3,
                range: AddrRange::new(b2, fram.end),
                perm: Perm::NONE,
                role: SegmentRole::AboveApp,
            },
        ];
        Ok(MpuPlan {
            context: MpuContext::AppRunning {
                name: app.name.clone(),
                index: app_index,
            },
            segments,
            boundary1: b1,
            boundary2: b2,
        })
    }

    /// Builds the configuration used while the OS itself runs.
    ///
    /// The boundary between OS code and OS data is rounded *down* to the MPU
    /// granularity so that every byte of OS data is writable; the tail of the
    /// OS code region that falls into the read-write segment is harmless
    /// because the OS is trusted.
    pub fn for_os(map: &MemoryMap) -> CoreResult<Self> {
        let fram = map.platform.fram;
        let g = map.platform.mpu_boundary_granularity();
        let b1 = align_down(map.os_code.end, g).max(fram.start);
        let b2 = map.apps_base();
        if !b2.is_multiple_of(g) && b2 != fram.end {
            return Err(CoreError::UnalignedMpuBoundary {
                addr: b2,
                granularity: g,
            });
        }
        let segments = vec![
            MpuSegmentPlan {
                index: 0,
                range: map.platform.info_mem,
                perm: Perm::NONE,
                role: SegmentRole::InfoMem,
            },
            MpuSegmentPlan {
                index: 1,
                range: AddrRange::new(fram.start, b1),
                perm: Perm::X,
                role: SegmentRole::OsCode,
            },
            MpuSegmentPlan {
                index: 2,
                range: AddrRange::new(b1, b2),
                perm: Perm::RW,
                role: SegmentRole::OsData,
            },
            MpuSegmentPlan {
                index: 3,
                range: AddrRange::new(b2, fram.end),
                perm: Perm::RW,
                role: SegmentRole::AppsRegion,
            },
        ];
        Ok(MpuPlan {
            context: MpuContext::OsRunning,
            segments,
            boundary1: b1,
            boundary2: b2,
        })
    }

    /// Builds the "advanced MPU" ablation configuration for an app: four
    /// segments that also block the region below the app's code, removing the
    /// need for any compiler-inserted lower-bound checks (§5 of the paper).
    pub fn for_app_advanced(map: &MemoryMap, app_index: usize) -> CoreResult<Self> {
        if map.platform.mpu_main_segments() < 4 {
            return Err(CoreError::TooManySegments {
                required: 4,
                available: map.platform.mpu_main_segments(),
            });
        }
        let app = map
            .apps
            .get(app_index)
            .ok_or_else(|| CoreError::AppImageInvalid {
                app: format!("#{app_index}"),
                reason: "no such application in the memory map".into(),
            })?;
        let fram = map.platform.fram;
        let segments = vec![
            MpuSegmentPlan {
                index: 0,
                range: map.platform.info_mem,
                perm: Perm::NONE,
                role: SegmentRole::InfoMem,
            },
            MpuSegmentPlan {
                index: 1,
                range: AddrRange::new(fram.start, app.code_lower_bound()),
                perm: Perm::NONE,
                role: SegmentRole::BelowAppBlocked,
            },
            MpuSegmentPlan {
                index: 2,
                range: app.code,
                perm: Perm::X,
                role: SegmentRole::AppCode,
            },
            MpuSegmentPlan {
                index: 3,
                range: app.data_stack(),
                perm: Perm::RW,
                role: SegmentRole::AppDataStack,
            },
            MpuSegmentPlan {
                index: 4,
                range: AddrRange::new(app.upper_bound(), fram.end),
                perm: Perm::NONE,
                role: SegmentRole::AboveApp,
            },
        ];
        Ok(MpuPlan {
            context: MpuContext::AppRunning {
                name: app.name.clone(),
                index: app_index,
            },
            segments,
            boundary1: app.data_lower_bound(),
            boundary2: app.upper_bound(),
        })
    }

    /// Builds the MPU configuration for application `app_index` in whatever
    /// shape the map's platform supports: the Figure-1 segmented plan on
    /// segmented hardware, or a two-region plan (code execute-only,
    /// data/stack read-write, everything else denied by the hardware's full
    /// coverage) on region hardware — NAPOT backends included, since the
    /// planner already solved both regions to power-of-two, size-aligned
    /// spans.
    pub fn for_app_on(map: &MemoryMap, app_index: usize) -> CoreResult<Self> {
        if map.platform.mpu.is_region_based() {
            Self::for_app_region(map, app_index)
        } else {
            Self::for_app(map, app_index)
        }
    }

    /// Builds the OS-running configuration in whatever shape the map's
    /// platform supports: segmented register values, an OS region set
    /// (plus a peripheral region when the backend polices peripheral
    /// space), or — on privileged-bypass (PMP) hardware — the machine-mode
    /// configuration, which programs no regions at all.
    pub fn for_os_on(map: &MemoryMap) -> CoreResult<Self> {
        match map.platform.mpu.constraints() {
            Some(c) if c.privileged_bypass => Ok(Self::for_os_machine_mode()),
            Some(_) => Self::for_os_region(map),
            None => Self::for_os(map),
        }
    }

    /// The OS-running plan on privileged-bypass (RISC-V PMP) hardware:
    /// machine mode is not constrained by the PMP, so the plan carries no
    /// segments — installing it is a single privilege-mode toggle, and
    /// every OS access is outside the (inactive) user-mode jurisdiction.
    pub fn for_os_machine_mode() -> Self {
        MpuPlan {
            context: MpuContext::OsRunning,
            segments: Vec::new(),
            boundary1: 0,
            boundary2: 0,
        }
    }

    /// Builds the region-MPU configuration for a running app: its code
    /// region execute-only and its data/stack region read-write.  The
    /// region hardware denies everything else inside its jurisdiction, so —
    /// unlike the segmented Figure-1 plan — the app is bounded from *below*
    /// as well, and no compiler-inserted data-pointer check is needed.
    pub fn for_app_region(map: &MemoryMap, app_index: usize) -> CoreResult<Self> {
        let app = map
            .apps
            .get(app_index)
            .ok_or_else(|| CoreError::AppImageInvalid {
                app: format!("#{app_index}"),
                reason: "no such application in the memory map".into(),
            })?;
        let g = map.platform.mpu_boundary_granularity();
        let fram = map.platform.fram;
        for b in [app.data_lower_bound(), app.upper_bound()] {
            if b % g != 0 && b != fram.end {
                return Err(CoreError::UnalignedMpuBoundary {
                    addr: b,
                    granularity: g,
                });
            }
        }
        if let Some(c) = map.platform.mpu.constraints() {
            // The backend's full base/size rule (NAPOT hardware rejects
            // anything that is not a size-aligned power of two).
            for range in [app.code, app.data_stack()] {
                if !c.size_rule.is_valid_region(&range) {
                    return Err(CoreError::UnalignedMpuBoundary {
                        addr: range.start,
                        granularity: c.size_rule.min_align(),
                    });
                }
            }
        }
        let segments = vec![
            MpuSegmentPlan {
                index: 0,
                range: app.code,
                perm: Perm::X,
                role: SegmentRole::AppCode,
            },
            MpuSegmentPlan {
                index: 1,
                range: app.data_stack(),
                perm: Perm::RW,
                role: SegmentRole::AppDataStack,
            },
        ];
        Ok(MpuPlan {
            context: MpuContext::AppRunning {
                name: app.name.clone(),
                index: app_index,
            },
            segments,
            boundary1: app.data_lower_bound(),
            boundary2: app.upper_bound(),
        })
    }

    /// Builds the region-MPU configuration used while the OS runs: OS code
    /// execute-only, OS data read-write, SRAM (the OS stack) read-write,
    /// and the whole application area read-write so the OS can deliver
    /// events and copy buffers.  Applications get no SRAM region, so a
    /// wild app pointer aimed at the OS stack faults in hardware — the
    /// protection the FR5969 needs a compiler-inserted check for.
    ///
    /// When the backend's jurisdiction covers peripheral space, a fifth
    /// region grants the OS read-write access to it (the OS drives the
    /// timer and MPU register files through the bus); applications get no
    /// such region, so a wild peripheral access faults in hardware.
    pub fn for_os_region(map: &MemoryMap) -> CoreResult<Self> {
        let fram = map.platform.fram;
        let g = map.platform.mpu_boundary_granularity();
        let b1 = align_down(map.os_code.end, g).max(fram.start);
        let b2 = map.apps_base();
        if !b2.is_multiple_of(g) && b2 != fram.end {
            return Err(CoreError::UnalignedMpuBoundary {
                addr: b2,
                granularity: g,
            });
        }
        let mut segments = vec![
            MpuSegmentPlan {
                index: 0,
                range: AddrRange::new(fram.start, b1),
                perm: Perm::X,
                role: SegmentRole::OsCode,
            },
            MpuSegmentPlan {
                index: 1,
                range: AddrRange::new(b1, b2),
                perm: Perm::RW,
                role: SegmentRole::OsData,
            },
            MpuSegmentPlan {
                index: 2,
                range: map.platform.sram,
                perm: Perm::RW,
                role: SegmentRole::OsSram,
            },
            MpuSegmentPlan {
                index: 3,
                range: AddrRange::new(b2, fram.end),
                perm: Perm::RW,
                role: SegmentRole::AppsRegion,
            },
        ];
        if map.platform.mpu.covers_peripherals() {
            segments.push(MpuSegmentPlan {
                index: 4,
                range: map.platform.peripherals,
                perm: Perm::RW,
                role: SegmentRole::OsPeripherals,
            });
        }
        Ok(MpuPlan {
            context: MpuContext::OsRunning,
            segments,
            boundary1: b1,
            boundary2: b2,
        })
    }

    /// Encodes the plan as a region-MPU register configuration (one region
    /// per planned segment, skipping no-access segments: the hardware's
    /// deny-by-default covers them for free).
    pub fn region_register_values(&self) -> RegionRegisterValues {
        RegionRegisterValues {
            regions: self
                .segments
                .iter()
                .filter(|s| !s.perm.is_none())
                .map(|s| RegionDesc {
                    range: s.range,
                    perm: s.perm,
                })
                .collect(),
        }
    }

    /// Encodes the plan in the register shape `mpu` expects: segmented
    /// register values, RNR/RBAR/RLAR region values, or PMP NAPOT entries
    /// (whose user-mode flag follows the plan's context — the OS-running
    /// plan is machine mode on PMP hardware).
    pub fn config(&self, mpu: &crate::platform::MpuModel) -> MpuConfig {
        if mpu.is_napot() {
            MpuConfig::Pmp(PmpRegisterValues {
                entries: self.region_register_values().regions,
                user_mode: matches!(self.context, MpuContext::AppRunning { .. }),
            })
        } else if mpu.is_region_based() {
            MpuConfig::Region(self.region_register_values())
        } else {
            MpuConfig::Segmented(self.register_values())
        }
    }

    /// The permission this plan grants at `addr`, or `None` if the address is
    /// outside every planned segment (the MPU does not police such addresses
    /// — e.g. SRAM and peripheral registers — which is exactly the hardware
    /// shortcoming the paper works around).
    pub fn permission_at(&self, addr: Addr) -> Option<Perm> {
        self.segments
            .iter()
            .find(|s| s.range.contains(addr))
            .map(|s| s.perm)
    }

    /// Encodes the plan into MSP430-style register values (only meaningful
    /// for 3-main-segment plans; the advanced ablation plan is applied
    /// through the simulator's extended interface instead).
    pub fn register_values(&self) -> MpuRegisterValues {
        let seg_perm = |idx: usize| -> u16 {
            self.segments
                .iter()
                .find(|s| s.index == idx)
                .map(|s| s.perm.to_bits())
                .unwrap_or(0)
        };
        MpuRegisterValues {
            mpuctl0: 0xA500 | 0x0001,
            mpusegb1: (self.boundary1 >> 4) as u16,
            mpusegb2: (self.boundary2 >> 4) as u16,
            mpusam: seg_perm(1) | (seg_perm(2) << 4) | (seg_perm(3) << 8) | (seg_perm(0) << 12),
        }
    }

    /// True when the plan denies every kind of access to `addr`.
    pub fn blocks(&self, addr: Addr) -> bool {
        matches!(self.permission_at(addr), Some(p) if p.is_none())
    }
}

impl fmt::Display for MpuPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.context {
            MpuContext::OsRunning => writeln!(f, "MPU plan (OS running)")?,
            MpuContext::AppRunning { name, index } => {
                writeln!(f, "MPU plan (app {name} / #{index} running)")?
            }
        }
        for seg in &self.segments {
            writeln!(
                f,
                "  MPU{} {:<18} ({}) {:?}",
                seg.index,
                format!("{}", seg.range),
                seg.perm,
                seg.role
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AppImageSpec, MemoryMapPlanner, OsImageSpec};

    fn map() -> MemoryMap {
        MemoryMapPlanner::msp430fr5969()
            .plan(
                &OsImageSpec::default(),
                &[
                    AppImageSpec::new("App1", 0x800, 0x200, 0x100),
                    AppImageSpec::new("App2", 0xA00, 0x300, 0x100),
                    AppImageSpec::new("App3", 0x600, 0x100, 0x80),
                ],
            )
            .unwrap()
    }

    #[test]
    fn app_plan_matches_figure1() {
        let map = map();
        let plan = MpuPlan::for_app(&map, 1).unwrap();
        let app = &map.apps[1];

        // Segment 1 covers everything below the app's data and is X-only.
        assert_eq!(plan.segments[1].perm, Perm::X);
        assert!(plan.segments[1].range.contains(map.os_code.start));
        assert!(plan.segments[1].range.contains(map.apps[0].data.start));
        assert!(plan.segments[1].range.contains(app.code.start));

        // Segment 2 is exactly the app's data/stack and is RW.
        assert_eq!(plan.segments[2].range, app.data_stack());
        assert_eq!(plan.segments[2].perm, Perm::RW);

        // Segment 3 blocks the higher app entirely.
        assert_eq!(plan.segments[3].perm, Perm::NONE);
        assert!(plan.segments[3].range.contains(map.apps[2].code.start));
        assert!(plan.segments[3].range.contains(map.apps[2].data.end - 1));
    }

    #[test]
    fn app_cannot_touch_higher_app_but_mpu_ignores_lower_memory_writes() {
        let map = map();
        let plan = MpuPlan::for_app(&map, 0).unwrap();
        // Above the app: fully blocked.
        assert!(plan.blocks(map.apps[1].data.start));
        // Below the app's data (OS data): execute-only, so a *write* is
        // denied by the MPU...
        let os_data_addr = map.os_data.start;
        assert!(!plan.permission_at(os_data_addr).unwrap().allows(Perm::W));
        // ...but the compiler's lower-bound check is still required because
        // execute-only does not stop instruction fetches, and SRAM /
        // peripherals are not covered at all.
        assert_eq!(plan.permission_at(map.os_stack.start), None);
        assert_eq!(plan.permission_at(0x0200), None);
    }

    #[test]
    fn os_plan_lets_the_os_reach_app_memory() {
        let map = map();
        let plan = MpuPlan::for_os(&map).unwrap();
        assert_eq!(plan.segments[3].perm, Perm::RW);
        assert!(plan
            .permission_at(map.apps[2].data.start)
            .unwrap()
            .allows(Perm::RW));
        // OS data writable.
        assert!(plan
            .permission_at(map.os_data.end - 1)
            .unwrap()
            .allows(Perm::W));
    }

    #[test]
    fn boundaries_are_the_apps_d_and_t() {
        let map = map();
        for (i, app) in map.apps.iter().enumerate() {
            let plan = MpuPlan::for_app(&map, i).unwrap();
            assert_eq!(plan.boundary1, app.data_lower_bound());
            assert_eq!(plan.boundary2, app.upper_bound());
        }
    }

    #[test]
    fn register_encoding_roundtrips_boundaries() {
        let map = map();
        let plan = MpuPlan::for_app(&map, 2).unwrap();
        let regs = plan.register_values();
        assert_eq!((regs.mpusegb1 as u32) << 4, plan.boundary1);
        assert_eq!((regs.mpusegb2 as u32) << 4, plan.boundary2);
        assert_eq!(regs.mpuctl0 & 0xFF00, 0xA500, "password byte present");
        assert_eq!(regs.mpuctl0 & 0x0001, 1, "enable bit set");
        // Segment 2 nibble should decode to RW.
        assert_eq!(Perm::from_bits((regs.mpusam >> 4) & 0x7), Perm::RW);
        // Segment 1 nibble should decode to X.
        assert_eq!(Perm::from_bits(regs.mpusam & 0x7), Perm::X);
        // Segment 3 nibble should decode to no access.
        assert_eq!(Perm::from_bits((regs.mpusam >> 8) & 0x7), Perm::NONE);
    }

    #[test]
    fn unknown_app_index_is_an_error() {
        let map = map();
        assert!(MpuPlan::for_app(&map, 99).is_err());
    }

    #[test]
    fn advanced_plan_requires_advanced_platform() {
        let map = map();
        assert!(matches!(
            MpuPlan::for_app_advanced(&map, 0),
            Err(CoreError::TooManySegments { .. })
        ));

        let adv_map =
            MemoryMapPlanner::new(crate::layout::PlatformSpec::msp430fr5969_advanced_mpu())
                .unwrap()
                .plan(
                    &OsImageSpec::default(),
                    &[AppImageSpec::new("App1", 0x800, 0x200, 0x100)],
                )
                .unwrap();
        let plan = MpuPlan::for_app_advanced(&adv_map, 0).unwrap();
        // The region below the app is now fully blocked in hardware.
        assert!(plan.blocks(adv_map.os_data.start));
        assert_eq!(
            plan.permission_at(adv_map.apps[0].code.start),
            Some(Perm::X)
        );
    }

    #[test]
    fn region_plans_match_the_analytic_write_counts() {
        // The cost model derives per-switch write counts from each
        // backend's `RegionConstraints`; the encoded plans are the other
        // source of those numbers.  Tie them together — across every
        // region-based built-in profile — so they cannot drift.
        use crate::platform::APP_PLAN_REGIONS;
        for platform in crate::platform::builtin_platforms() {
            if !platform.mpu.is_region_based() {
                continue;
            }
            let c = *platform.mpu.constraints().unwrap();
            let map = MemoryMapPlanner::new(platform.clone())
                .unwrap()
                .plan(
                    &OsImageSpec::default(),
                    &[AppImageSpec::new("App1", 0x800, 0x200, 0x100)],
                )
                .unwrap();
            let app = MpuPlan::for_app_on(&map, 0).unwrap();
            let os = MpuPlan::for_os_on(&map).unwrap();
            assert_eq!(
                app.region_register_values().regions.len() as u32,
                APP_PLAN_REGIONS,
                "{}",
                platform.name
            );
            assert_eq!(
                os.region_register_values().regions.len() as u32,
                c.os_plan_regions(),
                "{}",
                platform.name
            );
            // And the encoded per-config write counts agree with the cost
            // model's constraint-derived figures.
            assert_eq!(
                app.config(&platform.mpu).write_count(),
                platform.mpu.config_writes_for_app(),
                "{}",
                platform.name
            );
            assert_eq!(
                os.config(&platform.mpu).write_count(),
                platform.mpu.config_writes_for_os(),
                "{}",
                platform.name
            );
        }
    }

    #[test]
    fn pmp_plans_are_napot_valid_and_machine_mode_for_the_os() {
        let map = MemoryMapPlanner::new(crate::layout::PlatformSpec::riscv_pmp())
            .unwrap()
            .plan(
                &OsImageSpec::default(),
                &[
                    AppImageSpec::new("A", 0x123, 0x45, 0x67),
                    AppImageSpec::new("B", 0x800, 0x200, 0x100),
                ],
            )
            .unwrap();
        for i in 0..map.apps.len() {
            let plan = MpuPlan::for_app_on(&map, i).unwrap();
            let MpuConfig::Pmp(pmp) = plan.config(&map.platform.mpu) else {
                panic!("PMP platform must encode PMP register values");
            };
            assert!(pmp.user_mode);
            assert_eq!(pmp.entries.len(), 2);
            for e in &pmp.entries {
                let len = e.range.len();
                assert!(len.is_power_of_two(), "{:?} not power-of-two", e.range);
                assert_eq!(e.range.start % len, 0, "{:?} not size-aligned", e.range);
            }
        }
        let os = MpuPlan::for_os_on(&map).unwrap();
        assert!(os.segments.is_empty(), "machine mode programs no regions");
        let MpuConfig::Pmp(pmp) = os.config(&map.platform.mpu) else {
            panic!("PMP platform must encode PMP register values");
        };
        assert!(!pmp.user_mode);
        assert_eq!(pmp.write_count(), 1, "machine mode is one toggle write");
    }

    #[test]
    fn display_lists_all_segments() {
        let map = map();
        let s = MpuPlan::for_app(&map, 0).unwrap().to_string();
        assert!(s.contains("MPU0"));
        assert!(s.contains("MPU3"));
        assert!(s.contains("App1"));
    }
}
