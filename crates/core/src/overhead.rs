//! The analytic overhead model behind Figure 2.
//!
//! The Amulet Resource Profiler counts, for every application, how many data
//! memory accesses and how many context switches (OS API calls and event
//! deliveries) occur per state-machine transition, combines those counts with
//! the developer-declared event rates, and extrapolates the *additional*
//! cycles each isolation method costs per week.  This module provides the
//! per-operation constants and the arithmetic; `amulet-arp` layers the
//! event-rate bookkeeping and reporting on top.

use crate::checks::CheckPolicy;
use crate::method::IsolationMethod;
use crate::switch::ContextSwitchPlan;
use std::fmt;

/// Baseline (No Isolation) cost of one application data-memory access,
/// including the address computation and loop overhead of the synthetic
/// benchmark — the 23-cycle figure from Table 1.
pub const BASELINE_MEMORY_ACCESS_CYCLES: u64 = 23;

/// Baseline (No Isolation) cost of one OS API-call round trip — the 90-cycle
/// figure from Table 1.
pub const BASELINE_CONTEXT_SWITCH_CYCLES: u64 = 90;

/// Counts of the two operations that incur memory-protection overhead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Number of application data-memory accesses (pointer dereferences or
    /// array accesses).
    pub memory_accesses: u64,
    /// Number of OS↔app context switches (API calls and event deliveries).
    pub context_switches: u64,
}

impl OpCounts {
    /// Convenience constructor.
    pub fn new(memory_accesses: u64, context_switches: u64) -> Self {
        OpCounts {
            memory_accesses,
            context_switches,
        }
    }

    /// Element-wise sum.
    pub fn saturating_add(self, other: OpCounts) -> OpCounts {
        OpCounts {
            memory_accesses: self.memory_accesses.saturating_add(other.memory_accesses),
            context_switches: self.context_switches.saturating_add(other.context_switches),
        }
    }

    /// Scales both counts by `factor` (e.g. events per week).
    pub fn scaled(self, factor: u64) -> OpCounts {
        OpCounts {
            memory_accesses: self.memory_accesses.saturating_mul(factor),
            context_switches: self.context_switches.saturating_mul(factor),
        }
    }
}

/// Where the overhead cycles of a method came from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverheadBreakdown {
    /// Extra cycles attributable to compiler-inserted checks on memory
    /// accesses.
    pub memory_access_cycles: u64,
    /// Extra cycles attributable to heavier context switches (stack swaps,
    /// MPU reprogramming, pointer-argument validation).
    pub context_switch_cycles: u64,
}

impl OverheadBreakdown {
    /// Total overhead cycles.
    pub fn total(&self) -> u64 {
        self.memory_access_cycles + self.context_switch_cycles
    }
}

impl fmt::Display for OverheadBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} overhead cycles ({} memory-access + {} context-switch)",
            self.total(),
            self.memory_access_cycles,
            self.context_switch_cycles
        )
    }
}

/// Per-operation cost table for one isolation method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverheadModel {
    /// Isolation method the model describes.
    pub method: IsolationMethod,
    /// Extra cycles added to each data-memory access.
    pub per_memory_access: u64,
    /// Extra cycles added to each context switch (full round trip).
    pub per_context_switch: u64,
}

impl OverheadModel {
    /// Builds the model for a method from the check policy and switch plan,
    /// so the analytic numbers always agree with what the compiler inserts
    /// and what the OS executes.
    pub fn for_method(method: IsolationMethod) -> Self {
        let per_memory_access = CheckPolicy::for_method(method).memory_access_overhead_cycles();
        let per_context_switch = ContextSwitchPlan::round_trip_cycles(method)
            - ContextSwitchPlan::round_trip_cycles(IsolationMethod::NoIsolation);
        OverheadModel {
            method,
            per_memory_access,
            per_context_switch,
        }
    }

    /// Builds the model for a method **on a specific platform**: the check
    /// policy is derived from the platform's MPU capability model and the
    /// context-switch cost from its cost table.  For the MSP430FR5969 this
    /// is identical to [`OverheadModel::for_method`].
    pub fn for_platform(method: IsolationMethod, platform: &crate::layout::PlatformSpec) -> Self {
        let per_memory_access = crate::checks::CheckPolicy::for_method_on(method, &platform.mpu)
            .memory_access_overhead_cycles();
        let per_context_switch = ContextSwitchPlan::round_trip_cycles_for(platform, method)
            - ContextSwitchPlan::round_trip_cycles_for(platform, IsolationMethod::NoIsolation);
        OverheadModel {
            method,
            per_memory_access,
            per_context_switch,
        }
    }

    /// Models for all four methods in Table-1 order.
    pub fn all() -> Vec<OverheadModel> {
        IsolationMethod::ALL
            .iter()
            .map(|m| Self::for_method(*m))
            .collect()
    }

    /// Models for all four methods on a specific platform, in Table-1 order.
    pub fn all_for(platform: &crate::layout::PlatformSpec) -> Vec<OverheadModel> {
        IsolationMethod::ALL
            .iter()
            .map(|m| Self::for_platform(*m, platform))
            .collect()
    }

    /// Absolute cost of one memory access under this method (baseline plus
    /// overhead) — the Table 1 "Memory Access" row.
    pub fn absolute_memory_access_cycles(&self) -> u64 {
        BASELINE_MEMORY_ACCESS_CYCLES + self.per_memory_access
    }

    /// Absolute cost of one context switch under this method (baseline plus
    /// overhead) — the Table 1 "Context Switch" row.
    pub fn absolute_context_switch_cycles(&self) -> u64 {
        BASELINE_CONTEXT_SWITCH_CYCLES + self.per_context_switch
    }

    /// Overhead cycles for the given operation counts.
    pub fn overhead(&self, counts: OpCounts) -> OverheadBreakdown {
        OverheadBreakdown {
            memory_access_cycles: counts
                .memory_accesses
                .saturating_mul(self.per_memory_access),
            context_switch_cycles: counts
                .context_switches
                .saturating_mul(self.per_context_switch),
        }
    }

    /// Total cycles (baseline work plus overhead) for the given counts; used
    /// to compute percentage slowdowns in Figure-3 style comparisons.
    pub fn total_cycles(&self, counts: OpCounts) -> u64 {
        counts
            .memory_accesses
            .saturating_mul(self.absolute_memory_access_cycles())
            .saturating_add(
                counts
                    .context_switches
                    .saturating_mul(self.absolute_context_switch_cycles()),
            )
    }

    /// Percentage slowdown relative to the No Isolation baseline for the same
    /// operation counts.
    pub fn slowdown_percent(&self, counts: OpCounts) -> f64 {
        let base = OverheadModel::for_method(IsolationMethod::NoIsolation).total_cycles(counts);
        if base == 0 {
            return 0.0;
        }
        let this = self.total_cycles(counts);
        (this as f64 - base as f64) / base as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_absolute_costs_are_reproduced_by_the_model() {
        let rows: Vec<(IsolationMethod, u64, u64)> = OverheadModel::all()
            .into_iter()
            .map(|m| {
                (
                    m.method,
                    m.absolute_memory_access_cycles(),
                    m.absolute_context_switch_cycles(),
                )
            })
            .collect();
        // Paper Table 1:       mem, switch
        // No Isolation          23, 90
        // Feature Limited       41, 90
        // MPU                   29, 142
        // Software Only         32, 98
        assert_eq!(rows[0], (IsolationMethod::NoIsolation, 23, 90));
        assert_eq!(rows[1], (IsolationMethod::FeatureLimited, 41, 90));
        assert_eq!(rows[2], (IsolationMethod::Mpu, 29, 142));
        assert_eq!(rows[3], (IsolationMethod::SoftwareOnly, 32, 98));
    }

    #[test]
    fn overhead_scales_linearly_with_counts() {
        let model = OverheadModel::for_method(IsolationMethod::Mpu);
        let once = model.overhead(OpCounts::new(10, 3));
        let tenfold = model.overhead(OpCounts::new(100, 30));
        assert_eq!(tenfold.total(), once.total() * 10);
    }

    #[test]
    fn mpu_wins_for_memory_heavy_workloads_software_wins_for_switch_heavy() {
        // The paper's §4.2 observation: MPU is best for computationally heavy
        // (memory-access dominated) apps, Software Only is better for apps
        // that make frequent API calls.
        let mpu = OverheadModel::for_method(IsolationMethod::Mpu);
        let sw = OverheadModel::for_method(IsolationMethod::SoftwareOnly);

        let memory_heavy = OpCounts::new(100_000, 10);
        assert!(mpu.overhead(memory_heavy).total() < sw.overhead(memory_heavy).total());

        let switch_heavy = OpCounts::new(10, 100_000);
        assert!(sw.overhead(switch_heavy).total() < mpu.overhead(switch_heavy).total());
    }

    #[test]
    fn no_isolation_has_zero_overhead_and_zero_slowdown() {
        let model = OverheadModel::for_method(IsolationMethod::NoIsolation);
        let counts = OpCounts::new(1_000_000, 1_000);
        assert_eq!(model.overhead(counts).total(), 0);
        assert_eq!(model.slowdown_percent(counts), 0.0);
    }

    #[test]
    fn slowdown_is_positive_for_isolating_methods() {
        let counts = OpCounts::new(50_000, 500);
        for m in IsolationMethod::ISOLATING {
            let s = OverheadModel::for_method(m).slowdown_percent(counts);
            assert!(s > 0.0, "{m} slowdown {s}");
            assert!(s < 100.0, "{m} slowdown {s} implausibly large");
        }
    }

    #[test]
    fn zero_counts_give_zero_slowdown() {
        for m in IsolationMethod::ALL {
            assert_eq!(
                OverheadModel::for_method(m).slowdown_percent(OpCounts::default()),
                0.0
            );
        }
    }

    #[test]
    fn op_counts_arithmetic() {
        let a = OpCounts::new(10, 2);
        let b = OpCounts::new(5, 1);
        assert_eq!(a.saturating_add(b), OpCounts::new(15, 3));
        assert_eq!(a.scaled(3), OpCounts::new(30, 6));
        assert_eq!(
            OpCounts::new(u64::MAX, 1).scaled(2).memory_accesses,
            u64::MAX
        );
    }

    #[test]
    fn breakdown_display_mentions_both_components() {
        let model = OverheadModel::for_method(IsolationMethod::Mpu);
        let s = model.overhead(OpCounts::new(7, 3)).to_string();
        assert!(s.contains("memory-access"));
        assert!(s.contains("context-switch"));
    }
}
