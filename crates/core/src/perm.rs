//! Access permissions used by the MPU plan and the memory bus.

use std::fmt;
use std::ops::{BitAnd, BitOr};

/// A read/write/execute permission set, as held by an MPU segment or required
/// by a memory access.
///
/// The `Display` form matches the paper's Figure 1 notation, e.g. `R W -`
/// prints as `RW-` and execute-only prints as `--X`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perm {
    /// Reads allowed.
    pub read: bool,
    /// Writes allowed.
    pub write: bool,
    /// Instruction fetches allowed.
    pub execute: bool,
}

impl Perm {
    /// No access at all (`---`).
    pub const NONE: Perm = Perm {
        read: false,
        write: false,
        execute: false,
    };
    /// Read-only (`R--`).
    pub const R: Perm = Perm {
        read: true,
        write: false,
        execute: false,
    };
    /// Write-only (`-W-`).
    pub const W: Perm = Perm {
        read: false,
        write: true,
        execute: false,
    };
    /// Execute-only (`--X`), used for code segments in Figure 1.
    pub const X: Perm = Perm {
        read: false,
        write: false,
        execute: true,
    };
    /// Read-write (`RW-`), used for data/stack segments in Figure 1.
    pub const RW: Perm = Perm {
        read: true,
        write: true,
        execute: false,
    };
    /// Read-execute (`R-X`).
    pub const RX: Perm = Perm {
        read: true,
        write: false,
        execute: true,
    };
    /// Full access (`RWX`).
    pub const RWX: Perm = Perm {
        read: true,
        write: true,
        execute: true,
    };

    /// Returns true when every access allowed by `needed` is also allowed by
    /// `self`.
    pub fn allows(&self, needed: Perm) -> bool {
        (!needed.read || self.read)
            && (!needed.write || self.write)
            && (!needed.execute || self.execute)
    }

    /// Returns true when no access of any kind is permitted.
    pub fn is_none(&self) -> bool {
        !self.read && !self.write && !self.execute
    }

    /// Encodes the permission as the low three bits of an MPUSAM-style
    /// register nibble: bit0 = read, bit1 = write, bit2 = execute.
    pub fn to_bits(&self) -> u16 {
        (self.read as u16) | ((self.write as u16) << 1) | ((self.execute as u16) << 2)
    }

    /// Decodes the low three bits of an MPUSAM-style nibble.
    pub fn from_bits(bits: u16) -> Perm {
        Perm {
            read: bits & 0b001 != 0,
            write: bits & 0b010 != 0,
            execute: bits & 0b100 != 0,
        }
    }
}

impl BitOr for Perm {
    type Output = Perm;
    fn bitor(self, rhs: Perm) -> Perm {
        Perm {
            read: self.read || rhs.read,
            write: self.write || rhs.write,
            execute: self.execute || rhs.execute,
        }
    }
}

impl BitAnd for Perm {
    type Output = Perm;
    fn bitand(self, rhs: Perm) -> Perm {
        Perm {
            read: self.read && rhs.read,
            write: self.write && rhs.write,
            execute: self.execute && rhs.execute,
        }
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'R' } else { '-' },
            if self.write { 'W' } else { '-' },
            if self.execute { 'X' } else { '-' },
        )
    }
}

impl fmt::Debug for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Perm({self})")
    }
}

/// The kind of a single memory access, as seen by the bus and the MPU.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A data read (load).
    Read,
    /// A data write (store).
    Write,
    /// An instruction fetch.
    Execute,
}

impl AccessKind {
    /// The permission required to perform this access.
    pub fn required_perm(&self) -> Perm {
        match self {
            AccessKind::Read => Perm::R,
            AccessKind::Write => Perm::W,
            AccessKind::Execute => Perm::X,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
            AccessKind::Execute => write!(f, "execute"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_figure1_notation() {
        assert_eq!(Perm::X.to_string(), "--X");
        assert_eq!(Perm::RW.to_string(), "RW-");
        assert_eq!(Perm::NONE.to_string(), "---");
        assert_eq!(Perm::RWX.to_string(), "RWX");
    }

    #[test]
    fn allows_is_a_subset_check() {
        assert!(Perm::RWX.allows(Perm::RW));
        assert!(Perm::RW.allows(Perm::R));
        assert!(Perm::RW.allows(Perm::W));
        assert!(!Perm::RW.allows(Perm::X));
        assert!(!Perm::X.allows(Perm::R));
        assert!(Perm::NONE.allows(Perm::NONE));
        assert!(!Perm::NONE.allows(Perm::R));
    }

    #[test]
    fn bit_roundtrip() {
        for bits in 0..8u16 {
            assert_eq!(Perm::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn bitops_combine() {
        assert_eq!(Perm::R | Perm::W, Perm::RW);
        assert_eq!(Perm::RW & Perm::R, Perm::R);
        assert_eq!(Perm::X & Perm::RW, Perm::NONE);
    }

    #[test]
    fn access_kind_required_perms() {
        assert!(Perm::RW.allows(AccessKind::Write.required_perm()));
        assert!(!Perm::X.allows(AccessKind::Read.required_perm()));
        assert!(Perm::X.allows(AccessKind::Execute.required_perm()));
    }
}
