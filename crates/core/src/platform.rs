//! The platform abstraction layer: MPU capability models, per-backend
//! region-planning constraints, per-platform cycle-cost tables, and the
//! [`Platform`] trait that the planner, the MPU plans, the context-switch
//! plans and the overhead model are generic over.
//!
//! The paper evaluates one device — the MSP430FR5969, whose MPU divides
//! main memory into three **segments** separated by two movable boundaries —
//! but its isolation methods are general.  Other MCU families expose
//! **region-based** protection instead: Tock/Cortex-M-style base/limit
//! regions, ARMv8-M MPUs whose jurisdiction also covers peripheral space,
//! and RISC-V PMPs whose NAPOT entries must be power-of-two sized and
//! size-aligned.  [`MpuModel`] captures the segmented shape directly and
//! every region-based shape through a [`RegionConstraints`] descriptor, so
//! the policy layers above can ask *what the hardware can express* — and at
//! what configuration cost — instead of assuming any one device.

use std::fmt;

/// Region slots a region-based MPU configuration spends on the running
/// application: its code region (execute-only) and its data/stack region
/// (read-write).  This is a property of the Figure-1 app shape, not of any
/// particular backend.
pub const APP_PLAN_REGIONS: u32 = 2;

/// Region slots the OS-running configuration spends on a region-based MPU
/// *before* any peripheral region: OS code, OS data, SRAM (the OS stack)
/// and the whole application area.
pub const OS_PLAN_BASE_REGIONS: u32 = 4;

/// The rule a planned region's size — and through it, its base address —
/// must satisfy on a region-based MPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeRule {
    /// Cortex-M/Tock-style: region bases and limits must fall on
    /// `align`-byte marks; any multiple-of-`align` size is expressible.
    AnyAligned {
        /// Required alignment of region bases and limits, in bytes.
        align: u32,
    },
    /// RISC-V PMP NAPOT-style: a region's size must be a power of two no
    /// smaller than `min` bytes, and its base must be aligned to its own
    /// size (naturally aligned power-of-two).
    NapotPow2 {
        /// Smallest expressible region size, in bytes (a power of two).
        min: u32,
    },
}

impl SizeRule {
    /// The *minimum* alignment every region boundary is guaranteed to
    /// satisfy under this rule (NAPOT boundaries are aligned at least to
    /// the minimum region size; individual regions are aligned to their
    /// own, larger, size).
    pub fn min_align(&self) -> u32 {
        match self {
            SizeRule::AnyAligned { align } => *align,
            SizeRule::NapotPow2 { min } => *min,
        }
    }

    /// The smallest expressible region span that covers `needed` bytes.
    pub fn region_span(&self, needed: u32) -> u32 {
        match self {
            SizeRule::AnyAligned { align } => crate::addr::align_up(needed.max(1), *align),
            SizeRule::NapotPow2 { min } => needed.max(*min).next_power_of_two(),
        }
    }

    /// Whether `range` is a valid region under this rule.
    pub fn is_valid_region(&self, range: &crate::addr::AddrRange) -> bool {
        let len = range.len();
        match self {
            SizeRule::AnyAligned { align } => {
                len > 0 && range.start.is_multiple_of(*align) && range.end.is_multiple_of(*align)
            }
            SizeRule::NapotPow2 { min } => {
                len.is_power_of_two() && len >= *min && range.start.is_multiple_of(len)
            }
        }
    }
}

impl fmt::Display for SizeRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SizeRule::AnyAligned { align } => write!(f, "{align}-byte alignment"),
            SizeRule::NapotPow2 { min } => {
                write!(f, "NAPOT (power-of-two size ≥ {min} B, size-aligned)")
            }
        }
    }
}

/// Everything the layout planner and the cost models need to know about a
/// region-based MPU: how many regions exist, what shapes they can take,
/// what memory they police, and what programming one costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionConstraints {
    /// Number of region slots the hardware provides.
    pub regions: usize,
    /// The base/size rule every planned region must satisfy.
    pub size_rule: SizeRule,
    /// Whether the MPU's deny-by-default jurisdiction extends over the
    /// **full platform space** — memory-mapped peripherals, the boot ROM
    /// and the vector table (ARMv8-M style; RISC-V PMP polices everything
    /// user mode touches).  When true, the planner can drop the software
    /// function-pointer checks too: a corrupted code pointer has nowhere
    /// unpoliced to escape to.
    pub covers_peripherals: bool,
    /// Register writes needed to program one region (3 for an
    /// RNR/RBAR/RLAR select-base-limit interface, 1 for a PMP `pmpaddr`
    /// entry whose packed config word is counted in `control_writes`).
    pub writes_per_region: u32,
    /// Trailing writes per reconfiguration (control/enable words, packed
    /// PMP config words, privilege-mode toggles).
    pub control_writes: u32,
    /// Whether privileged (OS/machine-mode) execution bypasses the MPU
    /// entirely, RISC-V PMP style: the OS-running "configuration" is then
    /// just the privilege-mode toggle, not a set of OS regions.
    pub privileged_bypass: bool,
}

impl RegionConstraints {
    /// Region slots an OS-running configuration programs (0 when
    /// privileged execution bypasses the MPU; the four base regions plus a
    /// peripheral region when the jurisdiction covers peripheral space).
    pub fn os_plan_regions(&self) -> u32 {
        if self.privileged_bypass {
            0
        } else {
            OS_PLAN_BASE_REGIONS + u32::from(self.covers_peripherals)
        }
    }

    /// Register writes to install a configuration of `regions` regions.
    pub fn config_writes(&self, regions: u32) -> u32 {
        regions * self.writes_per_region + self.control_writes
    }

    /// Register writes to install the running-app configuration.
    pub fn config_writes_for_app(&self) -> u32 {
        self.config_writes(APP_PLAN_REGIONS)
    }

    /// Register writes to install the OS-running configuration (a single
    /// privilege-mode write on privileged-bypass hardware).
    pub fn config_writes_for_os(&self) -> u32 {
        if self.privileged_bypass {
            1
        } else {
            self.config_writes(self.os_plan_regions())
        }
    }
}

/// The MPU capability model of a platform: what protection shapes the
/// hardware can express, and at what configuration cost.
///
/// ```
/// use amulet_core::platform::MpuModel;
///
/// let fr5969 = MpuModel::Segmented { main_segments: 3, boundary_granularity: 0x400 };
/// let region = MpuModel::tock_region(8, 0x100);
/// let pmp = MpuModel::riscv_pmp_napot(8, 0x40);
/// // Three segments cannot bound the running app from below — which is
/// // exactly why the paper's MPU method keeps a software lower-bound
/// // check; region hardware bounds both sides.
/// assert!(!fr5969.bounds_app_below());
/// assert!(region.bounds_app_below());
/// // NAPOT hardware additionally forces power-of-two, size-aligned regions.
/// assert_eq!(pmp.constraints().unwrap().size_rule.region_span(0x180), 0x200);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpuModel {
    /// FR5969-style segmented MPU: `main_segments` segments over main
    /// memory, separated by movable boundaries that must fall on
    /// `boundary_granularity`-byte marks.  Memory outside main FRAM and
    /// InfoMem is not policed at all, and configuration sits behind a
    /// password-protected register protocol.
    Segmented {
        /// Number of main-memory segments with movable boundaries (3 on the
        /// FR5969; 4 in the "advanced MPU" ablation).
        main_segments: usize,
        /// Granularity of the movable boundaries, in bytes.
        boundary_granularity: u32,
    },
    /// A region-based MPU, described by its planning constraints: a fixed
    /// number of independent regions with per-region R/W/X permissions and
    /// **deny-by-default** semantics inside the backend's jurisdiction.
    Region(RegionConstraints),
}

impl MpuModel {
    /// A Tock/Cortex-M-style region MPU: `regions` base/limit slots at
    /// `alignment`-byte granularity, policing FRAM, InfoMem and SRAM (but
    /// not peripheral space), programmed through a select/base/limit
    /// register file.
    pub fn tock_region(regions: usize, alignment: u32) -> Self {
        MpuModel::Region(RegionConstraints {
            regions,
            size_rule: SizeRule::AnyAligned { align: alignment },
            covers_peripherals: false,
            writes_per_region: 3,
            control_writes: 1,
            privileged_bypass: false,
        })
    }

    /// An ARMv8-M (Cortex-M33-class) MPU: `regions` slots at 32-byte
    /// alignment whose jurisdiction **includes peripheral space**, so the
    /// planner adds a peripheral region to the OS configuration and drops
    /// the software function-pointer checks.
    pub fn cortex_m33_region(regions: usize) -> Self {
        MpuModel::Region(RegionConstraints {
            regions,
            size_rule: SizeRule::AnyAligned { align: 0x20 },
            covers_peripherals: true,
            writes_per_region: 3,
            control_writes: 1,
            privileged_bypass: false,
        })
    }

    /// A RISC-V PMP with `entries` NAPOT entries of minimum size `min`:
    /// regions are power-of-two sized and size-aligned, user-mode
    /// execution is policed over the whole address space (peripherals
    /// included), and machine mode bypasses the PMP — so the OS-running
    /// configuration is a single privilege-mode toggle.  Each entry is one
    /// `pmpaddr` CSR write; the two packed `pmpcfg` words (the driver
    /// rewrites the full set, disabling stale entries) and the mode
    /// toggle are the three trailing control writes.
    pub fn riscv_pmp_napot(entries: usize, min: u32) -> Self {
        MpuModel::Region(RegionConstraints {
            regions: entries,
            size_rule: SizeRule::NapotPow2 { min },
            covers_peripherals: true,
            writes_per_region: 1,
            control_writes: 3,
            privileged_bypass: true,
        })
    }

    /// The region-planning constraints, when this is a region-based MPU.
    pub fn constraints(&self) -> Option<&RegionConstraints> {
        match self {
            MpuModel::Segmented { .. } => None,
            MpuModel::Region(c) => Some(c),
        }
    }

    /// The *minimum* alignment that app bounds (`D_i`, `T_i`) are
    /// guaranteed to satisfy: boundary granularity for segmented MPUs, the
    /// size rule's minimum alignment for region MPUs.  NAPOT backends
    /// impose stricter per-region rules on top — the planner solves those
    /// through [`MpuModel::constraints`], and this floor is what generic
    /// validity checks may rely on.
    pub fn boundary_granularity(&self) -> u32 {
        match self {
            MpuModel::Segmented {
                boundary_granularity,
                ..
            } => *boundary_granularity,
            MpuModel::Region(c) => c.size_rule.min_align(),
        }
    }

    /// How many distinct protection slots the hardware offers (segments or
    /// regions).
    pub fn main_segments(&self) -> usize {
        match self {
            MpuModel::Segmented { main_segments, .. } => *main_segments,
            MpuModel::Region(c) => c.regions,
        }
    }

    /// Whether this is a region-based (full-coverage, deny-by-default) MPU.
    pub fn is_region_based(&self) -> bool {
        matches!(self, MpuModel::Region(_))
    }

    /// Whether this is a NAPOT (RISC-V-PMP-style) region MPU — the shape
    /// the simulator's `PmpMpu` bus backend models.
    pub fn is_napot(&self) -> bool {
        matches!(
            self,
            MpuModel::Region(RegionConstraints {
                size_rule: SizeRule::NapotPow2 { .. },
                ..
            })
        )
    }

    /// Whether the MPU's jurisdiction covers memory-mapped peripheral
    /// space (deny-by-default there too).
    pub fn covers_peripherals(&self) -> bool {
        self.constraints().is_some_and(|c| c.covers_peripherals)
    }

    /// Whether the hardware can bound the running app from **below** as
    /// well as above.  The FR5969's three segments cannot (the segment
    /// below the app's data must stay executable for the app's own code),
    /// which is why the paper's MPU method still inserts lower-bound
    /// checks in software; four segments or a region MPU can.
    pub fn bounds_app_below(&self) -> bool {
        match self {
            MpuModel::Segmented { main_segments, .. } => *main_segments >= 4,
            MpuModel::Region(_) => true,
        }
    }

    /// Peripheral-register writes the OS performs to install the
    /// configuration for a *running application*, derived from the
    /// backend's [`RegionConstraints`] on region hardware.
    pub fn config_writes_for_app(&self) -> u32 {
        match self {
            // SEGB1, SEGB2, SAM, CTL0 — the FR5969 sequence from the paper.
            MpuModel::Segmented { .. } => 4,
            MpuModel::Region(c) => c.config_writes_for_app(),
        }
    }

    /// Peripheral-register writes the OS performs to install its *own*
    /// configuration when an app traps into it.
    pub fn config_writes_for_os(&self) -> u32 {
        match self {
            MpuModel::Segmented { .. } => 4,
            MpuModel::Region(c) => c.config_writes_for_os(),
        }
    }

    /// Extra cycles of protocol overhead per reconfiguration (the segmented
    /// part's password dance; region MPUs have none).
    pub fn unlock_overhead_cycles(&self) -> u64 {
        match self {
            MpuModel::Segmented { .. } => 2,
            MpuModel::Region(_) => 0,
        }
    }
}

impl fmt::Display for MpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpuModel::Segmented {
                main_segments,
                boundary_granularity,
            } => write!(
                f,
                "segmented MPU ({main_segments} segments, {boundary_granularity}-byte boundaries)"
            ),
            MpuModel::Region(c) => {
                write!(f, "region MPU ({} regions, {}", c.regions, c.size_rule)?;
                if c.covers_peripherals {
                    write!(f, ", peripheral jurisdiction")?;
                }
                if c.privileged_bypass {
                    write!(f, ", privileged bypass")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Electrical parameters of a platform, kept in integer units so
/// `PlatformSpec` stays `Eq`; [`crate::energy::EnergyModel::for_platform`]
/// derives its floating-point model from these.  The defaults are the
/// MSP430FR5969's datasheet figures (16 MHz, ≈100 µA/MHz, 3 V; LPM3 with
/// the RTC running draws ≈0.7 µA).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnergyParams {
    /// CPU clock frequency in Hz.
    pub frequency_hz: u64,
    /// Active-mode supply current in microamperes at that frequency.
    pub active_current_ua: u32,
    /// Low-power-mode (sleep) supply current in **nanoamperes** — the draw
    /// between events, when the CPU is stopped and only the RTC/wakeup
    /// logic runs.  Nanoamperes because LPM3-class currents are fractions
    /// of a microampere.
    pub lpm_current_na: u32,
    /// Supply voltage in millivolts.
    pub supply_millivolts: u32,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            frequency_hz: 16_000_000,
            active_current_ua: 1600,
            lpm_current_na: 700,
            supply_millivolts: 3000,
        }
    }
}

/// Per-platform cycle costs used by the analytic models.  The defaults are
/// the MSP430-flavoured constants that reproduce the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleCostTable {
    /// Cycles per peripheral-register write (MPU reconfiguration traffic).
    pub reg_write_cycles: u64,
    /// Baseline cycles of one application data-memory access under No
    /// Isolation (Table 1's 23-cycle figure).
    pub memory_access_baseline: u64,
    /// Baseline cycles of one OS API-call round trip under No Isolation
    /// (Table 1's 90-cycle figure).
    pub context_switch_baseline: u64,
}

impl Default for CycleCostTable {
    fn default() -> Self {
        CycleCostTable {
            reg_write_cycles: 5,
            memory_access_baseline: 23,
            context_switch_baseline: 90,
        }
    }
}

impl CycleCostTable {
    /// Cycles to install `mpu`'s configuration for a running app.
    pub fn mpu_config_cycles_for_app(&self, mpu: &MpuModel) -> u64 {
        mpu.config_writes_for_app() as u64 * self.reg_write_cycles + mpu.unlock_overhead_cycles()
    }

    /// Cycles to install `mpu`'s configuration for the OS itself.
    pub fn mpu_config_cycles_for_os(&self, mpu: &MpuModel) -> u64 {
        mpu.config_writes_for_os() as u64 * self.reg_write_cycles + mpu.unlock_overhead_cycles()
    }
}

/// A hardware platform the isolation policies can target: memory geometry,
/// MPU capability model, and cycle costs.
///
/// Concrete profiles ([`Msp430Fr5969`], [`Msp430Fr5994`], [`RiscvPmp`],
/// [`CortexM33`], …) implement this trait, and so does
/// [`crate::layout::PlatformSpec`] itself, so APIs can accept either a
/// profile type or an already-materialised spec.
///
/// The whole policy stack is parameterised over it — the same app builds an
/// [`crate::mpu_plan::MpuPlan`] in whichever register shape the platform's
/// MPU speaks:
///
/// ```
/// use amulet_core::layout::{AppImageSpec, MemoryMapPlanner, OsImageSpec};
/// use amulet_core::mpu_plan::{MpuConfig, MpuPlan};
/// use amulet_core::platform::{Msp430Fr5969, Msp430Fr5994, Platform, RiscvPmp};
///
/// for spec in [Msp430Fr5969.spec(), Msp430Fr5994.spec(), RiscvPmp.spec()] {
///     let map = MemoryMapPlanner::for_platform(&spec)
///         .unwrap()
///         .plan(
///             &OsImageSpec::default(),
///             &[AppImageSpec::new("App", 0x400, 0x100, 0x80)],
///         )
///         .unwrap();
///     let config = MpuPlan::for_app_on(&map, 0).unwrap().config(&spec.mpu);
///     match (&spec.mpu, &config) {
///         (m, MpuConfig::Segmented(_)) if !m.is_region_based() => {}
///         (m, MpuConfig::Pmp(_)) if m.is_napot() => {}
///         (m, MpuConfig::Region(_)) if m.is_region_based() && !m.is_napot() => {}
///         other => panic!("plan shape must follow the MPU model: {other:?}"),
///     }
///     assert!(config.write_count() >= 4);
/// }
/// ```
pub trait Platform {
    /// The full data description of the platform.
    fn spec(&self) -> crate::layout::PlatformSpec;

    /// The platform's name (stable identifier used in reports).
    fn name(&self) -> String {
        self.spec().name
    }
}

/// The TI MSP430FR5969 as used by the Amulet wearable: 2 KiB SRAM, 48 KiB
/// FRAM, and the paper's two-boundary segmented MPU.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Msp430Fr5969;

impl Platform for Msp430Fr5969 {
    fn spec(&self) -> crate::layout::PlatformSpec {
        crate::layout::PlatformSpec::msp430fr5969()
    }
}

/// The "advanced MPU" ablation variant of the FR5969: same memory map, but
/// a fourth segment lets hardware bound apps from below (§5 of the paper).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Msp430Fr5969AdvancedMpu;

impl Platform for Msp430Fr5969AdvancedMpu {
    fn spec(&self) -> crate::layout::PlatformSpec {
        crate::layout::PlatformSpec::msp430fr5969_advanced_mpu()
    }
}

/// An MSP430FR5994-class device: the larger-memory sibling (4 KiB SRAM in
/// place of 2 KiB — the simulator models the lower 64 KiB window of its
/// address space, since the modelled CPU core is 16-bit) fitted with a
/// Tock/Cortex-M-style region MPU of eight 256-byte-aligned regions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Msp430Fr5994;

impl Platform for Msp430Fr5994 {
    fn spec(&self) -> crate::layout::PlatformSpec {
        crate::layout::PlatformSpec::msp430fr5994()
    }
}

/// An MMU-less RISC-V microcontroller profile: 8 PMP entries with NAPOT
/// sizing (power-of-two, size-aligned regions), full user-mode
/// jurisdiction including peripheral space, and machine-mode bypass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RiscvPmp;

impl Platform for RiscvPmp {
    fn spec(&self) -> crate::layout::PlatformSpec {
        crate::layout::PlatformSpec::riscv_pmp()
    }
}

/// A Cortex-M33-class (ARMv8-M) profile: 16 MPU regions at 32-byte
/// alignment whose jurisdiction covers peripheral space, so the planner
/// drops the software function-pointer checks as well.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CortexM33;

impl Platform for CortexM33 {
    fn spec(&self) -> crate::layout::PlatformSpec {
        crate::layout::PlatformSpec::cortex_m33()
    }
}

/// Every built-in platform profile, for cross-platform test sweeps and the
/// platform-comparison bench.
pub fn builtin_platforms() -> Vec<crate::layout::PlatformSpec> {
    vec![
        crate::layout::PlatformSpec::msp430fr5969(),
        crate::layout::PlatformSpec::msp430fr5969_advanced_mpu(),
        crate::layout::PlatformSpec::msp430fr5994(),
        crate::layout::PlatformSpec::riscv_pmp(),
        crate::layout::PlatformSpec::cortex_m33(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrRange;

    #[test]
    fn segmented_model_matches_fr5969_costs() {
        let mpu = MpuModel::Segmented {
            main_segments: 3,
            boundary_granularity: 0x400,
        };
        let costs = CycleCostTable::default();
        // 4 writes × 5 cycles + 2 unlock cycles = the 22-cycle ConfigureMpu
        // step that reproduces Table 1's 142-cycle MPU context switch.
        assert_eq!(costs.mpu_config_cycles_for_app(&mpu), 22);
        assert_eq!(costs.mpu_config_cycles_for_os(&mpu), 22);
        assert!(!mpu.bounds_app_below());
        assert!(!mpu.is_region_based());
        assert!(mpu.constraints().is_none());
    }

    #[test]
    fn tock_region_model_costs_derive_from_its_constraints() {
        let mpu = MpuModel::tock_region(8, 0x100);
        let costs = CycleCostTable::default();
        // 2 app regions × 3 writes + control = 7 writes, no password dance.
        assert_eq!(mpu.config_writes_for_app(), 7);
        assert_eq!(costs.mpu_config_cycles_for_app(&mpu), 35);
        // 4 OS regions (code, data, SRAM, app area) × 3 writes + control.
        assert_eq!(mpu.config_writes_for_os(), 13);
        assert_eq!(costs.mpu_config_cycles_for_os(&mpu), 65);
        assert!(mpu.bounds_app_below());
        assert!(mpu.is_region_based());
        assert!(!mpu.is_napot());
        assert!(!mpu.covers_peripherals());
        assert_eq!(mpu.boundary_granularity(), 0x100);
    }

    #[test]
    fn cortex_m33_model_adds_a_peripheral_os_region() {
        let mpu = MpuModel::cortex_m33_region(16);
        assert!(mpu.covers_peripherals());
        assert_eq!(mpu.boundary_granularity(), 0x20);
        // App config unchanged in shape (2 regions); the OS config carries
        // a fifth (peripheral) region: 5 × 3 + 1 = 16 writes.
        assert_eq!(mpu.config_writes_for_app(), 7);
        assert_eq!(mpu.config_writes_for_os(), 16);
        assert_eq!(mpu.constraints().unwrap().os_plan_regions(), 5);
    }

    #[test]
    fn riscv_pmp_model_is_napot_with_machine_mode_bypass() {
        let mpu = MpuModel::riscv_pmp_napot(8, 0x40);
        assert!(mpu.is_napot());
        assert!(mpu.covers_peripherals());
        assert_eq!(mpu.boundary_granularity(), 0x40);
        // App config: 2 pmpaddr writes + both packed pmpcfg words + mode
        // = 5 writes; entering machine mode is a single privilege toggle.
        assert_eq!(mpu.config_writes_for_app(), 5);
        assert_eq!(mpu.config_writes_for_os(), 1);
        let costs = CycleCostTable::default();
        assert_eq!(costs.mpu_config_cycles_for_app(&mpu), 25);
        assert_eq!(costs.mpu_config_cycles_for_os(&mpu), 5);
    }

    #[test]
    fn size_rules_span_and_validate() {
        let aligned = SizeRule::AnyAligned { align: 0x100 };
        assert_eq!(aligned.region_span(0x180), 0x200);
        assert!(aligned.is_valid_region(&AddrRange::new(0x4400, 0x4500)));
        assert!(!aligned.is_valid_region(&AddrRange::new(0x4410, 0x4500)));

        let napot = SizeRule::NapotPow2 { min: 0x40 };
        assert_eq!(napot.region_span(0x180), 0x200);
        assert_eq!(napot.region_span(1), 0x40);
        assert_eq!(napot.region_span(0x200), 0x200);
        // Power-of-two size, base aligned to the size.
        assert!(napot.is_valid_region(&AddrRange::new(0x4400, 0x4800)));
        assert!(!napot.is_valid_region(&AddrRange::new(0x4400, 0x4700)));
        assert!(!napot.is_valid_region(&AddrRange::new(0x4600, 0x4A00)));
        assert!(!napot.is_valid_region(&AddrRange::new(0x4400, 0x4420)));
    }

    #[test]
    fn advanced_segmented_mpu_bounds_below() {
        let mpu = MpuModel::Segmented {
            main_segments: 4,
            boundary_granularity: 0x400,
        };
        assert!(mpu.bounds_app_below());
    }

    #[test]
    fn builtin_profiles_are_valid_and_distinct() {
        let platforms = builtin_platforms();
        assert_eq!(platforms.len(), 5, "five built-in profiles");
        let mut names: Vec<_> = platforms.iter().map(|p| p.name.clone()).collect();
        for p in &platforms {
            p.validate().unwrap();
        }
        names.sort();
        names.dedup();
        assert_eq!(names.len(), platforms.len(), "platform names are unique");
    }

    #[test]
    fn profile_types_match_their_specs() {
        assert_eq!(Msp430Fr5969.spec().name, Msp430Fr5969.name());
        assert!(Msp430Fr5994.spec().mpu.is_region_based());
        assert!(!Msp430Fr5969.spec().mpu.is_region_based());
        assert_eq!(Msp430Fr5969AdvancedMpu.spec().mpu.main_segments(), 4);
        assert!(RiscvPmp.spec().mpu.is_napot());
        assert!(CortexM33.spec().mpu.covers_peripherals());
        assert_eq!(CortexM33.spec().mpu.main_segments(), 16);
    }

    #[test]
    fn display_names_the_shape() {
        let seg = MpuModel::Segmented {
            main_segments: 3,
            boundary_granularity: 0x400,
        };
        assert!(seg.to_string().contains("segmented"));
        assert!(MpuModel::tock_region(8, 0x100)
            .to_string()
            .contains("region"));
        assert!(MpuModel::riscv_pmp_napot(8, 0x40)
            .to_string()
            .contains("NAPOT"));
        assert!(MpuModel::cortex_m33_region(16)
            .to_string()
            .contains("peripheral jurisdiction"));
    }
}
