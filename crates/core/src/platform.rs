//! The platform abstraction layer: MPU capability models, per-platform
//! cycle-cost tables, and the [`Platform`] trait that the planner, the MPU
//! plans, the context-switch plans and the overhead model are generic over.
//!
//! The paper evaluates one device — the MSP430FR5969, whose MPU divides
//! main memory into three **segments** separated by two movable boundaries —
//! but its isolation methods are general.  Other MCU families (Tock's
//! Cortex-M targets, for instance) expose **region-based** MPUs instead:
//! a handful of independent base/limit regions with per-region permissions
//! and deny-by-default semantics over the memory they police.  [`MpuModel`]
//! captures both shapes so every policy layer above can ask *what the
//! hardware can express* instead of assuming the FR5969.

use std::fmt;

/// How many hardware regions a region-based MPU spends on the running
/// application (its code region and its data/stack region).
pub const REGION_MPU_APP_REGIONS: u32 = 2;

/// How many hardware regions a region-based MPU spends while the OS runs
/// (OS code, OS data, SRAM with the OS stack, and the whole application
/// area).
pub const REGION_MPU_OS_REGIONS: u32 = 4;

/// Register writes needed to program one region of a region-based MPU
/// (select the region, then write its base and its limit/attribute word).
pub const REGION_MPU_WRITES_PER_REGION: u32 = 3;

/// The MPU capability model of a platform: what protection shapes the
/// hardware can express, and at what configuration cost.
///
/// ```
/// use amulet_core::platform::MpuModel;
///
/// let fr5969 = MpuModel::Segmented { main_segments: 3, boundary_granularity: 0x400 };
/// let region = MpuModel::Region { regions: 8, alignment: 0x100 };
/// // Three segments cannot bound the running app from below — which is
/// // exactly why the paper's MPU method keeps a software lower-bound
/// // check; region hardware bounds both sides.
/// assert!(!fr5969.bounds_app_below());
/// assert!(region.bounds_app_below());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpuModel {
    /// FR5969-style segmented MPU: `main_segments` segments over main
    /// memory, separated by movable boundaries that must fall on
    /// `boundary_granularity`-byte marks.  Memory outside main FRAM and
    /// InfoMem is not policed at all, and configuration sits behind a
    /// password-protected register protocol.
    Segmented {
        /// Number of main-memory segments with movable boundaries (3 on the
        /// FR5969; 4 in the "advanced MPU" ablation).
        main_segments: usize,
        /// Granularity of the movable boundaries, in bytes.
        boundary_granularity: u32,
    },
    /// Tock/Cortex-M-style region MPU: `regions` independent base/limit
    /// regions with per-region R/W/X permissions.  Within its jurisdiction
    /// (main FRAM, InfoMem *and* SRAM in this model, like its Cortex-M
    /// inspirations) any access not granted by a region is **denied** —
    /// full coverage, unlike the segmented part.
    Region {
        /// Number of region slots the hardware provides.
        regions: usize,
        /// Alignment required of region bases and limits, in bytes.
        alignment: u32,
    },
}

impl MpuModel {
    /// The alignment that app bounds (`D_i`, `T_i`) must satisfy so the MPU
    /// can bracket the app: boundary granularity for segmented MPUs, region
    /// alignment for region MPUs.
    pub fn boundary_granularity(&self) -> u32 {
        match self {
            MpuModel::Segmented {
                boundary_granularity,
                ..
            } => *boundary_granularity,
            MpuModel::Region { alignment, .. } => *alignment,
        }
    }

    /// How many distinct protection slots the hardware offers (segments or
    /// regions).
    pub fn main_segments(&self) -> usize {
        match self {
            MpuModel::Segmented { main_segments, .. } => *main_segments,
            MpuModel::Region { regions, .. } => *regions,
        }
    }

    /// Whether this is a region-based (full-coverage, deny-by-default) MPU.
    pub fn is_region_based(&self) -> bool {
        matches!(self, MpuModel::Region { .. })
    }

    /// Whether the hardware can bound the running app from **below** as
    /// well as above.  The FR5969's three segments cannot (the segment
    /// below the app's data must stay executable for the app's own code),
    /// which is why the paper's MPU method still inserts lower-bound
    /// checks in software; four segments or a region MPU can.
    pub fn bounds_app_below(&self) -> bool {
        match self {
            MpuModel::Segmented { main_segments, .. } => *main_segments >= 4,
            MpuModel::Region { .. } => true,
        }
    }

    /// Peripheral-register writes the OS performs to install the
    /// configuration for a *running application*.
    pub fn config_writes_for_app(&self) -> u32 {
        match self {
            // SEGB1, SEGB2, SAM, CTL0 — the FR5969 sequence from the paper.
            MpuModel::Segmented { .. } => 4,
            // RNR/RBAR/RLAR per app region, then the control word.
            MpuModel::Region { .. } => REGION_MPU_APP_REGIONS * REGION_MPU_WRITES_PER_REGION + 1,
        }
    }

    /// Peripheral-register writes the OS performs to install its *own*
    /// configuration when an app traps into it.
    pub fn config_writes_for_os(&self) -> u32 {
        match self {
            MpuModel::Segmented { .. } => 4,
            MpuModel::Region { .. } => REGION_MPU_OS_REGIONS * REGION_MPU_WRITES_PER_REGION + 1,
        }
    }

    /// Extra cycles of protocol overhead per reconfiguration (the segmented
    /// part's password dance; region MPUs have none).
    pub fn unlock_overhead_cycles(&self) -> u64 {
        match self {
            MpuModel::Segmented { .. } => 2,
            MpuModel::Region { .. } => 0,
        }
    }
}

impl fmt::Display for MpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpuModel::Segmented {
                main_segments,
                boundary_granularity,
            } => write!(
                f,
                "segmented MPU ({main_segments} segments, {boundary_granularity}-byte boundaries)"
            ),
            MpuModel::Region { regions, alignment } => {
                write!(
                    f,
                    "region MPU ({regions} regions, {alignment}-byte alignment)"
                )
            }
        }
    }
}

/// Electrical parameters of a platform, kept in integer units so
/// `PlatformSpec` stays `Eq`; [`crate::energy::EnergyModel::for_platform`]
/// derives its floating-point model from these.  The defaults are the
/// MSP430FR5969's datasheet figures (16 MHz, ≈100 µA/MHz, 3 V; LPM3 with
/// the RTC running draws ≈0.7 µA).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnergyParams {
    /// CPU clock frequency in Hz.
    pub frequency_hz: u64,
    /// Active-mode supply current in microamperes at that frequency.
    pub active_current_ua: u32,
    /// Low-power-mode (sleep) supply current in **nanoamperes** — the draw
    /// between events, when the CPU is stopped and only the RTC/wakeup
    /// logic runs.  Nanoamperes because LPM3-class currents are fractions
    /// of a microampere.
    pub lpm_current_na: u32,
    /// Supply voltage in millivolts.
    pub supply_millivolts: u32,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            frequency_hz: 16_000_000,
            active_current_ua: 1600,
            lpm_current_na: 700,
            supply_millivolts: 3000,
        }
    }
}

/// Per-platform cycle costs used by the analytic models.  The defaults are
/// the MSP430-flavoured constants that reproduce the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleCostTable {
    /// Cycles per peripheral-register write (MPU reconfiguration traffic).
    pub reg_write_cycles: u64,
    /// Baseline cycles of one application data-memory access under No
    /// Isolation (Table 1's 23-cycle figure).
    pub memory_access_baseline: u64,
    /// Baseline cycles of one OS API-call round trip under No Isolation
    /// (Table 1's 90-cycle figure).
    pub context_switch_baseline: u64,
}

impl Default for CycleCostTable {
    fn default() -> Self {
        CycleCostTable {
            reg_write_cycles: 5,
            memory_access_baseline: 23,
            context_switch_baseline: 90,
        }
    }
}

impl CycleCostTable {
    /// Cycles to install `mpu`'s configuration for a running app.
    pub fn mpu_config_cycles_for_app(&self, mpu: &MpuModel) -> u64 {
        mpu.config_writes_for_app() as u64 * self.reg_write_cycles + mpu.unlock_overhead_cycles()
    }

    /// Cycles to install `mpu`'s configuration for the OS itself.
    pub fn mpu_config_cycles_for_os(&self, mpu: &MpuModel) -> u64 {
        mpu.config_writes_for_os() as u64 * self.reg_write_cycles + mpu.unlock_overhead_cycles()
    }
}

/// A hardware platform the isolation policies can target: memory geometry,
/// MPU capability model, and cycle costs.
///
/// Concrete profiles ([`Msp430Fr5969`], [`Msp430Fr5994`], …) implement this
/// trait, and so does [`crate::layout::PlatformSpec`] itself, so APIs can
/// accept either a profile type or an already-materialised spec.
///
/// The whole policy stack is parameterised over it — the same app builds an
/// [`crate::mpu_plan::MpuPlan`] in whichever register shape the platform's
/// MPU speaks:
///
/// ```
/// use amulet_core::layout::{AppImageSpec, MemoryMapPlanner, OsImageSpec};
/// use amulet_core::mpu_plan::{MpuConfig, MpuPlan};
/// use amulet_core::platform::{Msp430Fr5969, Msp430Fr5994, Platform};
///
/// for spec in [Msp430Fr5969.spec(), Msp430Fr5994.spec()] {
///     let map = MemoryMapPlanner::for_platform(&spec)
///         .unwrap()
///         .plan(
///             &OsImageSpec::default(),
///             &[AppImageSpec::new("App", 0x400, 0x100, 0x80)],
///         )
///         .unwrap();
///     let config = MpuPlan::for_app_on(&map, 0).unwrap().config(&spec.mpu);
///     match (spec.mpu.is_region_based(), &config) {
///         (false, MpuConfig::Segmented(_)) => {} // FR5969: SEGB1/SEGB2/SAM/CTL0
///         (true, MpuConfig::Region(_)) => {}     // FR5994 profile: RNR/RBAR/RLAR
///         other => panic!("plan shape must follow the MPU model: {other:?}"),
///     }
///     assert!(config.write_count() >= 4);
/// }
/// ```
pub trait Platform {
    /// The full data description of the platform.
    fn spec(&self) -> crate::layout::PlatformSpec;

    /// The platform's name (stable identifier used in reports).
    fn name(&self) -> String {
        self.spec().name
    }
}

/// The TI MSP430FR5969 as used by the Amulet wearable: 2 KiB SRAM, 48 KiB
/// FRAM, and the paper's two-boundary segmented MPU.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Msp430Fr5969;

impl Platform for Msp430Fr5969 {
    fn spec(&self) -> crate::layout::PlatformSpec {
        crate::layout::PlatformSpec::msp430fr5969()
    }
}

/// The "advanced MPU" ablation variant of the FR5969: same memory map, but
/// a fourth segment lets hardware bound apps from below (§5 of the paper).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Msp430Fr5969AdvancedMpu;

impl Platform for Msp430Fr5969AdvancedMpu {
    fn spec(&self) -> crate::layout::PlatformSpec {
        crate::layout::PlatformSpec::msp430fr5969_advanced_mpu()
    }
}

/// An MSP430FR5994-class device: the larger-memory sibling (4 KiB SRAM in
/// place of 2 KiB — the simulator models the lower 64 KiB window of its
/// address space, since the modelled CPU core is 16-bit) fitted with a
/// Tock/Cortex-M-style region MPU of eight 256-byte-aligned regions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Msp430Fr5994;

impl Platform for Msp430Fr5994 {
    fn spec(&self) -> crate::layout::PlatformSpec {
        crate::layout::PlatformSpec::msp430fr5994()
    }
}

/// Every built-in platform profile, for cross-platform test sweeps and the
/// platform-comparison bench.
pub fn builtin_platforms() -> Vec<crate::layout::PlatformSpec> {
    vec![
        crate::layout::PlatformSpec::msp430fr5969(),
        crate::layout::PlatformSpec::msp430fr5969_advanced_mpu(),
        crate::layout::PlatformSpec::msp430fr5994(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmented_model_matches_fr5969_costs() {
        let mpu = MpuModel::Segmented {
            main_segments: 3,
            boundary_granularity: 0x400,
        };
        let costs = CycleCostTable::default();
        // 4 writes × 5 cycles + 2 unlock cycles = the 22-cycle ConfigureMpu
        // step that reproduces Table 1's 142-cycle MPU context switch.
        assert_eq!(costs.mpu_config_cycles_for_app(&mpu), 22);
        assert_eq!(costs.mpu_config_cycles_for_os(&mpu), 22);
        assert!(!mpu.bounds_app_below());
        assert!(!mpu.is_region_based());
    }

    #[test]
    fn region_model_costs_scale_with_region_count() {
        let mpu = MpuModel::Region {
            regions: 8,
            alignment: 0x100,
        };
        let costs = CycleCostTable::default();
        // 2 app regions × 3 writes + control = 7 writes, no password dance.
        assert_eq!(costs.mpu_config_cycles_for_app(&mpu), 35);
        // 4 OS regions (code, data, SRAM, app area) × 3 writes + control.
        assert_eq!(costs.mpu_config_cycles_for_os(&mpu), 65);
        assert!(mpu.bounds_app_below());
        assert!(mpu.is_region_based());
        assert_eq!(mpu.boundary_granularity(), 0x100);
    }

    #[test]
    fn advanced_segmented_mpu_bounds_below() {
        let mpu = MpuModel::Segmented {
            main_segments: 4,
            boundary_granularity: 0x400,
        };
        assert!(mpu.bounds_app_below());
    }

    #[test]
    fn builtin_profiles_are_valid_and_distinct() {
        let platforms = builtin_platforms();
        assert!(platforms.len() >= 3);
        let mut names: Vec<_> = platforms.iter().map(|p| p.name.clone()).collect();
        for p in &platforms {
            p.validate().unwrap();
        }
        names.sort();
        names.dedup();
        assert_eq!(names.len(), platforms.len(), "platform names are unique");
    }

    #[test]
    fn profile_types_match_their_specs() {
        assert_eq!(Msp430Fr5969.spec().name, Msp430Fr5969.name());
        assert!(Msp430Fr5994.spec().mpu.is_region_based());
        assert!(!Msp430Fr5969.spec().mpu.is_region_based());
        assert_eq!(Msp430Fr5969AdvancedMpu.spec().mpu.main_segments(), 4);
    }

    #[test]
    fn display_names_the_shape() {
        let seg = MpuModel::Segmented {
            main_segments: 3,
            boundary_granularity: 0x400,
        };
        let reg = MpuModel::Region {
            regions: 8,
            alignment: 0x100,
        };
        assert!(seg.to_string().contains("segmented"));
        assert!(reg.to_string().contains("region"));
    }
}
