//! Hand-rolled, versioned binary serialization for the plan types.
//!
//! The offline build environment has no `serde`, so the on-disk firmware
//! store (see `amulet-fleet`) uses a small hand-written little-endian
//! format instead: this module provides the byte-level [`Writer`] /
//! [`Reader`] primitives, the shared [`DecodeError`], and [`Codec`]
//! implementations for every *policy* type a persisted firmware image
//! embeds — address ranges, permissions, isolation methods, platform
//! specs, memory maps, MPU plans and MPU register configurations.  The
//! *mechanism* types (instructions, instruction stores, firmware images)
//! implement [`Codec`] in `amulet_mcu::serial` on top of these
//! primitives.
//!
//! Design rules, enforced by the format-hardening battery in
//! `amulet-mcu`'s tests:
//!
//! * **Total decoding.**  Every decode path is bounds-checked and returns
//!   a typed [`DecodeError`] on truncated, corrupted or out-of-range
//!   input — never a panic.  Constructors that panic on invalid input
//!   (e.g. [`AddrRange::new`]) are only called after the decoded values
//!   have been validated.
//! * **Canonical encoding.**  Encoding is a pure function of the value
//!   (collections are written in their deterministic iteration order), so
//!   `encode(decode(encode(x))) == encode(x)` byte for byte — the
//!   idempotence property the round-trip tests pin.
//! * **No silent allocation bombs.**  Sequence lengths are validated
//!   against the bytes actually remaining before any allocation.

use crate::addr::{Addr, AddrRange, ADDRESS_SPACE_END};
use crate::layout::{AppPlacement, MemoryMap, PlatformSpec};
use crate::method::IsolationMethod;
use crate::mpu_plan::{
    MpuConfig, MpuContext, MpuPlan, MpuRegisterValues, MpuSegmentPlan, PmpRegisterValues,
    RegionDesc, RegionRegisterValues, SegmentRole,
};
use crate::perm::Perm;
use crate::platform::{CycleCostTable, EnergyParams, MpuModel, RegionConstraints, SizeRule};
use std::fmt;

/// FNV-1a 64-bit hash — the stable content hash the firmware store keys
/// files by and the envelope integrity check uses.  Any single-byte
/// change to the input changes the hash (each round is `h = (h ^ b) * p`
/// with an odd `p`, which is injective modulo 2⁶⁴).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a decode failed.  Every variant is a *refusal*: the bytes are
/// rejected and no partially-constructed value escapes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before a field could be read in full.
    UnexpectedEof {
        /// What was being read.
        what: &'static str,
        /// Bytes the field needed.
        wanted: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// An enum tag byte named no variant.
    BadTag {
        /// The enum being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length prefix exceeded what the remaining input could hold.
    BadLength {
        /// The sequence being decoded.
        what: &'static str,
        /// The declared element count or byte length.
        len: u64,
    },
    /// A length-prefixed string held invalid UTF-8.
    BadUtf8,
    /// A decoded value violated its type's invariant (e.g. an inverted
    /// address range, an odd instruction address).
    BadValue {
        /// What invariant was violated.
        what: &'static str,
    },
    /// The envelope's magic bytes did not match.
    BadMagic,
    /// The envelope's format version is not one this build reads.
    UnsupportedVersion {
        /// The version the envelope declared.
        version: u16,
    },
    /// The envelope's content hash did not match the body.
    HashMismatch {
        /// Hash the envelope declared.
        expected: u64,
        /// Hash of the bytes actually present.
        actual: u64,
    },
    /// Bytes were left over after the value decoded in full.
    TrailingBytes {
        /// How many bytes were left.
        count: usize,
    },
    /// The key embedded in the envelope was not the key asked for.
    KeyMismatch {
        /// Key the caller expected.
        expected: String,
        /// Key the envelope carried.
        actual: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { what, wanted, have } => {
                write!(
                    f,
                    "unexpected end of input reading {what}: wanted {wanted} bytes, have {have}"
                )
            }
            DecodeError::BadTag { what, tag } => write!(f, "invalid {what} tag {tag:#04x}"),
            DecodeError::BadLength { what, len } => {
                write!(f, "{what} length {len} exceeds the remaining input")
            }
            DecodeError::BadUtf8 => write!(f, "string field holds invalid UTF-8"),
            DecodeError::BadValue { what } => write!(f, "invalid value: {what}"),
            DecodeError::BadMagic => write!(f, "bad magic bytes (not a firmware image)"),
            DecodeError::UnsupportedVersion { version } => {
                write!(f, "unsupported format version {version}")
            }
            DecodeError::HashMismatch { expected, actual } => {
                write!(f, "content hash mismatch: envelope says {expected:#018x}, body hashes to {actual:#018x}")
            }
            DecodeError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the value")
            }
            DecodeError::KeyMismatch { expected, actual } => {
                write!(f, "stored image is for key {actual:?}, not {expected:?}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Little-endian byte sink for encoding.
#[derive(Default, Debug)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i16`.
    pub fn i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u32` (every persisted count/index in the
    /// workspace is tiny; a value that does not fit is a programming
    /// error on the encode side, never reachable from decoded input).
    pub fn usize(&mut self, v: usize) {
        self.u32(u32::try_from(v).expect("persisted usize field exceeds u32"));
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed byte slice.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Appends raw bytes with no length prefix.
    pub fn raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Bounds-checked little-endian reader for decoding.  Every `take_*`
/// method returns [`DecodeError::UnexpectedEof`] instead of reading past
/// the end.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                what,
                wanted: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, DecodeError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i16`.
    pub fn i16(&mut self, what: &'static str) -> Result<i16, DecodeError> {
        let b = self.take(2, what)?;
        Ok(i16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `usize` encoded as a `u32`.
    pub fn usize(&mut self, what: &'static str) -> Result<usize, DecodeError> {
        Ok(self.u32(what)? as usize)
    }

    /// Reads a `bool`, rejecting anything but 0 and 1.
    pub fn bool(&mut self, what: &'static str) -> Result<bool, DecodeError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::BadValue { what }),
        }
    }

    /// Reads a sequence length, rejecting counts the remaining input
    /// cannot possibly hold (`min_elem_bytes` is the smallest encoding of
    /// one element) — the guard that keeps corrupted length prefixes from
    /// becoming allocation bombs.
    pub fn seq_len(
        &mut self,
        what: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, DecodeError> {
        let len = self.u32(what)? as u64;
        let need = len.saturating_mul(min_elem_bytes.max(1) as u64);
        if need > self.remaining() as u64 {
            return Err(DecodeError::BadLength { what, len });
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, DecodeError> {
        let len = self.u32(what)? as u64;
        if len > self.remaining() as u64 {
            return Err(DecodeError::BadLength { what, len });
        }
        let bytes = self.take(len as usize, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    /// Reads a length-prefixed byte vector.
    pub fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32(what)? as u64;
        if len > self.remaining() as u64 {
            return Err(DecodeError::BadLength { what, len });
        }
        Ok(self.take(len as usize, what)?.to_vec())
    }

    /// Succeeds only if every byte has been consumed — the trailing-bytes
    /// rejection every top-level decode ends with.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }
}

/// A type with a canonical binary encoding.
///
/// `encode` is infallible (every in-memory value is encodable); `decode`
/// is **total** — it returns a [`DecodeError`] for any byte sequence that
/// is not a valid encoding, and never panics.
pub trait Codec: Sized {
    /// Appends this value's canonical encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Decodes one value from the reader's current position.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Encodes this value into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a value that must span exactly the whole input.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

/// Encodes a slice as a length-prefixed sequence.
pub fn encode_seq<T: Codec>(items: &[T], w: &mut Writer) {
    w.usize(items.len());
    for item in items {
        item.encode(w);
    }
}

/// Decodes a length-prefixed sequence; `min_elem_bytes` bounds the
/// declared count against the remaining input.
pub fn decode_seq<T: Codec>(
    r: &mut Reader<'_>,
    what: &'static str,
    min_elem_bytes: usize,
) -> Result<Vec<T>, DecodeError> {
    let len = r.seq_len(what, min_elem_bytes)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

impl Codec for AddrRange {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.start);
        w.u32(self.end);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let start = r.u32("address range start")?;
        let end = r.u32("address range end")?;
        // `AddrRange::new` panics on exactly these conditions, so they are
        // checked here first; after the check the constructor cannot fire.
        if start > end || end > ADDRESS_SPACE_END {
            return Err(DecodeError::BadValue {
                what: "address range (start > end or beyond the 64 KiB space)",
            });
        }
        Ok(AddrRange::new(start, end))
    }
}

impl Codec for Perm {
    fn encode(&self, w: &mut Writer) {
        w.u8(self.to_bits() as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let bits = r.u8("permission bits")?;
        if bits >= 8 {
            return Err(DecodeError::BadValue {
                what: "permission bits (only R/W/X defined)",
            });
        }
        Ok(Perm::from_bits(bits as u16))
    }
}

impl Codec for IsolationMethod {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            IsolationMethod::NoIsolation => 0,
            IsolationMethod::FeatureLimited => 1,
            IsolationMethod::Mpu => 2,
            IsolationMethod::SoftwareOnly => 3,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8("isolation method")? {
            0 => Ok(IsolationMethod::NoIsolation),
            1 => Ok(IsolationMethod::FeatureLimited),
            2 => Ok(IsolationMethod::Mpu),
            3 => Ok(IsolationMethod::SoftwareOnly),
            tag => Err(DecodeError::BadTag {
                what: "isolation method",
                tag,
            }),
        }
    }
}

impl Codec for SizeRule {
    fn encode(&self, w: &mut Writer) {
        match self {
            SizeRule::AnyAligned { align } => {
                w.u8(0);
                w.u32(*align);
            }
            SizeRule::NapotPow2 { min } => {
                w.u8(1);
                w.u32(*min);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8("size rule")? {
            0 => Ok(SizeRule::AnyAligned {
                align: r.u32("alignment")?,
            }),
            1 => Ok(SizeRule::NapotPow2 {
                min: r.u32("minimum NAPOT size")?,
            }),
            tag => Err(DecodeError::BadTag {
                what: "size rule",
                tag,
            }),
        }
    }
}

impl Codec for RegionConstraints {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.regions);
        self.size_rule.encode(w);
        w.bool(self.covers_peripherals);
        w.u32(self.writes_per_region);
        w.u32(self.control_writes);
        w.bool(self.privileged_bypass);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RegionConstraints {
            regions: r.usize("region count")?,
            size_rule: SizeRule::decode(r)?,
            covers_peripherals: r.bool("covers_peripherals")?,
            writes_per_region: r.u32("writes_per_region")?,
            control_writes: r.u32("control_writes")?,
            privileged_bypass: r.bool("privileged_bypass")?,
        })
    }
}

impl Codec for MpuModel {
    fn encode(&self, w: &mut Writer) {
        match self {
            MpuModel::Segmented {
                main_segments,
                boundary_granularity,
            } => {
                w.u8(0);
                w.usize(*main_segments);
                w.u32(*boundary_granularity);
            }
            MpuModel::Region(c) => {
                w.u8(1);
                c.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8("MPU model")? {
            0 => Ok(MpuModel::Segmented {
                main_segments: r.usize("main segment count")?,
                boundary_granularity: r.u32("boundary granularity")?,
            }),
            1 => Ok(MpuModel::Region(RegionConstraints::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "MPU model",
                tag,
            }),
        }
    }
}

impl Codec for CycleCostTable {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.reg_write_cycles);
        w.u64(self.memory_access_baseline);
        w.u64(self.context_switch_baseline);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(CycleCostTable {
            reg_write_cycles: r.u64("reg_write_cycles")?,
            memory_access_baseline: r.u64("memory_access_baseline")?,
            context_switch_baseline: r.u64("context_switch_baseline")?,
        })
    }
}

impl Codec for EnergyParams {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.frequency_hz);
        w.u32(self.active_current_ua);
        w.u32(self.lpm_current_na);
        w.u32(self.supply_millivolts);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EnergyParams {
            frequency_hz: r.u64("frequency_hz")?,
            active_current_ua: r.u32("active_current_ua")?,
            lpm_current_na: r.u32("lpm_current_na")?,
            supply_millivolts: r.u32("supply_millivolts")?,
        })
    }
}

impl Codec for PlatformSpec {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.name);
        self.peripherals.encode(w);
        self.bootstrap_loader.encode(w);
        self.info_mem.encode(w);
        self.sram.encode(w);
        self.fram.encode(w);
        self.interrupt_vectors.encode(w);
        self.mpu.encode(w);
        self.costs.encode(w);
        self.energy.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PlatformSpec {
            name: r.str("platform name")?,
            peripherals: AddrRange::decode(r)?,
            bootstrap_loader: AddrRange::decode(r)?,
            info_mem: AddrRange::decode(r)?,
            sram: AddrRange::decode(r)?,
            fram: AddrRange::decode(r)?,
            interrupt_vectors: AddrRange::decode(r)?,
            mpu: MpuModel::decode(r)?,
            costs: CycleCostTable::decode(r)?,
            energy: EnergyParams::decode(r)?,
        })
    }
}

impl Codec for AppPlacement {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.name);
        w.usize(self.index);
        self.code.encode(w);
        self.stack.encode(w);
        w.u32(self.padding_bytes);
        self.data.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AppPlacement {
            name: r.str("app name")?,
            index: r.usize("app index")?,
            code: AddrRange::decode(r)?,
            stack: AddrRange::decode(r)?,
            padding_bytes: r.u32("padding_bytes")?,
            data: AddrRange::decode(r)?,
        })
    }
}

impl Codec for MemoryMap {
    fn encode(&self, w: &mut Writer) {
        self.platform.encode(w);
        self.os_code.encode(w);
        self.os_data.encode(w);
        self.os_stack.encode(w);
        encode_seq(&self.apps, w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MemoryMap {
            platform: PlatformSpec::decode(r)?,
            os_code: AddrRange::decode(r)?,
            os_data: AddrRange::decode(r)?,
            os_stack: AddrRange::decode(r)?,
            apps: decode_seq(r, "app placements", 4)?,
        })
    }
}

impl Codec for MpuRegisterValues {
    fn encode(&self, w: &mut Writer) {
        w.u16(self.mpuctl0);
        w.u16(self.mpusegb1);
        w.u16(self.mpusegb2);
        w.u16(self.mpusam);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MpuRegisterValues {
            mpuctl0: r.u16("mpuctl0")?,
            mpusegb1: r.u16("mpusegb1")?,
            mpusegb2: r.u16("mpusegb2")?,
            mpusam: r.u16("mpusam")?,
        })
    }
}

impl Codec for RegionDesc {
    fn encode(&self, w: &mut Writer) {
        self.range.encode(w);
        self.perm.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RegionDesc {
            range: AddrRange::decode(r)?,
            perm: Perm::decode(r)?,
        })
    }
}

impl Codec for RegionRegisterValues {
    fn encode(&self, w: &mut Writer) {
        encode_seq(&self.regions, w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RegionRegisterValues {
            regions: decode_seq(r, "MPU regions", 9)?,
        })
    }
}

impl Codec for PmpRegisterValues {
    fn encode(&self, w: &mut Writer) {
        encode_seq(&self.entries, w);
        w.bool(self.user_mode);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PmpRegisterValues {
            entries: decode_seq(r, "PMP entries", 9)?,
            user_mode: r.bool("user_mode")?,
        })
    }
}

impl Codec for MpuConfig {
    fn encode(&self, w: &mut Writer) {
        match self {
            MpuConfig::Segmented(v) => {
                w.u8(0);
                v.encode(w);
            }
            MpuConfig::Region(v) => {
                w.u8(1);
                v.encode(w);
            }
            MpuConfig::Pmp(v) => {
                w.u8(2);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8("MPU config")? {
            0 => Ok(MpuConfig::Segmented(MpuRegisterValues::decode(r)?)),
            1 => Ok(MpuConfig::Region(RegionRegisterValues::decode(r)?)),
            2 => Ok(MpuConfig::Pmp(PmpRegisterValues::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "MPU config",
                tag,
            }),
        }
    }
}

impl Codec for SegmentRole {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            SegmentRole::InfoMem => 0,
            SegmentRole::BelowAppData => 1,
            SegmentRole::AppDataStack => 2,
            SegmentRole::AboveApp => 3,
            SegmentRole::OsCode => 4,
            SegmentRole::OsData => 5,
            SegmentRole::AppsRegion => 6,
            SegmentRole::AppCode => 7,
            SegmentRole::BelowAppBlocked => 8,
            SegmentRole::OsSram => 9,
            SegmentRole::OsPeripherals => 10,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8("segment role")? {
            0 => Ok(SegmentRole::InfoMem),
            1 => Ok(SegmentRole::BelowAppData),
            2 => Ok(SegmentRole::AppDataStack),
            3 => Ok(SegmentRole::AboveApp),
            4 => Ok(SegmentRole::OsCode),
            5 => Ok(SegmentRole::OsData),
            6 => Ok(SegmentRole::AppsRegion),
            7 => Ok(SegmentRole::AppCode),
            8 => Ok(SegmentRole::BelowAppBlocked),
            9 => Ok(SegmentRole::OsSram),
            10 => Ok(SegmentRole::OsPeripherals),
            tag => Err(DecodeError::BadTag {
                what: "segment role",
                tag,
            }),
        }
    }
}

impl Codec for MpuContext {
    fn encode(&self, w: &mut Writer) {
        match self {
            MpuContext::OsRunning => w.u8(0),
            MpuContext::AppRunning { name, index } => {
                w.u8(1);
                w.str(name);
                w.usize(*index);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8("MPU context")? {
            0 => Ok(MpuContext::OsRunning),
            1 => Ok(MpuContext::AppRunning {
                name: r.str("app name")?,
                index: r.usize("app index")?,
            }),
            tag => Err(DecodeError::BadTag {
                what: "MPU context",
                tag,
            }),
        }
    }
}

impl Codec for MpuSegmentPlan {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.index);
        self.range.encode(w);
        self.perm.encode(w);
        self.role.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MpuSegmentPlan {
            index: r.usize("segment index")?,
            range: AddrRange::decode(r)?,
            perm: Perm::decode(r)?,
            role: SegmentRole::decode(r)?,
        })
    }
}

impl Codec for MpuPlan {
    fn encode(&self, w: &mut Writer) {
        self.context.encode(w);
        encode_seq(&self.segments, w);
        w.u32(self.boundary1);
        w.u32(self.boundary2);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MpuPlan {
            context: MpuContext::decode(r)?,
            segments: decode_seq(r, "segment plans", 14)?,
            boundary1: r.u32("boundary1")?,
            boundary2: r.u32("boundary2")?,
        })
    }
}

/// `Option<u32>` — used by persisted optional size estimates.
impl Codec for Option<u32> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                w.u32(*v);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8("optional u32")? {
            0 => Ok(None),
            1 => Ok(Some(r.u32("optional u32 value")?)),
            tag => Err(DecodeError::BadTag {
                what: "optional u32",
                tag,
            }),
        }
    }
}

/// `(String, Addr)` pairs — the encoding of symbol and handler tables.
impl Codec for (String, Addr) {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.0);
        w.u32(self.1);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((r.str("symbol name")?, r.u32("symbol address")?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AppImageSpec, MemoryMapPlanner, OsImageSpec};
    use crate::platform::builtin_platforms;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = value.to_bytes();
        let back = T::from_bytes(&bytes).expect("roundtrip decode");
        assert_eq!(&back, value);
        assert_eq!(back.to_bytes(), bytes, "re-encoding is byte-identical");
    }

    #[test]
    fn platform_specs_round_trip() {
        for p in builtin_platforms() {
            roundtrip(&p);
        }
    }

    #[test]
    fn memory_maps_and_plans_round_trip() {
        for p in builtin_platforms() {
            let map = MemoryMapPlanner::new(p)
                .unwrap()
                .plan(
                    &OsImageSpec::default(),
                    &[
                        AppImageSpec::new("A", 0x400, 0x100, 0x80),
                        AppImageSpec::new("B", 0x200, 0x80, 0x80),
                    ],
                )
                .unwrap();
            roundtrip(&map);
            let os_plan = MpuPlan::for_os_on(&map).unwrap();
            roundtrip(&os_plan);
            roundtrip(&os_plan.config(&map.platform.mpu));
            for i in 0..map.apps.len() {
                let plan = MpuPlan::for_app_on(&map, i).unwrap();
                roundtrip(&plan);
                roundtrip(&plan.config(&map.platform.mpu));
            }
        }
    }

    #[test]
    fn simple_values_round_trip() {
        roundtrip(&AddrRange::new(0x4400, 0x5000));
        roundtrip(&AddrRange::new(0, 0));
        for bits in 0u16..8 {
            roundtrip(&Perm::from_bits(bits));
        }
        for m in IsolationMethod::ALL {
            roundtrip(&m);
        }
        roundtrip(&None::<u32>);
        roundtrip(&Some(0x40u32));
        roundtrip(&("A::main".to_string(), 0x4400u32));
    }

    #[test]
    fn invalid_ranges_tags_and_bools_are_refused() {
        // Inverted range.
        let mut w = Writer::new();
        w.u32(0x5000);
        w.u32(0x4400);
        assert!(matches!(
            AddrRange::from_bytes(&w.into_bytes()),
            Err(DecodeError::BadValue { .. })
        ));
        // Range past the 64 KiB space (the AddrRange::new panic condition).
        let mut w = Writer::new();
        w.u32(0);
        w.u32(0x2_0000);
        assert!(matches!(
            AddrRange::from_bytes(&w.into_bytes()),
            Err(DecodeError::BadValue { .. })
        ));
        // Unknown enum tag.
        assert!(matches!(
            IsolationMethod::from_bytes(&[9]),
            Err(DecodeError::BadTag { .. })
        ));
        // Non-boolean bool.
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.bool("flag"), Err(DecodeError::BadValue { .. })));
        // Permission bits outside R/W/X.
        assert!(matches!(
            Perm::from_bytes(&[8]),
            Err(DecodeError::BadValue { .. })
        ));
    }

    #[test]
    fn length_prefixes_cannot_allocate_past_the_input() {
        // A sequence claiming 2^31 elements with 4 bytes of input.
        let mut w = Writer::new();
        w.u32(0x8000_0000);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            decode_seq::<AddrRange>(&mut r, "ranges", 8),
            Err(DecodeError::BadLength { .. })
        ));
        // A string claiming more bytes than remain.
        let mut w = Writer::new();
        w.u32(100);
        w.raw(b"short");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str("name"), Err(DecodeError::BadLength { .. })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = AddrRange::new(0, 0x100).to_bytes();
        bytes.push(0);
        assert!(matches!(
            AddrRange::from_bytes(&bytes),
            Err(DecodeError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
