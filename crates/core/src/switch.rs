//! Context-switch plans.
//!
//! Every transition between the OS and an application (an event delivery or a
//! system-API call) has a method-dependent cost:
//!
//! * under **No Isolation** and **Feature Limited** the OS and the app share
//!   one stack and the MPU is unused, so a switch is just the trap / dispatch
//!   / save / restore machinery;
//! * under **Software Only** each app has its own stack, so the stack pointer
//!   must additionally be swapped in each direction;
//! * under **MPU** the stack pointer is swapped *and* the MPU is reprogrammed
//!   (boundary, access and control registers) in each direction — this is why
//!   Table 1 reports the MPU method's context switch as the most expensive
//!   (142 cycles vs. 90 for the baseline).
//!
//! [`ContextSwitchPlan`] lists the steps the OS performs; `amulet-os`
//! executes exactly these steps (charging their cycle costs and actually
//! writing the MPU registers through the simulated bus), and the analytic
//! overhead model sums them.

use crate::layout::PlatformSpec;
use crate::method::IsolationMethod;
use crate::mpu_plan::MpuRegisterValues;
use std::fmt;

/// Direction of a transition between the OS and an application.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SwitchDirection {
    /// The OS hands the CPU to an application (event delivery, or returning
    /// from a system call back into app code).
    OsToApp,
    /// An application enters the OS (system-API call or fault).
    AppToOs,
}

/// One step of a context switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwitchStep {
    /// Enter the trap/dispatch stub (call into the OS API veneer).
    TrapEntry,
    /// Save the caller's registers.
    SaveCallerState,
    /// Look up the event handler / service routine to invoke.
    DispatchHandler,
    /// Marshal call arguments between the app and the OS.
    MarshalArguments,
    /// Validate an application-supplied pointer argument against the app's
    /// bounds before the OS dereferences it (only charged when the call
    /// actually passes pointers).
    ValidatePointerArg,
    /// Switch the stack pointer to the OS stack in SRAM.
    SwitchStackToOs,
    /// Switch the stack pointer to the application's own stack.
    SwitchStackToApp,
    /// Reprogram the MPU (boundary registers, access bits, control register).
    ConfigureMpu,
    /// Restore the caller's registers.
    RestoreCallerState,
    /// Return to the caller.
    ReturnToCaller,
}

impl SwitchStep {
    /// Cycle cost of the step, using MSP430-flavoured costs (each MPU
    /// configuration is [`MpuRegisterValues::WRITE_COUNT`] peripheral-register
    /// writes at 5 cycles each plus the unlock sequence).
    pub fn cycle_cost(&self) -> u64 {
        match self {
            SwitchStep::TrapEntry => 10,
            SwitchStep::SaveCallerState => 22,
            SwitchStep::DispatchHandler => 16,
            SwitchStep::MarshalArguments => 12,
            SwitchStep::ValidatePointerArg => 10,
            SwitchStep::SwitchStackToOs => 4,
            SwitchStep::SwitchStackToApp => 4,
            SwitchStep::ConfigureMpu => 5 * MpuRegisterValues::WRITE_COUNT as u64 + 2,
            SwitchStep::RestoreCallerState => 22,
            SwitchStep::ReturnToCaller => 8,
        }
    }
}

impl fmt::Display for SwitchStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SwitchStep::TrapEntry => "trap entry",
            SwitchStep::SaveCallerState => "save caller state",
            SwitchStep::DispatchHandler => "dispatch handler",
            SwitchStep::MarshalArguments => "marshal arguments",
            SwitchStep::ValidatePointerArg => "validate pointer argument",
            SwitchStep::SwitchStackToOs => "switch to OS stack",
            SwitchStep::SwitchStackToApp => "switch to app stack",
            SwitchStep::ConfigureMpu => "reprogram MPU",
            SwitchStep::RestoreCallerState => "restore caller state",
            SwitchStep::ReturnToCaller => "return to caller",
        };
        f.write_str(s)
    }
}

/// The steps of one directed transition under a given isolation method.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContextSwitchPlan {
    /// Isolation method the plan belongs to.
    pub method: IsolationMethod,
    /// Direction of the transition.
    pub direction: SwitchDirection,
    /// Steps, in execution order.
    pub steps: Vec<SwitchStep>,
    /// Number of application-supplied pointer arguments that must be
    /// validated on entry to the OS (0 for the synthetic benchmark).
    pub pointer_args: u32,
    /// Cycles charged for the [`SwitchStep::ConfigureMpu`] step.  Installing
    /// an MPU configuration costs a platform-dependent number of register
    /// writes (4 on the FR5969's segmented MPU, more on a region MPU); the
    /// default is the FR5969's 22 cycles, which reproduces Table 1.
    pub mpu_config_cycles: u64,
}

impl ContextSwitchPlan {
    /// Builds the plan for one directed transition.
    ///
    /// `pointer_args` is the number of pointer arguments the call passes to
    /// the OS; the OS must bounds-check each of them before dereferencing
    /// (only relevant for methods that allow pointers at all).
    pub fn new(method: IsolationMethod, direction: SwitchDirection, pointer_args: u32) -> Self {
        use SwitchDirection::*;
        use SwitchStep::*;
        let mut steps = Vec::new();
        match direction {
            AppToOs => {
                steps.push(TrapEntry);
                steps.push(SaveCallerState);
                if method.uses_per_app_stacks() {
                    steps.push(SwitchStackToOs);
                }
                if method.uses_mpu() {
                    steps.push(ConfigureMpu);
                }
                steps.push(DispatchHandler);
                steps.push(MarshalArguments);
                if method.allows_pointers() && method.inserts_checks() {
                    for _ in 0..pointer_args {
                        steps.push(ValidatePointerArg);
                    }
                }
            }
            OsToApp => {
                if method.uses_mpu() {
                    steps.push(ConfigureMpu);
                }
                if method.uses_per_app_stacks() {
                    steps.push(SwitchStackToApp);
                }
                steps.push(RestoreCallerState);
                steps.push(ReturnToCaller);
            }
        }
        ContextSwitchPlan {
            method,
            direction,
            steps,
            pointer_args,
            mpu_config_cycles: SwitchStep::ConfigureMpu.cycle_cost(),
        }
    }

    /// Builds the plan for one directed transition on a specific platform:
    /// the step sequence is method-defined, but the MPU-reconfiguration
    /// cost comes from the platform's MPU model and cost table.  For the
    /// MSP430FR5969 this is identical to [`ContextSwitchPlan::new`].
    pub fn new_for(
        platform: &PlatformSpec,
        method: IsolationMethod,
        direction: SwitchDirection,
        pointer_args: u32,
    ) -> Self {
        let mut plan = Self::new(method, direction, pointer_args);
        plan.mpu_config_cycles = match direction {
            // Entering the OS installs the OS configuration; returning to
            // the app installs the app's.
            SwitchDirection::AppToOs => platform.costs.mpu_config_cycles_for_os(&platform.mpu),
            SwitchDirection::OsToApp => platform.costs.mpu_config_cycles_for_app(&platform.mpu),
        };
        plan
    }

    /// Total cycle cost of this directed transition.
    pub fn cycles(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                SwitchStep::ConfigureMpu => self.mpu_config_cycles,
                _ => s.cycle_cost(),
            })
            .sum()
    }

    /// Builds both halves of a full API-call round trip (app → OS → app),
    /// which is the "Context Switch" operation measured in Table 1.
    pub fn round_trip(method: IsolationMethod, pointer_args: u32) -> (Self, Self) {
        (
            Self::new(method, SwitchDirection::AppToOs, pointer_args),
            Self::new(method, SwitchDirection::OsToApp, pointer_args),
        )
    }

    /// Total cycles of a full round trip with no pointer arguments — the
    /// quantity reported in Table 1's "Context Switch" row.
    pub fn round_trip_cycles(method: IsolationMethod) -> u64 {
        let (enter, leave) = Self::round_trip(method, 0);
        enter.cycles() + leave.cycles()
    }

    /// Builds both halves of a round trip on a specific platform.
    pub fn round_trip_for(
        platform: &PlatformSpec,
        method: IsolationMethod,
        pointer_args: u32,
    ) -> (Self, Self) {
        (
            Self::new_for(platform, method, SwitchDirection::AppToOs, pointer_args),
            Self::new_for(platform, method, SwitchDirection::OsToApp, pointer_args),
        )
    }

    /// Round-trip cycles with no pointer arguments on a specific platform.
    pub fn round_trip_cycles_for(platform: &PlatformSpec, method: IsolationMethod) -> u64 {
        let (enter, leave) = Self::round_trip_for(platform, method, 0);
        enter.cycles() + leave.cycles()
    }

    /// Cycles of one **intra-batch delivery boundary** under batched event
    /// delivery: the handler-return trap plus the dispatch and argument
    /// marshalling of the next event of the same batch.
    ///
    /// Between two events of a batch the running application does not
    /// change, so the OS dispatch trampoline performs no register
    /// save/restore, no stack-pointer swap and no MPU reconfiguration —
    /// which is exactly the method- and platform-dependent part of a
    /// context switch.  The boundary cost is therefore the same for every
    /// isolation method and platform, and the per-event saving grows with
    /// the method's switch cost (largest for the MPU method on region-MPU
    /// platforms).
    pub fn batched_boundary_cycles() -> u64 {
        [
            SwitchStep::TrapEntry,
            SwitchStep::DispatchHandler,
            SwitchStep::MarshalArguments,
            SwitchStep::ReturnToCaller,
        ]
        .iter()
        .map(SwitchStep::cycle_cost)
        .sum()
    }
}

impl fmt::Display for ContextSwitchPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} context switch ({:?}), {} cycles:",
            self.method,
            self.direction,
            self.cycles()
        )?;
        for step in &self.steps {
            writeln!(f, "  - {step} ({} cycles)", step.cycle_cost())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_context_switch_costs() {
        // Table 1: No Isolation 90, Feature Limited 90, MPU 142, SW Only 98.
        assert_eq!(
            ContextSwitchPlan::round_trip_cycles(IsolationMethod::NoIsolation),
            90
        );
        assert_eq!(
            ContextSwitchPlan::round_trip_cycles(IsolationMethod::FeatureLimited),
            90
        );
        assert_eq!(
            ContextSwitchPlan::round_trip_cycles(IsolationMethod::Mpu),
            142
        );
        assert_eq!(
            ContextSwitchPlan::round_trip_cycles(IsolationMethod::SoftwareOnly),
            98
        );
    }

    #[test]
    fn mpu_switch_reconfigures_in_both_directions() {
        let (enter, leave) = ContextSwitchPlan::round_trip(IsolationMethod::Mpu, 0);
        assert!(enter.steps.contains(&SwitchStep::ConfigureMpu));
        assert!(leave.steps.contains(&SwitchStep::ConfigureMpu));
        assert!(enter.steps.contains(&SwitchStep::SwitchStackToOs));
        assert!(leave.steps.contains(&SwitchStep::SwitchStackToApp));
    }

    #[test]
    fn software_only_switches_stacks_but_not_mpu() {
        let (enter, leave) = ContextSwitchPlan::round_trip(IsolationMethod::SoftwareOnly, 0);
        assert!(!enter.steps.contains(&SwitchStep::ConfigureMpu));
        assert!(!leave.steps.contains(&SwitchStep::ConfigureMpu));
        assert!(enter.steps.contains(&SwitchStep::SwitchStackToOs));
        assert!(leave.steps.contains(&SwitchStep::SwitchStackToApp));
    }

    #[test]
    fn baseline_methods_share_a_stack() {
        for m in [
            IsolationMethod::NoIsolation,
            IsolationMethod::FeatureLimited,
        ] {
            let (enter, leave) = ContextSwitchPlan::round_trip(m, 0);
            assert!(!enter.steps.contains(&SwitchStep::SwitchStackToOs));
            assert!(!leave.steps.contains(&SwitchStep::SwitchStackToApp));
            assert!(!enter.steps.contains(&SwitchStep::ConfigureMpu));
        }
    }

    #[test]
    fn pointer_arguments_add_validation_only_for_pointer_methods() {
        let with_args = ContextSwitchPlan::new(IsolationMethod::Mpu, SwitchDirection::AppToOs, 2);
        let without = ContextSwitchPlan::new(IsolationMethod::Mpu, SwitchDirection::AppToOs, 0);
        assert_eq!(
            with_args.cycles(),
            without.cycles() + 2 * SwitchStep::ValidatePointerArg.cycle_cost()
        );
        // Feature Limited apps cannot pass pointers at all.
        let fl =
            ContextSwitchPlan::new(IsolationMethod::FeatureLimited, SwitchDirection::AppToOs, 2);
        assert!(!fl.steps.contains(&SwitchStep::ValidatePointerArg));
    }

    #[test]
    fn mpu_reconfig_cost_reflects_register_writes() {
        assert_eq!(
            SwitchStep::ConfigureMpu.cycle_cost(),
            5 * MpuRegisterValues::WRITE_COUNT as u64 + 2
        );
    }

    #[test]
    fn batched_boundary_is_cheaper_than_every_round_trip() {
        let boundary = ContextSwitchPlan::batched_boundary_cycles();
        assert_eq!(boundary, 10 + 16 + 12 + 8);
        for m in IsolationMethod::ALL {
            assert!(boundary < ContextSwitchPlan::round_trip_cycles(m), "{m}");
        }
    }

    #[test]
    fn display_lists_steps() {
        let plan = ContextSwitchPlan::new(IsolationMethod::Mpu, SwitchDirection::AppToOs, 1);
        let s = plan.to_string();
        assert!(s.contains("reprogram MPU"));
        assert!(s.contains("validate pointer argument"));
    }
}
