//! Property tests for the memory-map planner and MPU plans: for *any*
//! buildable set of applications, regions never overlap, every MPU boundary
//! is expressible, and the Figure-1 permission structure holds.

use amulet_core::layout::{AppImageSpec, MemoryMapPlanner, OsImageSpec};
use amulet_core::method::IsolationMethod;
use amulet_core::mpu_plan::MpuPlan;
use amulet_core::overhead::{OpCounts, OverheadModel};
use amulet_core::perm::Perm;
use amulet_core::platform::builtin_platforms;
use proptest::prelude::*;

fn app_spec_strategy(i: usize) -> impl Strategy<Value = AppImageSpec> {
    (0x20u32..0x1800, 0u32..0x400, 0x20u32..0x200).prop_map(move |(code, data, stack)| {
        AppImageSpec::new(format!("App{i}"), code, data, stack)
    })
}

fn apps_strategy() -> impl Strategy<Value = Vec<AppImageSpec>> {
    (1usize..=4).prop_flat_map(|n| (0..n).map(app_spec_strategy).collect::<Vec<_>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whenever the planner succeeds, the resulting map is internally
    /// consistent: validated, non-overlapping, properly ordered, and every
    /// app's bounds are MPU-expressible.
    #[test]
    fn planned_maps_are_consistent(apps in apps_strategy()) {
        let planner = MemoryMapPlanner::msp430fr5969();
        let Ok(map) = planner.plan(&OsImageSpec::default(), &apps) else {
            // Oversized builds may be rejected; that is not a property
            // violation.
            return Ok(());
        };
        prop_assert!(map.validate().is_ok());
        let g = map.platform.mpu_boundary_granularity();
        let mut prev_end = map.os_data.end;
        for app in &map.apps {
            prop_assert!(app.code.start >= prev_end);
            prop_assert!(app.code.end <= app.stack.start);
            prop_assert_eq!(app.stack.end, app.data.start);
            prop_assert_eq!(app.data_lower_bound() % g, 0);
            prop_assert_eq!(app.upper_bound() % g, 0);
            prop_assert!(app.footprint().len() >= app.code.len());
            prev_end = app.upper_bound();
        }
    }

    /// The Figure-1 MPU plan always grants an app read-write access to its
    /// own data/stack, denies any access to apps above it, and never lets it
    /// write below its data region.
    #[test]
    fn mpu_plans_enforce_figure1(apps in apps_strategy()) {
        let planner = MemoryMapPlanner::msp430fr5969();
        let Ok(map) = planner.plan(&OsImageSpec::default(), &apps) else { return Ok(()) };
        for (i, app) in map.apps.iter().enumerate() {
            let plan = MpuPlan::for_app(&map, i).unwrap();
            // Own data/stack: read-write.
            prop_assert_eq!(plan.permission_at(app.data_lower_bound()), Some(Perm::RW));
            prop_assert_eq!(plan.permission_at(app.upper_bound() - 1), Some(Perm::RW));
            // Own code: execute-only (no writes).
            let code_perm = plan.permission_at(app.code.start).unwrap();
            prop_assert!(code_perm.allows(Perm::X) && !code_perm.allows(Perm::W));
            // Everything below the app's data is never writable.
            prop_assert!(!plan.permission_at(map.os_code.start).unwrap().allows(Perm::W));
            // Every higher app is completely blocked.
            for other in map.apps.iter().skip(i + 1) {
                prop_assert!(plan.blocks(other.code.start));
                prop_assert!(plan.blocks(other.data.start));
            }
            // Register encoding round-trips the boundaries.
            let regs = plan.register_values();
            prop_assert_eq!((regs.mpusegb1 as u32) << 4, plan.boundary1);
            prop_assert_eq!((regs.mpusegb2 as u32) << 4, plan.boundary2);
        }
    }

    /// Cross-platform planning: for **every built-in platform profile**,
    /// whenever the planner succeeds the map passes `MemoryMap::validate`,
    /// app footprints never overlap each other (or the OS image), every
    /// bound sits on that platform's MPU alignment, and the platform's own
    /// MPU-plan shape can be built for every app.
    #[test]
    fn every_builtin_platform_plans_valid_maps(apps in apps_strategy()) {
        for platform in builtin_platforms() {
            let g = platform.mpu_boundary_granularity();
            let planner = MemoryMapPlanner::new(platform.clone()).unwrap();
            let Ok(map) = planner.plan(&OsImageSpec::default(), &apps) else {
                // Oversized builds may be rejected; not a property violation.
                continue;
            };
            prop_assert!(map.validate().is_ok(), "{}: validate failed", platform.name);
            let mut prev_end = map.os_data.end;
            for (i, app) in map.apps.iter().enumerate() {
                let fp = app.footprint();
                prop_assert!(fp.start >= prev_end, "{}: app {i} overlaps below", platform.name);
                prop_assert!(platform.fram.contains_range(&fp), "{}: app {i} outside FRAM", platform.name);
                prop_assert_eq!(app.data_lower_bound() % g, 0);
                prop_assert_eq!(app.upper_bound() % g, 0);
                for other in map.apps.iter().skip(i + 1) {
                    prop_assert!(!fp.overlaps(&other.footprint()), "{}: footprints overlap", platform.name);
                }
                let plan = MpuPlan::for_app_on(&map, i).unwrap();
                prop_assert_eq!(plan.boundary1, app.data_lower_bound());
                prop_assert_eq!(plan.boundary2, app.upper_bound());
                prop_assert!(
                    plan.segments.len() <= platform.mpu_main_segments() + 1,
                    "{}: plan needs more slots than the hardware has",
                    platform.name
                );
                prev_end = fp.end;
            }
            // The OS-running plan is buildable on this platform's MPU too.
            prop_assert!(MpuPlan::for_os_on(&map).is_ok(), "{}: OS plan failed", platform.name);
        }
    }

    /// Constraint invariants of the planner, across **all five built-in
    /// profiles**: every planned hardware region satisfies its backend's
    /// base/size rule (including NAPOT's power-of-two-and-size-aligned
    /// rule), app regions never overlap another app or the OS image, and
    /// the alignment/rounding waste is both *reported*
    /// (`AppPlacement::padding_bytes` accounts for every byte the app
    /// consumed beyond its request) and *bounded* (each NAPOT region is at
    /// most twice the bytes it covers, down to the minimum region size —
    /// power-of-two rounding can never waste more than half a region
    /// above that floor).
    #[test]
    fn planner_satisfies_every_backends_region_constraints(apps in apps_strategy()) {
        for platform in builtin_platforms() {
            let planner = MemoryMapPlanner::new(platform.clone()).unwrap();
            let Ok(map) = planner.plan(&OsImageSpec::default(), &apps) else {
                continue; // oversized builds may be rejected
            };
            prop_assert!(map.validate().is_ok(), "{}: validate failed", platform.name);
            // The planner starts placing at the first aligned address
            // above the OS image; waste is accounted from there.
            let mut prev_end = amulet_core::addr::align_up(
                map.os_data.end,
                platform.mpu_boundary_granularity(),
            );
            let mut reported_padding = 0u32;
            for (i, (app, spec)) in map.apps.iter().zip(&apps).enumerate() {
                let fp = app.footprint();
                prop_assert!(fp.start >= prev_end, "{}: app {i} overlaps below", platform.name);
                for other in map.apps.iter().skip(i + 1) {
                    prop_assert!(!fp.overlaps(&other.footprint()), "{}: app footprints overlap", platform.name);
                }
                // Waste accounting: consumed bytes (from the previous end,
                // so leading NAPOT gaps count) = requested bytes + padding.
                let requested = spec.code_size
                    + amulet_core::addr::align_up(spec.stack_size, 2)
                    + amulet_core::addr::align_up(spec.data_size.max(2), 2);
                prop_assert_eq!(
                    app.upper_bound() - prev_end,
                    requested + app.padding_bytes,
                    "{}: app {i} padding accounting broken", platform.name
                );
                reported_padding += app.padding_bytes;
                if let Some(c) = platform.mpu.constraints() {
                    let code_used = spec.code_size;
                    let data_used = amulet_core::addr::align_up(spec.stack_size, 2)
                        + amulet_core::addr::align_up(spec.data_size.max(2), 2);
                    for (range, used) in [(app.code, code_used), (app.data_stack(), data_used)] {
                        prop_assert!(
                            c.size_rule.is_valid_region(&range),
                            "{}: app {i} region {range:?} violates {}",
                            platform.name, c.size_rule
                        );
                        // Bounded waste: a solved region is at most one
                        // rounding step above what it covers.
                        prop_assert!(
                            range.len() <= c.size_rule.region_span(used),
                            "{}: app {i} region {range:?} larger than the minimal span for {used} bytes",
                            platform.name
                        );
                    }
                }
                prev_end = app.upper_bound();
            }
            prop_assert_eq!(
                map.total_padding_bytes(), reported_padding,
                "{}: map-level padding disagrees with per-app accounting", platform.name
            );
        }
    }

    /// The analytic overhead model is monotone: more operations never cost
    /// fewer overhead cycles, for any method.
    #[test]
    fn overhead_model_is_monotone(
        mem_a in 0u64..1_000_000,
        mem_b in 0u64..1_000_000,
        sw_a in 0u64..100_000,
        sw_b in 0u64..100_000,
    ) {
        for method in IsolationMethod::ALL {
            let model = OverheadModel::for_method(method);
            let small = OpCounts::new(mem_a.min(mem_b), sw_a.min(sw_b));
            let large = OpCounts::new(mem_a.max(mem_b), sw_a.max(sw_b));
            prop_assert!(model.overhead(small).total() <= model.overhead(large).total());
            prop_assert!(model.slowdown_percent(large) >= 0.0);
        }
    }
}
