//! The discrete-event fleet core: a wake calendar over device blocks.
//!
//! PR 4's stepped mode proved fleet devices sleep ~99.99 % of virtual
//! time, yet the linear walk still paid O(devices) per unit of virtual
//! time.  This module restructures the stepped runner around the classic
//! discrete-event shape — work happens only where events are:
//!
//! - **Wake calendar.**  Within a block, devices are grouped by firmware
//!   configuration and each group enters a priority queue keyed by the
//!   earliest *next-wake* time among its members (the first trace
//!   arrival; silent devices have no arrivals and sort last).  The runner
//!   pops the earliest wake, advances the woken devices' virtual clocks
//!   through the existing `pump_counted`/`flush_counted` machinery (each
//!   trace arrival is that device's next calendar entry; the LPM idle
//!   accounting between arrivals is unchanged), and retires the group.
//!   Fleet devices are causally independent — no event ever crosses from
//!   one device to another — so running a woken device to completion is
//!   result-identical to fine-grained interleaving, and the coarse grain
//!   is what lets one booted runtime serve a whole group through
//!   [`AmuletOs::reset`].
//!
//! - **Block sharding.**  Devices are partitioned into fixed
//!   [`BLOCK_SIZE`] index blocks; workers claim blocks from a shared
//!   atomic counter and results are merged **in block order** on the
//!   calling thread.  The block grid never depends on the worker count,
//!   and every per-device result is a pure function of the scenario, so
//!   any worker count produces byte-identical reports — the guarantee CI
//!   asserts at 10⁴ devices, 1 vs 8 workers.
//!
//! - **Silent-device outcome cache.**  A mostly-idle fleet is dominated
//!   by devices whose campaign trace is empty
//!   ([`FleetScenario::silent_permille`]).  Such a device still boots and
//!   flushes — but if its whole two-leg run performs **zero sensor-model
//!   reads** (every sensor-backed syscall, `amulet_get_time` included,
//!   advances the model's tick counter), the outcome provably cannot
//!   depend on the device's `sensor_seed`, because the seed influences
//!   execution only through a read.  The first silent device of a config
//!   is simulated as the probe; when the proof holds, every later silent
//!   device of that config reuses the outcome with only the index
//!   patched.  When it does not (an app samples sensors at boot or in the
//!   final flush), the cache records the refusal and every silent device
//!   of that config is simulated individually — slower, never wrong.
//!
//! - **Shared firmware.**  Distinct configurations are materialised once
//!   through the content-addressable [`FirmwareStore`] — from memory,
//!   from the cross-run on-disk cache, or by a fresh AFT build — and
//!   runtimes share the image by reference.

use crate::run::{device_trace, simulate_device, DeviceResult};
use crate::scenario::{ConfigContext, DeviceConfig, FleetScenario};
use crate::store::FirmwareStore;
use amulet_os::events::DeliveryPolicy;
use amulet_os::os::{AmuletOs, OsOptions};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Devices per scheduling block.  Fixed — never derived from the worker
/// count — so the block grid, and therefore every block-local decision,
/// is identical no matter how many workers claim blocks.
pub(crate) const BLOCK_SIZE: usize = 1024;

/// A device waiting on the block's wake calendar.
struct Pending {
    cfg: DeviceConfig,
    trace: Vec<amulet_apps::TraceEvent>,
    /// Virtual time of the device's first wake (its first trace arrival);
    /// `u64::MAX` for devices with no arrivals at all.
    first_wake_ms: u64,
}

/// Per-worker state that persists across the blocks a worker claims.
struct Worker<'a> {
    scenario: &'a FleetScenario,
    store: &'a FirmwareStore,
    ctx: ConfigContext,
    /// The one live runtime, tagged with its firmware key; re-created
    /// only when the key changes (the expensive parts — 64 KiB memory,
    /// attribute tables, API tables — are rebuilt then, never per
    /// device).
    runtime: Option<(String, AmuletOs)>,
    /// Silent-device outcome cache: `Some(template)` when the draw-free
    /// proof held for this config's probe, `None` when it did not and
    /// silent devices must be simulated individually.
    silent_cache: HashMap<String, Option<DeviceResult>>,
}

impl<'a> Worker<'a> {
    fn new(scenario: &'a FleetScenario, store: &'a FirmwareStore) -> Self {
        Worker {
            scenario,
            store,
            ctx: ConfigContext::new(),
            runtime: None,
            silent_cache: HashMap::new(),
        }
    }

    fn runtime_for(&mut self, key: &str, cfg: &DeviceConfig) -> &mut AmuletOs {
        let hit = matches!(&self.runtime, Some((k, _)) if k == key);
        if !hit {
            let firmware = self.store.get_or_build(key, cfg);
            let os = AmuletOs::with_options_shared(
                firmware,
                OsOptions {
                    sensor_seed: cfg.sensor_seed,
                    delivery: DeliveryPolicy::PerEvent,
                    ..OsOptions::default()
                },
            );
            self.runtime = Some((key.to_string(), os));
        }
        &mut self.runtime.as_mut().expect("runtime just installed").1
    }

    /// Simulates one pending device, probing or consulting the silent
    /// cache as appropriate.
    fn run_pending(&mut self, key: &str, p: &Pending) -> DeviceResult {
        let scenario = self.scenario;
        if p.cfg.silent_cacheable() {
            // The cache may have been decided since the block was
            // planned — by an earlier member of this very group.
            if let Some(Some(template)) = self.silent_cache.get(key) {
                let mut r = template.clone();
                r.index = p.cfg.index;
                return r;
            }
            let undecided = !self.silent_cache.contains_key(key);
            let os = self.runtime_for(key, &p.cfg);
            let sim = simulate_device(scenario, &p.cfg, os, &p.trace);
            if undecided {
                let template = (sim.sensor_draws == 0).then(|| sim.result.clone());
                self.silent_cache.insert(key.to_string(), template);
            }
            sim.result
        } else {
            let os = self.runtime_for(key, &p.cfg);
            simulate_device(scenario, &p.cfg, os, &p.trace).result
        }
    }

    /// Runs device indices `lo..hi` through the wake calendar and returns
    /// their results sorted by device index.
    fn run_block(&mut self, lo: usize, hi: usize) -> Vec<DeviceResult> {
        let mut results = Vec::with_capacity(hi - lo);
        // Plan the block: derive configs, resolve trivially-cached silent
        // devices immediately, queue the rest on the calendar grouped by
        // firmware config.
        let mut groups: BTreeMap<String, Vec<Pending>> = BTreeMap::new();
        for index in lo..hi {
            let cfg = self.scenario.device_config_in(&self.ctx, index);
            let key = cfg.firmware_key();
            // Only trivially-silent devices are cache-eligible: the cache
            // is keyed by firmware config, and armed or OTA-swept devices
            // can differ (fault kind, OTA seed) while sharing an image.
            if cfg.silent_cacheable() {
                if let Some(Some(template)) = self.silent_cache.get(&key) {
                    let mut r = template.clone();
                    r.index = index;
                    results.push(r);
                    continue;
                }
                groups.entry(key).or_default().push(Pending {
                    cfg,
                    trace: Vec::new(),
                    first_wake_ms: u64::MAX,
                });
            } else {
                let trace = device_trace(self.scenario, &cfg);
                let first_wake_ms = trace.first().map(|e| e.at_ms).unwrap_or(u64::MAX);
                groups.entry(key).or_default().push(Pending {
                    cfg,
                    trace,
                    first_wake_ms,
                });
            }
        }
        // The calendar: groups keyed by their earliest member wake.
        let mut calendar: BinaryHeap<Reverse<(u64, String)>> = groups
            .iter()
            .map(|(key, members)| {
                let wake = members
                    .iter()
                    .map(|p| p.first_wake_ms)
                    .min()
                    .unwrap_or(u64::MAX);
                Reverse((wake, key.clone()))
            })
            .collect();
        while let Some(Reverse((_, key))) = calendar.pop() {
            let mut members = groups.remove(&key).expect("group scheduled twice");
            members.sort_by_key(|p| (p.first_wake_ms, p.cfg.index));
            for p in &members {
                results.push(self.run_pending(&key, p));
            }
        }
        results.sort_by_key(|r| r.index);
        results
    }
}

/// Runs the scenario's device blocks across `workers` scoped threads and
/// folds each finished block through `fold` on the worker that ran it;
/// the folded values are returned **in block order** regardless of which
/// worker claimed which block.  `fold` receives `(block_index, results)`
/// with the results sorted by device index.
pub(crate) fn collect_blocks_in<R, F>(
    scenario: &FleetScenario,
    workers: usize,
    store: &FirmwareStore,
    fold: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Vec<DeviceResult>) -> R + Sync,
{
    let blocks = scenario.devices.div_ceil(BLOCK_SIZE);
    let workers = workers.max(1).min(blocks.max(1));
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(blocks);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let (store, next, fold) = (store, &next, &fold);
            handles.push(scope.spawn(move || {
                let mut worker = Worker::new(scenario, store);
                let mut out = Vec::new();
                loop {
                    let block = next.fetch_add(1, Ordering::Relaxed);
                    if block >= blocks {
                        break;
                    }
                    let lo = block * BLOCK_SIZE;
                    let hi = ((block + 1) * BLOCK_SIZE).min(scenario.devices);
                    out.push((block, fold(block, worker.run_block(lo, hi))));
                }
                out
            }));
        }
        for h in handles {
            tagged.extend(h.join().expect("fleet worker panicked"));
        }
    });
    tagged.sort_by_key(|&(block, _)| block);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Materialises every device's result in device order — the
/// discrete-event replacement for the linear walk's device vector — from
/// a caller-held [`FirmwareStore`].
pub(crate) fn simulate_devices_in(
    scenario: &FleetScenario,
    workers: usize,
    store: &FirmwareStore,
) -> Vec<DeviceResult> {
    let blocks = collect_blocks_in(scenario, workers, store, |_, results| results);
    let mut devices = Vec::with_capacity(scenario.devices);
    for block in blocks {
        devices.extend(block);
    }
    devices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TimeMode;

    /// A mostly-silent stepped fleet drawn from the **full** catalogue,
    /// which contains apps whose boot path samples the seeded sensors —
    /// the configs the silent-device outcome cache must refuse.
    fn sensorful() -> FleetScenario {
        FleetScenario {
            name: "refusal-probe".to_string(),
            devices: 64,
            events_per_device: 4,
            silent_permille: 900,
            time_mode: TimeMode::Stepped,
            ..FleetScenario::default()
        }
    }

    #[test]
    fn sensor_sampling_probes_are_refused_and_silent_devices_stay_exact() {
        let scenario = sensorful();
        let store = FirmwareStore::for_scenario(&scenario);
        let mut worker = Worker::new(&scenario, &store);
        let results = worker.run_block(0, scenario.devices);
        assert_eq!(results.len(), scenario.devices);

        // The refusal path must actually be recorded: at least one config's
        // probe performed sensor reads, so its cache entry is `None`.
        let refused: Vec<String> = worker
            .silent_cache
            .iter()
            .filter(|(_, v)| v.is_none())
            .map(|(k, _)| k.clone())
            .collect();
        assert!(
            !refused.is_empty(),
            "a full-catalogue fleet must hit at least one sensor-sampling probe"
        );

        // A refusal is a promise of individual simulation, never a wrong
        // reuse: every silent device of a refused config must match a
        // fresh single-device oracle bit for bit, and the probe's grounds
        // (sensor draws > 0) must hold.
        let ctx = ConfigContext::new();
        let mut checked = 0;
        for (index, block_result) in results.iter().enumerate() {
            let cfg = scenario.device_config_in(&ctx, index);
            let key = cfg.firmware_key();
            if !cfg.silent || !refused.contains(&key) {
                continue;
            }
            let firmware = store.get_or_build(&key, &cfg);
            let mut os = AmuletOs::with_options_shared(
                firmware,
                OsOptions {
                    sensor_seed: cfg.sensor_seed,
                    delivery: DeliveryPolicy::PerEvent,
                    ..OsOptions::default()
                },
            );
            let oracle = simulate_device(&scenario, &cfg, &mut os, &[]);
            assert!(
                oracle.sensor_draws > 0,
                "config {key} was refused, so its silent run must draw sensors"
            );
            assert_eq!(*block_result, oracle.result, "device {index}");
            checked += 1;
        }
        assert!(
            checked > 0,
            "the fleet must contain a silent device of a refused config"
        );
    }

    #[test]
    fn subscription_only_probes_are_accepted() {
        // The scaling preset's window is chosen so silent runs are
        // provably sensor-free — every probe's proof must hold.
        let scenario = FleetScenario::scaling(64);
        let store = FirmwareStore::for_scenario(&scenario);
        let mut worker = Worker::new(&scenario, &store);
        worker.run_block(0, scenario.devices);
        assert!(!worker.silent_cache.is_empty(), "probes ran");
        assert!(
            worker.silent_cache.values().all(|v| v.is_some()),
            "no subscription-only config may be refused"
        );
    }
}
