//! The fleet's fault injector: containment verdicts for seeded
//! adversarial probes, and the OTA verify-retry-rollback transaction.
//!
//! The paper's central claim is qualitative — MPU-backed isolation
//! *contains* misbehaving applications.  The fleet layer makes it
//! quantitative: scenarios with [`FleetScenario::fault_permille`] set
//! draw an [`amulet_apps::adversarial`] attack per affected device (like
//! any other scenario dimension), deliver one controlled probe whose
//! payload is the concrete target address computed from the device's
//! real memory map ([`attack_payload`]), and classify what the platform
//! did about it ([`classify`]).  Folding the verdicts per (platform,
//! method, attack) yields the containment matrix — where the five
//! `RegionConstraints` profiles measurably differ, because their
//! MPU jurisdictions differ.
//!
//! The same scenarios can drive an **OTA wave**
//! ([`FleetScenario::ota_permille`]): affected devices re-install their
//! firmware mid-campaign through the versioned envelope of
//! [`amulet_mcu::serial`] — the exact encoding the on-disk
//! [`crate::store::FirmwareStore`] trusts.  Each delivery attempt may be
//! corrupted by a seeded bit flip; [`verify_envelope`] catches every such
//! flip, the device retries under a seeded exponential backoff, and when
//! the retries run out it **rolls back** to the image it is already
//! running.  A device can therefore end an OTA in exactly two states —
//! updated or rolled back — never bricked, and the fold counts all three
//! so CI can assert the third stays zero.
//!
//! [`FleetScenario::fault_permille`]: crate::scenario::FleetScenario::fault_permille
//! [`FleetScenario::ota_permille`]: crate::scenario::FleetScenario::ota_permille

use crate::scenario::splitmix64;
use amulet_apps::adversarial::FaultKind;
use amulet_core::fault::FaultClass;
use amulet_mcu::firmware::Firmware;
use amulet_mcu::serial::{encode_firmware, verify_envelope};
use amulet_os::os::DeliveryOutcome;
use amulet_os::policy::backoff_delay;

/// What a platform did about one injected fault.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Verdict {
    /// The access trapped in memory-protection hardware (MPU / PMP /
    /// stack guard) before touching the target.
    CaughtByMpu,
    /// A compiled-in software check (pointer bound, array bound) refused
    /// the access before it was attempted.
    CaughtBySoftware,
    /// The probe ran to completion: the attack landed unopposed.  The
    /// paper's escape case — nonzero only where a profile's MPU
    /// jurisdiction has holes (e.g. the FR5994's unpoliced peripheral
    /// window).
    Escaped,
    /// The OS watchdog declared the handler runaway and cut it off.
    Hung,
    /// The handler crashed on *non-protection* hardware — a write refused
    /// by ROM write-protect, a fetch from an unmapped or undecodable
    /// address — rather than being policed.  The damage is contained, but
    /// by accident of the memory map, not by the isolation method.
    Crashed,
}

impl Verdict {
    /// Every verdict, in fold/report order.
    pub const ALL: [Verdict; 5] = [
        Verdict::CaughtByMpu,
        Verdict::CaughtBySoftware,
        Verdict::Escaped,
        Verdict::Hung,
        Verdict::Crashed,
    ];

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::CaughtByMpu => "caught_by_mpu",
            Verdict::CaughtBySoftware => "caught_by_software",
            Verdict::Escaped => "escaped",
            Verdict::Hung => "hung",
            Verdict::Crashed => "crashed",
        }
    }

    /// Position in [`Verdict::ALL`] (the containment-cell index).
    pub fn index(self) -> usize {
        Verdict::ALL
            .iter()
            .position(|v| *v == self)
            .expect("verdict listed in ALL")
    }
}

/// The armed attack and its verdict, as recorded on a device result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProbe {
    /// The attack that was armed (already adapted to the device's
    /// isolation method).
    pub kind: FaultKind,
    /// What the platform did about it.
    pub verdict: Verdict,
}

/// Classifies a probe delivery outcome into a containment verdict.
///
/// `Completed` (and the never-expected `Skipped`) means nothing stopped
/// the attack.  Among faults, the hardware-containment classes
/// ([`FaultClass::MpuViolation`], [`FaultClass::StackOverflow`]) are the
/// MPU's; [`FaultClass::WatchdogBudget`] is the OS watchdog's;
/// [`FaultClass::IllegalInstruction`] is a crash on non-protection
/// hardware (ROM write-protect, unmapped bus, undecodable fetch); every
/// remaining class is a compiled-in software check.
pub fn classify(outcome: DeliveryOutcome) -> Verdict {
    match outcome {
        DeliveryOutcome::Completed | DeliveryOutcome::Skipped => Verdict::Escaped,
        DeliveryOutcome::Faulted(FaultClass::MpuViolation | FaultClass::StackOverflow) => {
            Verdict::CaughtByMpu
        }
        DeliveryOutcome::Faulted(FaultClass::WatchdogBudget) => Verdict::Hung,
        DeliveryOutcome::Faulted(FaultClass::IllegalInstruction) => Verdict::Crashed,
        DeliveryOutcome::Faulted(_) => Verdict::CaughtBySoftware,
    }
}

/// The concrete attack payload for a probe on this firmware: the target
/// address, computed from the platform memory map and the image's real
/// placements.  The adversarial app is always installed *last*, so
/// `apps[0]` is a normal neighbour.
pub fn attack_payload(kind: FaultKind, firmware: &Firmware) -> u16 {
    let p = &firmware.memory_map.platform;
    match kind {
        FaultKind::WildWriteOsRam => firmware.memory_map.os_stack.start as u16,
        FaultKind::WildWritePeripheral | FaultKind::WildCallPeripheral => {
            (p.peripherals.start + 0x20) as u16
        }
        FaultKind::WildWriteBootRom => (p.bootstrap_loader.start + 4) as u16,
        FaultKind::WildWriteNeighbor => firmware.apps[0].placement.data.start as u16,
        FaultKind::WildWriteVector => (p.interrupt_vectors.start + 2) as u16,
        _ => kind.default_payload(),
    }
}

/// How one device's OTA re-install ended.
///
/// Structurally a device finishes an OTA `installed` **xor**
/// `rolled_back`; [`OtaOutcome::bricked`] exists so the fold (and CI) can
/// assert the impossible state stays impossible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OtaOutcome {
    /// Virtual campaign time the wave reached this device, staggered by
    /// the OTA seed across the trace span.
    pub install_at_ms: u64,
    /// Delivery attempts made (first try plus retries).
    pub attempts: u32,
    /// Attempts the envelope verification rejected.
    pub corrupt_attempts: u32,
    /// The re-installed image verified and was accepted.
    pub installed: bool,
    /// Retries ran out; the device kept the image it was running.
    pub rolled_back: bool,
    /// Total seeded retry backoff the device waited, in milliseconds.
    pub backoff_ms: u64,
}

impl OtaOutcome {
    /// A device that neither installed nor rolled back — unreachable by
    /// construction, counted so reports can prove it.
    pub fn bricked(&self) -> bool {
        !self.installed && !self.rolled_back
    }
}

/// Base of the seeded exponential OTA retry backoff, in milliseconds.
const OTA_RETRY_BASE_MS: u32 = 250;

/// Runs one device's OTA transaction: encode the image into the
/// versioned envelope, deliver it (each attempt independently subject to
/// a seeded single-bit flip at `corrupt_permille`), verify with
/// [`verify_envelope`], retry up to `max_retries` times under seeded
/// exponential backoff, and roll back when the retries run out.  A pure
/// function of its arguments — the wave is byte-identical for every
/// worker count.
pub fn run_ota(
    firmware: &Firmware,
    key: &str,
    seed: u64,
    span_ms: u64,
    corrupt_permille: u16,
    max_retries: u32,
    device_index: usize,
) -> OtaOutcome {
    let image = encode_firmware(key, firmware);
    let mut state = seed;
    let mut out = OtaOutcome {
        install_at_ms: seed % span_ms.max(1),
        attempts: 0,
        corrupt_attempts: 0,
        installed: false,
        rolled_back: false,
        backoff_ms: 0,
    };
    while out.attempts <= max_retries {
        out.attempts += 1;
        let mut received = image.clone();
        if corrupt_permille > 0 && splitmix64(&mut state) % 1000 < u64::from(corrupt_permille) {
            // The PR-7 corruption model: one seeded bit flip anywhere in
            // the envelope.  Magic, version, length, content hash and the
            // embedded key are all covered, so verification must fail.
            let pos = (splitmix64(&mut state) % received.len() as u64) as usize;
            let bit = splitmix64(&mut state) % 8;
            received[pos] ^= 1 << bit;
        }
        match verify_envelope(&received) {
            Ok(embedded) if embedded == key => {
                out.installed = true;
                return out;
            }
            _ => {
                out.corrupt_attempts += 1;
                if out.attempts <= max_retries {
                    out.backoff_ms += u64::from(backoff_delay(
                        OTA_RETRY_BASE_MS,
                        seed,
                        device_index,
                        out.attempts,
                    ));
                }
            }
        }
    }
    out.rolled_back = true;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FleetScenario;

    fn some_firmware() -> std::sync::Arc<Firmware> {
        let s = FleetScenario::default();
        let cfg = s.device_config(0);
        crate::run::build_firmware(&cfg.firmware_key(), &cfg)
    }

    #[test]
    fn verdicts_have_distinct_labels_and_stable_indices() {
        let labels: std::collections::BTreeSet<_> =
            Verdict::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), Verdict::ALL.len());
        for (i, v) in Verdict::ALL.iter().enumerate() {
            assert_eq!(v.index(), i);
        }
    }

    #[test]
    fn classification_covers_the_matrix_buckets() {
        assert_eq!(classify(DeliveryOutcome::Completed), Verdict::Escaped);
        assert_eq!(
            classify(DeliveryOutcome::Faulted(FaultClass::MpuViolation)),
            Verdict::CaughtByMpu
        );
        assert_eq!(
            classify(DeliveryOutcome::Faulted(FaultClass::StackOverflow)),
            Verdict::CaughtByMpu
        );
        assert_eq!(
            classify(DeliveryOutcome::Faulted(FaultClass::WatchdogBudget)),
            Verdict::Hung
        );
        assert_eq!(
            classify(DeliveryOutcome::Faulted(FaultClass::IllegalInstruction)),
            Verdict::Crashed
        );
        assert_eq!(
            classify(DeliveryOutcome::Faulted(FaultClass::DataPointerLowerBound)),
            Verdict::CaughtBySoftware
        );
        assert_eq!(
            classify(DeliveryOutcome::Faulted(FaultClass::ArrayBounds)),
            Verdict::CaughtBySoftware
        );
    }

    #[test]
    fn attack_payloads_target_the_advertised_spaces() {
        let fw = some_firmware();
        let p = &fw.memory_map.platform;
        let peri = attack_payload(FaultKind::WildWritePeripheral, &fw);
        assert!(p.peripherals.contains(u32::from(peri)));
        let rom = attack_payload(FaultKind::WildWriteBootRom, &fw);
        assert!(p.bootstrap_loader.contains(u32::from(rom)));
        let vec = attack_payload(FaultKind::WildWriteVector, &fw);
        assert!(p.interrupt_vectors.contains(u32::from(vec)));
        let osram = attack_payload(FaultKind::WildWriteOsRam, &fw);
        assert!(fw.memory_map.os_stack.contains(u32::from(osram)));
        let neighbor = attack_payload(FaultKind::WildWriteNeighbor, &fw);
        assert_eq!(u32::from(neighbor), fw.apps[0].placement.data.start);
    }

    #[test]
    fn clean_ota_installs_on_the_first_attempt() {
        let fw = some_firmware();
        let out = run_ota(&fw, "key", 7, 1000, 0, 3, 0);
        assert!(out.installed && !out.rolled_back && !out.bricked());
        assert_eq!((out.attempts, out.corrupt_attempts), (1, 0));
        assert_eq!(out.backoff_ms, 0);
        assert!(out.install_at_ms < 1000);
    }

    #[test]
    fn always_corrupt_ota_retries_with_backoff_then_rolls_back() {
        let fw = some_firmware();
        let out = run_ota(&fw, "key", 99, 1000, 1000, 3, 4);
        assert!(out.rolled_back && !out.installed && !out.bricked());
        assert_eq!(out.attempts, 4, "first try plus three retries");
        assert_eq!(out.corrupt_attempts, 4, "every attempt was flipped");
        // Three retries, exponentially backed off from the 250 ms base.
        assert!(out.backoff_ms >= 250 + 500 + 1000);
    }

    #[test]
    fn ota_transactions_are_pure_functions_of_their_seed() {
        let fw = some_firmware();
        let a = run_ota(&fw, "key", 42, 500, 300, 3, 17);
        let b = run_ota(&fw, "key", 42, 500, 300, 3, 17);
        assert_eq!(a, b);
        let c = run_ota(&fw, "key", 43, 500, 300, 3, 17);
        // Different seeds stagger differently (install times differ with
        // overwhelming probability for adjacent seeds over a 500 ms span).
        assert!(a.install_at_ms != c.install_at_ms || a.attempts != c.attempts || a == c);
    }

    #[test]
    fn every_ota_ends_installed_or_rolled_back_never_bricked() {
        let fw = some_firmware();
        for seed in 0..200u64 {
            let out = run_ota(&fw, "key", seed, 250, 500, 2, seed as usize);
            assert!(out.installed ^ out.rolled_back, "seed {seed}");
            assert!(!out.bricked(), "seed {seed}");
            assert!(out.attempts <= 3);
        }
    }
}
