//! # amulet-fleet
//!
//! Fleet-scale simulation for the memory-isolation reproduction: thousands
//! of independent simulated devices — each with its own platform profile,
//! isolation method, application mix, sensor seed and event-arrival trace,
//! all drawn deterministically from one [`FleetScenario`] seed — run in
//! parallel across `std::thread::scope` workers and reduced to aggregate
//! statistics (total/mean/p50/p99 energy, switch-overhead share, fault
//! counts, battery-impact histograms per ARP profile).
//!
//! The paper evaluates isolation overhead one device at a time; this crate
//! asks the production question instead: *what do the isolation methods
//! cost across a whole deployed fleet, under realistic event-driven load?*
//! Every device is simulated twice over the identical trace — once with
//! the paper's per-event delivery, once with
//! [`amulet_os::events::DeliveryPolicy::Batched`] delivery — so the report
//! quantifies exactly how much switch overhead batching recovers.
//!
//! Under [`TimeMode::Stepped`] the runner additionally drives a **virtual
//! clock** from each trace event's arrival time: handlers advance the
//! clock by executed-cycle time, inter-event gaps are charged at the
//! platform's LPM (sleep) current, and every delivered event's latency —
//! including latency the batching policy trades for switch savings — is
//! measured in virtual milliseconds.  Reports then carry idle-energy
//! share, duty cycle, delivery-latency percentiles and an end-to-end
//! battery-lifetime projection, closing the loop on the paper's Figure 2.
//!
//! Determinism is a hard guarantee: the report (aggregates included) is a
//! pure function of the scenario, regardless of worker count or machine.
//!
//! Stepped scenarios run on the **discrete-event wake calendar**
//! (`calendar` module): devices are sharded into fixed blocks that
//! workers claim from a shared counter, each block's devices wake in
//! next-event order, silent devices are served from a provably-sound
//! per-config outcome cache, and results merge in block order — which is
//! how 10⁵–10⁶-device campaigns stay tractable.  [`simulate_linear`]
//! keeps the original linear walk as the property-tested oracle, and
//! [`simulate_summary`] runs whole campaigns without materialising
//! per-device results (streaming aggregation, bounded memory).
//!
//! ```
//! use amulet_fleet::{simulate, FleetScenario};
//!
//! let scenario = FleetScenario {
//!     devices: 6,
//!     events_per_device: 20,
//!     ..FleetScenario::default()
//! };
//! let report = simulate(&scenario, 2);
//! assert_eq!(report.aggregate.devices, 6);
//! // Batching never does *more* switch work than per-event delivery.
//! assert!(
//!     report.aggregate.batched.switch_cycles
//!         <= report.aggregate.per_event.switch_cycles
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
pub mod faults;
pub mod run;
pub mod scenario;
pub mod stats;
pub mod store;

pub use faults::{FaultProbe, OtaOutcome, Verdict};
pub use run::{
    simulate, simulate_in, simulate_linear, simulate_linear_in, simulate_summary,
    simulate_summary_in, verify_fleet, verify_fleet_reports, DeviceResult, FleetReport,
    FleetSummary, FleetVerifySummary, PolicyOutcome,
};
pub use scenario::{ConfigContext, DeviceConfig, FleetScenario, TimeMode};
pub use stats::{
    BlockSummary, ContainmentRow, EnergyStats, FleetAggregate, LatencyStats, OtaWaveStats,
    PolicyAggregate, ProfileHistogram, BATTERY_IMPACT_BUCKET_EDGES,
};
pub use store::{FirmwareStore, FirmwareStoreStats};
