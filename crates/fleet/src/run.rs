//! The fleet runner: builds firmware once per distinct configuration,
//! fans the devices out across `std::thread::scope` workers, and reduces
//! the per-device results in device order so the report is identical for
//! every worker count.

use crate::scenario::{DeviceConfig, FleetScenario};
use crate::stats::{aggregate, FleetAggregate};
use amulet_aft::aft::Aft;
use amulet_arp::arp::Arp;
use amulet_core::energy::EnergyModel;
use amulet_core::method::IsolationMethod;
use amulet_mcu::firmware::Firmware;
use amulet_os::events::{DeliveryPolicy, Event, EventKind};
use amulet_os::os::{AmuletOs, OsOptions};
use std::collections::BTreeMap;

/// What one device did under one delivery policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicyOutcome {
    /// Total cycles the device consumed (boot + trace).
    pub total_cycles: u64,
    /// Cycles spent on OS↔app switching.
    pub switch_cycles: u64,
    /// Cycles spent executing application instructions.
    pub app_cycles: u64,
    /// Cycles spent in OS service bodies.
    pub service_cycles: u64,
    /// Events delivered (boot events included).
    pub events_delivered: u64,
    /// System calls serviced.
    pub syscalls: u64,
    /// Faults raised.
    pub faults: u64,
    /// Full directed OS↔app switches charged.
    pub full_switches: u64,
    /// Cheap intra-batch boundaries charged.
    pub batch_boundaries: u64,
    /// Energy the run consumed, in joules (platform energy model).
    pub energy_joules: f64,
}

/// The result of simulating one device under both delivery policies.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceResult {
    /// Device index within the fleet.
    pub index: usize,
    /// Platform profile name.
    pub platform: String,
    /// Isolation method.
    pub method: IsolationMethod,
    /// Names of the installed apps.
    pub app_names: Vec<String>,
    /// Outcome under [`DeliveryPolicy::PerEvent`].
    pub per_event: PolicyOutcome,
    /// Outcome under the scenario's batched policy.
    pub batched: PolicyOutcome,
    /// Analytic weekly battery-lifetime impact, in percent, of each
    /// installed app's ARP profile under this device's method and platform
    /// (the Figure-2 extrapolation, fleet-wide).
    pub battery_impacts: Vec<(String, f64)>,
}

/// A complete fleet run: the scenario, every per-device result (in device
/// order) and the aggregate reduction.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetReport {
    /// The scenario that was simulated.
    pub scenario: FleetScenario,
    /// Worker threads used (does not affect any other field).
    pub workers: usize,
    /// Per-device results, indexed by device.
    pub devices: Vec<DeviceResult>,
    /// The aggregate statistics.
    pub aggregate: FleetAggregate,
}

/// The event kind a trace handler maps to.
fn kind_for(handler: &str) -> EventKind {
    if handler.starts_with("on_timer") {
        EventKind::Timer
    } else if handler.starts_with("on_accel") || handler.starts_with("on_hr") {
        EventKind::Sensor
    } else {
        EventKind::System
    }
}

/// Replays a trace: every arrival is posted and the scheduler pumped, so a
/// batched policy sees exactly the queue build-up a live device would; a
/// final flush delivers the stragglers.
fn run_trace(os: &mut AmuletOs, trace: &[amulet_apps::TraceEvent]) {
    for e in trace {
        os.post_event(Event::new(
            e.app_index,
            e.handler.as_str(),
            e.payload,
            kind_for(&e.handler),
        ));
        os.pump();
    }
    os.flush();
}

/// Reduces one finished run into a [`PolicyOutcome`].
fn collect(os: &AmuletOs, energy: &EnergyModel) -> PolicyOutcome {
    let mut out = PolicyOutcome {
        total_cycles: os.total_cycles(),
        switch_cycles: 0,
        app_cycles: 0,
        service_cycles: 0,
        events_delivered: 0,
        syscalls: 0,
        faults: 0,
        full_switches: 0,
        batch_boundaries: 0,
        energy_joules: 0.0,
    };
    for s in &os.stats {
        out.switch_cycles += s.switch_cycles;
        out.app_cycles += s.app_cycles;
        out.service_cycles += s.service_cycles;
        out.events_delivered += s.events_delivered;
        out.syscalls += s.syscalls;
        out.faults += s.faults;
        out.full_switches += s.full_switches;
        out.batch_boundaries += s.batch_boundaries;
    }
    out.energy_joules = energy.cycles_to_joules(out.total_cycles);
    out
}

/// Simulates one device on a (possibly reused) runtime: the same firmware
/// image and the same trace are run under per-event delivery, then under
/// the scenario's batched policy.
///
/// `os` is a runtime booted from this device's firmware image.  Every run
/// starts with an [`AmuletOs::reset`], which restores the power-on state
/// **in place** — so one runtime serves every device that shares a
/// firmware configuration, and the expensive per-device setup (64 KiB
/// memory, the decoded instruction store, the bus's memoised
/// access-attribute tables, the API tables) is allocated and built once
/// per configuration instead of once per device.  `reset` guarantees a
/// replayed run is bit-identical to a fresh runtime's, so results do not
/// depend on which devices shared a runtime (the worker-count determinism
/// test pins this down end to end).
fn simulate_device(
    scenario: &FleetScenario,
    cfg: &DeviceConfig,
    os: &mut AmuletOs,
) -> DeviceResult {
    let trace =
        amulet_apps::traces::generate(&cfg.apps, cfg.trace_seed, scenario.events_per_device);
    let energy = EnergyModel::for_platform(&cfg.platform);

    os.set_sensor_seed(cfg.sensor_seed);
    os.set_delivery_policy(DeliveryPolicy::PerEvent);
    os.reset();
    os.boot();
    run_trace(os, &trace);
    let per_event = collect(os, &energy);

    os.reset();
    os.set_delivery_policy(scenario.batched_policy());
    os.boot();
    run_trace(os, &trace);
    let batched = collect(os, &energy);

    let arp = Arp::for_platform(&cfg.platform);
    let battery_impacts = cfg
        .apps
        .iter()
        .map(|a| {
            let impact = arp
                .estimate_on(&cfg.platform, &a.profile, cfg.method)
                .battery_impact_percent;
            (a.name.to_string(), impact)
        })
        .collect();

    DeviceResult {
        index: cfg.index,
        platform: cfg.platform.name.clone(),
        method: cfg.method,
        app_names: cfg.apps.iter().map(|a| a.name.to_string()).collect(),
        per_event,
        batched,
        battery_impacts,
    }
}

/// Builds one device configuration's firmware image.
fn build_firmware(key: &str, cfg: &DeviceConfig) -> Firmware {
    let mut aft = Aft::for_platform(cfg.method, &cfg.platform);
    for app in &cfg.apps {
        aft = aft.add_app(app.app_source());
    }
    aft.build()
        .unwrap_or_else(|e| panic!("fleet firmware build failed for {key}: {e}"))
        .firmware
}

/// Fans `items` out across up to `workers` scoped threads in contiguous
/// chunks and concatenates each chunk's results in chunk order — the one
/// parallel-map shape both the firmware builds and the device simulation
/// use.  `f` must be a pure function of its chunk for the result to be
/// independent of the worker count (both call sites are; the worker-count
/// determinism test pins this down end to end).
fn par_map_chunks<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    let chunk = items.len().div_ceil(workers).max(1);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in items.chunks(chunk) {
            let f = &f;
            handles.push(scope.spawn(move || f(part)));
        }
        for h in handles {
            out.extend(h.join().expect("fleet worker panicked"));
        }
    });
    out
}

/// Builds every distinct firmware image the fleet needs, exactly once,
/// fanning the AFT builds out across `workers` scoped threads.
///
/// Distinct configurations are collected in config order, partitioned into
/// contiguous chunks, built in parallel, and merged back in config order —
/// each image is a pure function of its configuration, so the resulting
/// cache is identical for every worker count.
fn build_firmware_cache(configs: &[DeviceConfig], workers: usize) -> BTreeMap<String, Firmware> {
    let mut distinct: Vec<(String, &DeviceConfig)> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for cfg in configs {
        let key = cfg.firmware_key();
        if seen.insert(key.clone()) {
            distinct.push((key, cfg));
        }
    }
    par_map_chunks(&distinct, workers, |part| {
        part.iter()
            .map(|(key, cfg)| (key.clone(), build_firmware(key, cfg)))
            .collect()
    })
    .into_iter()
    .collect()
}

/// Runs the whole scenario on `workers` threads.
///
/// Determinism guarantee: every field of the returned [`FleetReport`]
/// except `workers` is a pure function of the scenario.  Devices are
/// partitioned into contiguous index ranges, each device is simulated
/// independently, and both the result vector and the aggregate reduction
/// are assembled in device order on the calling thread.
pub fn simulate(scenario: &FleetScenario, workers: usize) -> FleetReport {
    let configs: Vec<DeviceConfig> = (0..scenario.devices)
        .map(|i| scenario.device_config(i))
        .collect();
    let cache = build_firmware_cache(&configs, workers);

    let workers = workers.max(1).min(configs.len().max(1));
    let mut devices = par_map_chunks(&configs, workers, |part| {
        // Process the worker's devices grouped by firmware configuration
        // so one booted runtime (device memory, decoded instruction store,
        // attribute tables) is reused — via `AmuletOs::reset` — across
        // every device of a group.  Per-device results are independent of
        // the grouping (reset restores power-on state exactly), and the
        // caller re-sorts by device index, so the report is unchanged.
        let mut grouped: Vec<(String, &DeviceConfig)> =
            part.iter().map(|cfg| (cfg.firmware_key(), cfg)).collect();
        grouped.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.index.cmp(&b.1.index)));
        let mut results = Vec::with_capacity(part.len());
        let mut sim: Option<(String, AmuletOs)> = None;
        for (key, cfg) in grouped {
            let os = match &mut sim {
                Some((k, os)) if *k == key => os,
                _ => {
                    let fresh = AmuletOs::with_options(
                        cache[&key].clone(),
                        OsOptions {
                            sensor_seed: cfg.sensor_seed,
                            delivery: DeliveryPolicy::PerEvent,
                            ..OsOptions::default()
                        },
                    );
                    &mut sim.insert((key, fresh)).1
                }
            };
            results.push(simulate_device(scenario, cfg, os));
        }
        results
    });
    devices.sort_by_key(|d| d.index);

    let aggregate = aggregate(&devices);
    FleetReport {
        scenario: scenario.clone(),
        workers,
        devices,
        aggregate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetScenario {
        FleetScenario {
            devices: 24,
            events_per_device: 30,
            ..FleetScenario::default()
        }
    }

    #[test]
    fn a_small_fleet_simulates_and_aggregates() {
        let report = simulate(&small(), 4);
        assert_eq!(report.devices.len(), 24);
        assert_eq!(report.aggregate.devices, 24);
        for d in &report.devices {
            assert!(d.per_event.events_delivered > 0, "device {}", d.index);
            assert!(d.per_event.total_cycles > 0);
            assert!(d.per_event.energy_joules > 0.0);
            // Batching may only reduce switch work, never app-visible work.
            assert!(d.batched.batch_boundaries <= d.batched.events_delivered);
        }
        assert!(report.aggregate.per_event.energy.total_joules > 0.0);
    }

    #[test]
    fn batching_saves_switch_cycles_fleet_wide() {
        let report = simulate(&small(), 2);
        let per_event = report.aggregate.per_event.switch_cycles;
        let batched = report.aggregate.batched.switch_cycles;
        assert!(
            batched < per_event,
            "batched {batched} must undercut per-event {per_event}"
        );
        assert!(report.aggregate.batched.batch_boundaries > 0);
        assert_eq!(report.aggregate.per_event.batch_boundaries, 0);
        assert!(report.aggregate.switch_cycles_saved_percent > 0.0);
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let a = simulate(&small(), 1);
        let b = simulate(&small(), 8);
        assert_eq!(a.devices, b.devices);
        assert_eq!(a.aggregate, b.aggregate);
    }
}
