//! The fleet runner: builds firmware once per distinct configuration,
//! fans the devices out across `std::thread::scope` workers, and reduces
//! the per-device results in device order so the report is identical for
//! every worker count.

use crate::scenario::{DeviceConfig, FleetScenario, TimeMode};
use crate::stats::{aggregate, FleetAggregate};
use crate::store::FirmwareStore;
use amulet_aft::aft::Aft;
use amulet_arp::arp::Arp;
use amulet_core::energy::{BatteryModel, EnergyModel};
use amulet_core::method::IsolationMethod;
use amulet_mcu::firmware::Firmware;
use amulet_os::events::{DeliveryPolicy, Event, EventKind};
use amulet_os::os::{AmuletOs, OsOptions};
use std::collections::BTreeMap;
use std::sync::Arc;

/// What one device did under one delivery policy.
///
/// The time fields (`virtual_seconds`, `active_seconds`, `idle_joules`,
/// `battery_weeks`) are populated only under [`TimeMode::Stepped`]; an
/// arrival-order run has no clock, so they stay zero there and the report
/// renderer omits them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicyOutcome {
    /// Total cycles the device consumed (boot + trace).
    pub total_cycles: u64,
    /// Cycles spent on OS↔app switching.
    pub switch_cycles: u64,
    /// Cycles spent executing application instructions.
    pub app_cycles: u64,
    /// Cycles spent in OS service bodies.
    pub service_cycles: u64,
    /// Events delivered (boot events included).
    pub events_delivered: u64,
    /// System calls serviced.
    pub syscalls: u64,
    /// Faults raised.
    pub faults: u64,
    /// Full directed OS↔app switches charged.
    pub full_switches: u64,
    /// Cheap intra-batch boundaries charged.
    pub batch_boundaries: u64,
    /// Active (executed-cycle) energy the run consumed, in joules
    /// (platform energy model).
    pub energy_joules: f64,
    /// LPM (sleep) energy spent in the inter-event gaps, in joules.
    pub idle_joules: f64,
    /// Virtual wall-clock span of the run, in seconds (active + idle).
    pub virtual_seconds: f64,
    /// The active part of `virtual_seconds`: executed cycles over the
    /// platform clock frequency.
    pub active_seconds: f64,
    /// End-to-end battery-lifetime projection, in weeks, from the run's
    /// long-run average power draw ((active + idle energy) / virtual
    /// time) against the Amulet battery.
    pub battery_weeks: f64,
    /// Stamped trace events still queued when the trace horizon ended
    /// ([`TimeMode::Stepped`] only).  The final flush delivers them, but
    /// their latency is an artefact of where the finite trace stops — a
    /// longer trace would have seen them delivered when the next batch
    /// formed — so they are counted here instead of being folded into the
    /// latency population (DESIGN §6).
    pub truncated_events: u64,
}

impl PolicyOutcome {
    /// Fraction of virtual time the device was awake (0 when the run had
    /// no clock).
    pub fn duty_cycle(&self) -> f64 {
        if self.virtual_seconds > 0.0 {
            self.active_seconds / self.virtual_seconds
        } else {
            0.0
        }
    }
}

/// The result of simulating one device under both delivery policies.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceResult {
    /// Device index within the fleet.
    pub index: usize,
    /// Platform profile name.
    pub platform: String,
    /// Isolation method.
    pub method: IsolationMethod,
    /// Names of the installed apps.
    pub app_names: Vec<String>,
    /// Outcome under [`DeliveryPolicy::PerEvent`].
    pub per_event: PolicyOutcome,
    /// Outcome under the scenario's batched policy.
    pub batched: PolicyOutcome,
    /// Analytic weekly battery-lifetime impact, in percent, of each
    /// installed app's ARP profile under this device's method and platform
    /// (the Figure-2 extrapolation, fleet-wide).
    pub battery_impacts: Vec<(String, f64)>,
    /// Per-delivered-event latency samples (virtual milliseconds between
    /// a trace event's arrival and its dispatch) of the per-event leg, in
    /// dispatch order.  Empty under [`TimeMode::ArrivalOrder`].
    pub per_event_latencies_ms: Vec<f64>,
    /// Latency samples of the batched leg (see `per_event_latencies_ms`).
    pub batched_latencies_ms: Vec<f64>,
    /// The fault injector's controlled probe and its containment verdict,
    /// on devices the scenario armed (`None` on clean devices).
    pub fault: Option<crate::faults::FaultProbe>,
    /// How this device's OTA re-install ended, on devices the wave swept.
    pub ota: Option<crate::faults::OtaOutcome>,
}

/// A complete fleet run: the scenario, every per-device result (in device
/// order) and the aggregate reduction.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetReport {
    /// The scenario that was simulated.
    pub scenario: FleetScenario,
    /// Worker threads used (does not affect any other field).
    pub workers: usize,
    /// Per-device results, indexed by device.
    pub devices: Vec<DeviceResult>,
    /// The aggregate statistics.
    pub aggregate: FleetAggregate,
}

/// The event kind a trace handler maps to.
fn kind_for(handler: &str) -> EventKind {
    if handler.starts_with("on_timer") {
        EventKind::Timer
    } else if handler.starts_with("on_accel") || handler.starts_with("on_hr") {
        EventKind::Sensor
    } else {
        EventKind::System
    }
}

/// Replays a trace in arrival order: every arrival is posted and the
/// scheduler pumped, so a batched policy sees exactly the queue build-up a
/// live device would; a final flush delivers the stragglers.
fn run_trace(os: &mut AmuletOs, trace: &[amulet_apps::TraceEvent]) {
    for e in trace {
        os.post_event(Event::new(
            e.app_index,
            e.handler.as_str(),
            e.payload,
            kind_for(&e.handler),
        ));
        os.pump();
    }
    os.flush();
}

/// What a time-stepped replay measured on top of the run itself.
struct SteppedRun {
    /// Virtual wall-clock span of the run in seconds: boot + every
    /// handler's executed-cycle time + every inter-event idle gap.
    virtual_seconds: f64,
    /// Delivery latency of each dispatched trace event, in virtual
    /// milliseconds, in dispatch order.  Events the final flush delivered
    /// are excluded (they are `truncated_events`).
    latencies_ms: Vec<f64>,
    /// Stamped events the final flush delivered after the trace horizon.
    truncated_events: u64,
}

/// Replays a trace under a virtual clock.
///
/// The delivered schedule is **identical** to [`run_trace`] — the same
/// posts, the same pumps, in the same order, so every cycle count matches
/// the arrival-order replay exactly.  Stepping adds accounting: the clock
/// starts after boot (boot runs busy from t = 0), jumps forward to each
/// event's `at_ms` when the device finished its work earlier (an LPM idle
/// gap), stays put when the event arrived while the device was still busy
/// (the event waits), and advances by executed-cycle time across every
/// pump.  Each dispatched trace event's [`amulet_os::os::DeliveryRecord`]
/// is joined against the clock to yield its delivery latency — including
/// latency added by the batching policy deferring delivery until a batch
/// forms.
fn run_trace_stepped(
    os: &mut AmuletOs,
    trace: &[amulet_apps::TraceEvent],
    energy: &EnergyModel,
) -> SteppedRun {
    let mut now_s = energy.cycles_to_seconds(os.total_cycles());
    let mut latencies_ms = Vec::new();
    let mut cursor = os.delivery_log.len();
    // Joins the delivery records a pump produced against the virtual
    // clock: a record `dc` cycles into a pump that started at `start_s`
    // happened at virtual time `start_s + dc / f`.
    let mut harvest = |os: &AmuletOs, cursor: &mut usize, start_s: f64, start_cycles: u64| {
        let records = &os.delivery_log[*cursor..];
        latencies_ms.extend(records.iter().map(|r| {
            let at_s = start_s + energy.cycles_to_seconds(r.at_cycles - start_cycles);
            (at_s * 1000.0 - r.stamp_ms as f64).max(0.0)
        }));
        *cursor = os.delivery_log.len();
    };
    for e in trace {
        // Idle jump: if the device went to sleep before this arrival, the
        // clock skips ahead; if it is still busy, the event queues at its
        // arrival stamp and waits.
        now_s = now_s.max(e.at_ms as f64 / 1000.0);
        os.post_event(
            Event::new(
                e.app_index,
                e.handler.as_str(),
                e.payload,
                kind_for(&e.handler),
            )
            .stamped(e.at_ms),
        );
        let start_cycles = os.total_cycles();
        let (_, pump_cycles) = os.pump_counted();
        harvest(os, &mut cursor, now_s, start_cycles);
        now_s += energy.cycles_to_seconds(pump_cycles);
    }
    // The final flush delivers whatever the batching policy still held
    // when the trace ran out.  Those deliveries only happen *here* because
    // the trace is finite — their latency measures the horizon, not the
    // policy — so they are counted as truncated instead of being joined
    // into the latency samples.
    let (_, flush_cycles) = os.flush_counted();
    let truncated_events = (os.delivery_log.len() - cursor) as u64;
    now_s += energy.cycles_to_seconds(flush_cycles);
    debug_assert!(
        now_s * 1000.0 >= amulet_apps::traces::span_ms(trace) as f64,
        "the virtual clock ends at or after the last arrival"
    );
    SteppedRun {
        virtual_seconds: now_s,
        latencies_ms,
        truncated_events,
    }
}

/// Reduces one finished run into a [`PolicyOutcome`]; `stepped` (when the
/// run carried a virtual clock) fills in the idle/duty/lifetime fields.
fn collect(os: &AmuletOs, energy: &EnergyModel, stepped: Option<&SteppedRun>) -> PolicyOutcome {
    let mut out = PolicyOutcome {
        total_cycles: os.total_cycles(),
        switch_cycles: 0,
        app_cycles: 0,
        service_cycles: 0,
        events_delivered: 0,
        syscalls: 0,
        faults: 0,
        full_switches: 0,
        batch_boundaries: 0,
        energy_joules: 0.0,
        idle_joules: 0.0,
        virtual_seconds: 0.0,
        active_seconds: 0.0,
        battery_weeks: 0.0,
        truncated_events: 0,
    };
    for s in &os.stats {
        out.switch_cycles += s.switch_cycles;
        out.app_cycles += s.app_cycles;
        out.service_cycles += s.service_cycles;
        out.events_delivered += s.events_delivered;
        out.syscalls += s.syscalls;
        out.faults += s.faults;
        out.full_switches += s.full_switches;
        out.batch_boundaries += s.batch_boundaries;
    }
    out.energy_joules = energy.cycles_to_joules(out.total_cycles);
    if let Some(run) = stepped {
        out.truncated_events = run.truncated_events;
        out.virtual_seconds = run.virtual_seconds;
        out.active_seconds = energy.cycles_to_seconds(out.total_cycles);
        out.idle_joules = energy.idle_joules(run.virtual_seconds - out.active_seconds);
        if run.virtual_seconds > 0.0 {
            let power_w = (out.energy_joules + out.idle_joules) / run.virtual_seconds;
            out.battery_weeks = BatteryModel::amulet().lifetime_weeks_at_power(power_w);
        }
    }
    out
}

/// Generates device `cfg`'s event-arrival trace — empty for silent
/// devices.
pub(crate) fn device_trace(
    scenario: &FleetScenario,
    cfg: &DeviceConfig,
) -> Vec<amulet_apps::TraceEvent> {
    match scenario.events_for(cfg) {
        0 => Vec::new(),
        n => amulet_apps::traces::generate(&cfg.apps, cfg.trace_seed, n),
    }
}

/// A [`DeviceResult`] plus the evidence the discrete-event runner's
/// outcome cache needs: how many sensor-model reads the two legs
/// performed in total.  The sensor seed can only influence a run through
/// a read (every sensor-backed syscall advances the model), so
/// `sensor_draws == 0` proves the result is identical for every
/// `sensor_seed` — the soundness condition for reusing one simulated
/// outcome across a firmware config's silent devices.
pub(crate) struct SimulatedDevice {
    pub(crate) result: DeviceResult,
    pub(crate) sensor_draws: u64,
}

/// Simulates one device on a (possibly reused) runtime: the same firmware
/// image and the same trace are run under per-event delivery, then under
/// the scenario's batched policy.
///
/// `os` is a runtime booted from this device's firmware image.  Every run
/// starts with an [`AmuletOs::reset`], which restores the power-on state
/// **in place** — so one runtime serves every device that shares a
/// firmware configuration, and the expensive per-device setup (64 KiB
/// memory, the decoded instruction store, the bus's memoised
/// access-attribute tables, the API tables) is allocated and built once
/// per configuration instead of once per device.  `reset` guarantees a
/// replayed run is bit-identical to a fresh runtime's, so results do not
/// depend on which devices shared a runtime (the worker-count determinism
/// test pins this down end to end).
pub(crate) fn simulate_device(
    scenario: &FleetScenario,
    cfg: &DeviceConfig,
    os: &mut AmuletOs,
    trace: &[amulet_apps::TraceEvent],
) -> SimulatedDevice {
    let mut energy = EnergyModel::for_platform(&cfg.platform);
    if let Some(na) = scenario.lpm_current_override_na {
        energy.lpm_current_a = na as f64 / 1e9;
    }
    // One leg under one delivery policy: arrival-order runs replay the
    // trace untimed; stepped runs replay the identical schedule under the
    // virtual clock and harvest latencies on the side.  Alongside the
    // outcome, each leg reports how many sensor-model reads it performed —
    // `AmuletOs::reset` zeroes the counter, and every sensor-backed
    // syscall (including `amulet_get_time`) advances it.
    let mut sensor_draws = 0u64;
    let mut probe_verdicts: Vec<crate::faults::Verdict> = Vec::new();
    let mut leg = |os: &mut AmuletOs, policy: DeliveryPolicy| -> (PolicyOutcome, Vec<f64>) {
        os.reset();
        os.set_delivery_policy(policy);
        os.boot();
        if let Some(kind) = cfg.fault {
            // The controlled probe: one delivery to the adversarial app
            // (always installed last) carrying the concrete target address
            // computed from this image's real memory map.  It runs before
            // the trace — like boot, busy from t = 0 — so the verdict is
            // independent of the delivery policy, which both legs assert.
            let payload = crate::faults::attack_payload(kind, os.firmware());
            let (outcome, _) = os.call_handler(cfg.apps.len() - 1, "attack", payload);
            probe_verdicts.push(crate::faults::classify(outcome));
        }
        let out = match scenario.time_mode {
            TimeMode::ArrivalOrder => {
                run_trace(os, trace);
                (collect(os, &energy, None), Vec::new())
            }
            TimeMode::Stepped => {
                let run = run_trace_stepped(os, trace, &energy);
                let outcome = collect(os, &energy, Some(&run));
                (outcome, run.latencies_ms)
            }
        };
        sensor_draws += os.services.sensors.ticks;
        out
    };

    os.set_sensor_seed(cfg.sensor_seed);
    if let Some(budget) = scenario.step_budget {
        os.set_step_budget(budget);
    }
    if let Some(policy) = scenario.watchdog_policy() {
        os.set_restart_policy(policy);
    }
    let (per_event, per_event_latencies_ms) = leg(os, DeliveryPolicy::PerEvent);
    let (batched, batched_latencies_ms) = leg(os, scenario.batched_policy());

    let fault = cfg.fault.map(|kind| {
        debug_assert!(
            probe_verdicts.windows(2).all(|w| w[0] == w[1]),
            "probe verdict must not depend on the delivery policy"
        );
        crate::faults::FaultProbe {
            kind,
            verdict: probe_verdicts[0],
        }
    });
    let ota = cfg.ota_seed.map(|seed| {
        crate::faults::run_ota(
            os.firmware(),
            &cfg.firmware_key(),
            seed,
            amulet_apps::traces::span_ms(trace),
            scenario.ota_corrupt_permille,
            scenario.ota_max_retries,
            cfg.index,
        )
    });

    let arp = Arp::for_platform(&cfg.platform);
    let battery_impacts = cfg
        .apps
        .iter()
        .map(|a| {
            let impact = arp
                .estimate_on(&cfg.platform, &a.profile, cfg.method)
                .battery_impact_percent;
            (a.name.to_string(), impact)
        })
        .collect();

    SimulatedDevice {
        result: DeviceResult {
            index: cfg.index,
            platform: cfg.platform.name.clone(),
            method: cfg.method,
            app_names: cfg.apps.iter().map(|a| a.name.to_string()).collect(),
            per_event,
            batched,
            battery_impacts,
            per_event_latencies_ms,
            batched_latencies_ms,
            fault,
            ota,
        },
        sensor_draws,
    }
}

/// Builds one device configuration's firmware image, applying the
/// scenario's static-verification knobs: with [`DeviceConfig::verify`]
/// the amulet-verify gate must certify the build free of proven-escape
/// accesses before the image may enter the fleet, and with
/// [`DeviceConfig::elide`] the image is rewritten through check elision
/// (redundant software checks replaced by cycle-neutral fillers).  With
/// [`DeviceConfig::fuse`] the finished image (elided or not) gets the
/// superinstruction fusion pass — derived dispatch state only, so the
/// encoded image and its store key are unchanged.
pub(crate) fn build_firmware(key: &str, cfg: &DeviceConfig) -> Arc<Firmware> {
    let mut aft = Aft::for_platform(cfg.method, &cfg.platform);
    for app in &cfg.apps {
        aft = aft.add_app(app.app_source());
    }
    let out = aft
        .build()
        .unwrap_or_else(|e| panic!("fleet firmware build failed for {key}: {e}"));
    if cfg.verify {
        let report = amulet_verify::verify_build(&out);
        assert!(
            report.passes_gate(),
            "fleet verify gate refused firmware {key}:\n{report}"
        );
    }
    let mut firmware = if cfg.elide {
        amulet_verify::elide_checks(&out).firmware
    } else {
        out.firmware
    };
    if cfg.fuse {
        firmware.fuse();
    }
    Arc::new(firmware)
}

/// Fans `items` out across up to `workers` scoped threads in contiguous
/// chunks and concatenates each chunk's results in chunk order — the one
/// parallel-map shape both the firmware builds and the device simulation
/// use.  `f` must be a pure function of its chunk for the result to be
/// independent of the worker count (both call sites are; the worker-count
/// determinism test pins this down end to end).
fn par_map_chunks<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    let chunk = items.len().div_ceil(workers).max(1);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in items.chunks(chunk) {
            let f = &f;
            handles.push(scope.spawn(move || f(part)));
        }
        for h in handles {
            out.extend(h.join().expect("fleet worker panicked"));
        }
    });
    out
}

/// Materialises every distinct firmware image the fleet needs, exactly
/// once, through the given [`FirmwareStore`] (memory, cross-run disk
/// cache, or a fresh AFT build), fanning the work out across `workers`
/// scoped threads.
///
/// Distinct configurations are collected in config order, partitioned into
/// contiguous chunks, materialised in parallel, and merged back in config
/// order — each image is a pure function of its configuration, so the
/// resulting cache is identical for every worker count and every store
/// state.
fn build_firmware_cache(
    configs: &[DeviceConfig],
    workers: usize,
    store: &FirmwareStore,
) -> BTreeMap<String, Arc<Firmware>> {
    let mut distinct: Vec<(String, &DeviceConfig)> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for cfg in configs {
        let key = cfg.firmware_key();
        if seen.insert(key.clone()) {
            distinct.push((key, cfg));
        }
    }
    par_map_chunks(&distinct, workers, |part| {
        part.iter()
            .map(|(key, cfg)| (key.clone(), store.get_or_build(key, cfg)))
            .collect()
    })
    .into_iter()
    .collect()
}

/// Runs the whole scenario on `workers` threads.
///
/// Determinism guarantee: every field of the returned [`FleetReport`]
/// except `workers` is a pure function of the scenario.
///
/// [`TimeMode::ArrivalOrder`] scenarios run the linear walk
/// ([`simulate_linear`]); [`TimeMode::Stepped`] scenarios run the
/// discrete-event wake calendar, which produces
/// bit-identical `DeviceResult`s (the equivalence property test pins
/// this) while skipping the devices that are asleep — the fleet's
/// dominant state.
pub fn simulate(scenario: &FleetScenario, workers: usize) -> FleetReport {
    let store = FirmwareStore::for_scenario(scenario);
    simulate_in(scenario, workers, &store)
}

/// [`simulate`] against a caller-held [`FirmwareStore`] — identical
/// results (the store is a pure cache), with the store's hit/build
/// statistics left readable by the caller afterwards.
pub fn simulate_in(scenario: &FleetScenario, workers: usize, store: &FirmwareStore) -> FleetReport {
    match scenario.time_mode {
        TimeMode::ArrivalOrder => simulate_linear_in(scenario, workers, store),
        TimeMode::Stepped => {
            let devices = crate::calendar::simulate_devices_in(scenario, workers, store);
            let aggregate = aggregate(&devices);
            FleetReport {
                scenario: scenario.clone(),
                workers: workers.max(1).min(scenario.devices.max(1)),
                devices,
                aggregate,
            }
        }
    }
}

/// A fleet run reduced on the fly: the scenario and the aggregate, with
/// no per-device result vector.  This is how 10⁵–10⁶-device campaigns
/// run in bounded memory — workers fold each finished device block into a
/// [`crate::stats::BlockSummary`] and the summaries merge in block order,
/// so every aggregate field is still a pure function of the scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSummary {
    /// The scenario that was simulated.
    pub scenario: FleetScenario,
    /// Worker threads used (does not affect the aggregate).
    pub workers: usize,
    /// The aggregate statistics.
    pub aggregate: FleetAggregate,
}

/// Runs the whole scenario on `workers` threads through the
/// discrete-event calendar and streaming aggregation, materialising block
/// summaries instead of per-device results.  Works in both time modes.
///
/// For fleets that fit one scheduling block (and whose latency-sample
/// count fits the sketch) the aggregate is identical to
/// [`simulate`]'s; beyond that, delivery-latency mean/p50/p99 become
/// deterministic uniform-sample estimates (see
/// [`crate::stats::BlockSummary`]) while every other field stays exact.
pub fn simulate_summary(scenario: &FleetScenario, workers: usize) -> FleetSummary {
    let store = FirmwareStore::for_scenario(scenario);
    simulate_summary_in(scenario, workers, &store)
}

/// [`simulate_summary`] against a caller-held [`FirmwareStore`] (see
/// [`simulate_in`]).
pub fn simulate_summary_in(
    scenario: &FleetScenario,
    workers: usize,
    store: &FirmwareStore,
) -> FleetSummary {
    let blocks = crate::calendar::collect_blocks_in(scenario, workers, store, |_, devices| {
        crate::stats::BlockSummary::from_devices(&devices)
    });
    FleetSummary {
        scenario: scenario.clone(),
        workers: workers.max(1).min(scenario.devices.max(1)),
        aggregate: crate::stats::reduce_blocks(&blocks),
    }
}

/// The original linear walk: every device's trace is replayed
/// front-to-back, devices are partitioned into contiguous index ranges,
/// and both the result vector and the aggregate reduction are assembled
/// in device order on the calling thread.  Kept (and exported) as the
/// reference oracle the discrete-event runner is property-tested against,
/// and as the baseline the scaling bench extrapolates from.
pub fn simulate_linear(scenario: &FleetScenario, workers: usize) -> FleetReport {
    let store = FirmwareStore::for_scenario(scenario);
    simulate_linear_in(scenario, workers, &store)
}

/// [`simulate_linear`] against a caller-held [`FirmwareStore`] (see
/// [`simulate_in`]).
pub fn simulate_linear_in(
    scenario: &FleetScenario,
    workers: usize,
    store: &FirmwareStore,
) -> FleetReport {
    let configs: Vec<DeviceConfig> = (0..scenario.devices)
        .map(|i| scenario.device_config(i))
        .collect();
    let cache = build_firmware_cache(&configs, workers, store);

    let workers = workers.max(1).min(configs.len().max(1));
    let mut devices = par_map_chunks(&configs, workers, |part| {
        // Process the worker's devices grouped by firmware configuration
        // so one booted runtime (device memory, decoded instruction store,
        // attribute tables) is reused — via `AmuletOs::reset` — across
        // every device of a group.  Per-device results are independent of
        // the grouping (reset restores power-on state exactly), and the
        // caller re-sorts by device index, so the report is unchanged.
        let mut grouped: Vec<(String, &DeviceConfig)> =
            part.iter().map(|cfg| (cfg.firmware_key(), cfg)).collect();
        grouped.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.index.cmp(&b.1.index)));
        let mut results = Vec::with_capacity(part.len());
        let mut sim: Option<(String, AmuletOs)> = None;
        for (key, cfg) in grouped {
            let os = match &mut sim {
                Some((k, os)) if *k == key => os,
                _ => {
                    let fresh = AmuletOs::with_options_shared(
                        Arc::clone(&cache[&key]),
                        OsOptions {
                            sensor_seed: cfg.sensor_seed,
                            delivery: DeliveryPolicy::PerEvent,
                            ..OsOptions::default()
                        },
                    );
                    &mut sim.insert((key, fresh)).1
                }
            };
            let trace = device_trace(scenario, cfg);
            results.push(simulate_device(scenario, cfg, os, &trace).result);
        }
        results
    });
    devices.sort_by_key(|d| d.index);

    let aggregate = aggregate(&devices);
    FleetReport {
        scenario: scenario.clone(),
        workers,
        devices,
        aggregate,
    }
}

/// Verdict counters from statically verifying every distinct firmware
/// image a scenario would build.
///
/// This is a pure function of the scenario — the images are rebuilt
/// fresh through the AFT (never read back from a cache), so the counters
/// cannot depend on what an earlier run left in a [`FirmwareStore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetVerifySummary {
    /// Distinct firmware images the fleet derivation produces.
    pub images: usize,
    /// Application instances verified across those images.
    pub apps: usize,
    /// Reachable memory accesses proven inside the app's isolation plan.
    pub proven_safe: usize,
    /// Reachable memory accesses proven to escape the plan.  Any
    /// non-zero count fails the gate.
    pub proven_escape: usize,
    /// Reachable memory accesses the abstract domain cannot decide.
    pub unknown: usize,
    /// Software bound checks certified redundant (elidable).
    pub elidable_sites: usize,
    /// Software bound checks considered for elision.
    pub elidable_candidates: usize,
    /// Firmware keys whose report failed [`VerifyReport::passes_gate`],
    /// in derivation order.
    ///
    /// [`VerifyReport::passes_gate`]: amulet_verify::VerifyReport::passes_gate
    pub gate_failures: Vec<String>,
}

impl FleetVerifySummary {
    /// Whether every image in the fleet passed the verify gate.
    pub fn passes_gate(&self) -> bool {
        self.gate_failures.is_empty()
    }

    /// Folds keyed per-image reports (as [`verify_fleet_reports`]
    /// returns them) into the fleet-wide counters.
    pub fn from_reports(reports: &[(String, amulet_verify::VerifyReport)]) -> Self {
        let mut summary = FleetVerifySummary {
            images: reports.len(),
            apps: 0,
            proven_safe: 0,
            proven_escape: 0,
            unknown: 0,
            elidable_sites: 0,
            elidable_candidates: 0,
            gate_failures: Vec::new(),
        };
        for (key, report) in reports {
            summary.apps += report.apps.len();
            summary.proven_safe += report.proven_safe();
            summary.proven_escape += report.proven_escape();
            summary.unknown += report.unknown();
            summary.elidable_sites += report.elidable_sites();
            summary.elidable_candidates += report
                .apps
                .iter()
                .map(|a| a.elidable_candidates)
                .sum::<usize>();
            if !report.passes_gate() {
                summary.gate_failures.push(key.clone());
            }
        }
        summary
    }
}

/// Statically verifies every distinct firmware image `scenario` would
/// deploy, fanning the builds out across `workers` threads, and reduces
/// the per-image [`VerifyReport`]s into one [`FleetVerifySummary`] in
/// derivation order.
///
/// Verification always runs on the *unelided* build — elision is itself
/// justified by this analysis, so the gate must judge the image the
/// compiler emitted, not the image the verifier rewrote.
///
/// [`VerifyReport`]: amulet_verify::VerifyReport
pub fn verify_fleet(scenario: &FleetScenario, workers: usize) -> FleetVerifySummary {
    FleetVerifySummary::from_reports(&verify_fleet_reports(scenario, workers))
}

/// The per-image half of [`verify_fleet`]: statically verifies every
/// distinct firmware image `scenario` would deploy and returns the keyed
/// [`VerifyReport`]s in derivation order (the order the fleet's
/// device-config walk first encounters each image).
///
/// [`VerifyReport`]: amulet_verify::VerifyReport
pub fn verify_fleet_reports(
    scenario: &FleetScenario,
    workers: usize,
) -> Vec<(String, amulet_verify::VerifyReport)> {
    let ctx = crate::scenario::ConfigContext::new();
    let mut distinct: Vec<(String, DeviceConfig)> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for index in 0..scenario.devices {
        let cfg = scenario.device_config_in(&ctx, index);
        let key = cfg.firmware_key();
        if seen.insert(key.clone()) {
            distinct.push((key, cfg));
        }
    }
    par_map_chunks(&distinct, workers, |part| {
        part.iter()
            .map(|(key, cfg)| {
                let mut aft = Aft::for_platform(cfg.method, &cfg.platform);
                for app in &cfg.apps {
                    aft = aft.add_app(app.app_source());
                }
                let out = aft
                    .build()
                    .unwrap_or_else(|e| panic!("fleet firmware build failed for {key}: {e}"));
                (key.clone(), amulet_verify::verify_build(&out))
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetScenario {
        FleetScenario {
            devices: 24,
            events_per_device: 30,
            ..FleetScenario::default()
        }
    }

    #[test]
    fn a_small_fleet_simulates_and_aggregates() {
        let report = simulate(&small(), 4);
        assert_eq!(report.devices.len(), 24);
        assert_eq!(report.aggregate.devices, 24);
        for d in &report.devices {
            assert!(d.per_event.events_delivered > 0, "device {}", d.index);
            assert!(d.per_event.total_cycles > 0);
            assert!(d.per_event.energy_joules > 0.0);
            // Batching may only reduce switch work, never app-visible work.
            assert!(d.batched.batch_boundaries <= d.batched.events_delivered);
        }
        assert!(report.aggregate.per_event.energy.total_joules > 0.0);
    }

    #[test]
    fn batching_saves_switch_cycles_fleet_wide() {
        let report = simulate(&small(), 2);
        let per_event = report.aggregate.per_event.switch_cycles;
        let batched = report.aggregate.batched.switch_cycles;
        assert!(
            batched < per_event,
            "batched {batched} must undercut per-event {per_event}"
        );
        assert!(report.aggregate.batched.batch_boundaries > 0);
        assert_eq!(report.aggregate.per_event.batch_boundaries, 0);
        assert!(report.aggregate.switch_cycles_saved_percent > 0.0);
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let a = simulate(&small(), 1);
        let b = simulate(&small(), 8);
        assert_eq!(a.devices, b.devices);
        assert_eq!(a.aggregate, b.aggregate);
    }

    fn small_stepped() -> FleetScenario {
        FleetScenario {
            time_mode: TimeMode::Stepped,
            ..small()
        }
    }

    #[test]
    fn stepped_mode_measures_time_idle_energy_and_latency() {
        let report = simulate(&small_stepped(), 4);
        for d in &report.devices {
            for o in [&d.per_event, &d.batched] {
                assert!(o.virtual_seconds > 0.0, "device {}", d.index);
                assert!(o.active_seconds > 0.0 && o.active_seconds < o.virtual_seconds);
                assert!(o.idle_joules > 0.0, "gaps cost LPM energy");
                assert!(o.duty_cycle() > 0.0 && o.duty_cycle() < 1.0);
                assert!(o.battery_weeks > 0.0 && o.battery_weeks.is_finite());
            }
            // A wearable trace is overwhelmingly idle: the duty cycle
            // must be tiny, which is the whole point of LPM accounting.
            assert!(d.per_event.duty_cycle() < 0.05, "device {}", d.index);
            // A device may legitimately have *no* latency samples: a
            // pure-timer app's re-arms cancel the still-pending trace
            // timer events (coalescing), so nothing stamped gets
            // dispatched.  Samples that do exist must be sane.
            assert!(d
                .per_event_latencies_ms
                .iter()
                .all(|l| l.is_finite() && *l >= 0.0));
        }
        assert!(
            report
                .devices
                .iter()
                .filter(|d| !d.per_event_latencies_ms.is_empty())
                .count()
                > report.devices.len() / 2,
            "most devices measure delivery latency"
        );
        let agg = &report.aggregate;
        assert!(agg.per_event.idle_energy_share > 0.5, "idle dominates");
        assert!(agg.per_event.duty_cycle > 0.0 && agg.per_event.duty_cycle < 0.05);
        assert!(agg.per_event.delivery_latency.events > 0);
        assert!(agg.per_event.battery_weeks_p50 > 0.0);
        // Batching defers deliveries, so its latency percentiles must sit
        // visibly above per-event delivery's.
        assert!(
            agg.batched.delivery_latency.p50_ms > agg.per_event.delivery_latency.p50_ms,
            "batched p50 {} vs per-event p50 {}",
            agg.batched.delivery_latency.p50_ms,
            agg.per_event.delivery_latency.p50_ms
        );
        assert!(agg.batched.delivery_latency.p99_ms >= agg.per_event.delivery_latency.p99_ms);
    }

    #[test]
    fn stepped_mode_is_deterministic_across_worker_counts() {
        let a = simulate(&small_stepped(), 1);
        let b = simulate(&small_stepped(), 8);
        assert_eq!(a.devices, b.devices);
        assert_eq!(a.aggregate, b.aggregate);
    }

    #[test]
    fn stepped_with_zero_lpm_current_matches_arrival_order_exactly() {
        // The stepped replay delivers the identical schedule; with idling
        // made free it must reproduce the arrival-order energy and cycle
        // numbers exactly, field for field.
        let arrival = simulate(&small(), 2);
        let stepped = simulate(
            &FleetScenario {
                lpm_current_override_na: Some(0),
                ..small_stepped()
            },
            2,
        );
        for (a, s) in arrival.devices.iter().zip(&stepped.devices) {
            for (ao, so) in [(&a.per_event, &s.per_event), (&a.batched, &s.batched)] {
                assert_eq!(ao.total_cycles, so.total_cycles, "device {}", a.index);
                assert_eq!(ao.switch_cycles, so.switch_cycles);
                assert_eq!(ao.events_delivered, so.events_delivered);
                assert_eq!(ao.faults, so.faults);
                assert_eq!(ao.energy_joules, so.energy_joules);
                assert_eq!(so.idle_joules, 0.0, "free idling");
            }
        }
        let (a, s) = (&arrival.aggregate, &stepped.aggregate);
        assert_eq!(a.per_event.total_cycles, s.per_event.total_cycles);
        assert_eq!(a.batched.total_cycles, s.batched.total_cycles);
        assert_eq!(
            a.per_event.energy.total_joules,
            s.per_event.energy.total_joules
        );
        assert_eq!(a.batched.energy.total_joules, s.batched.energy.total_joules);
        assert_eq!(s.per_event.idle_joules, 0.0);
    }
}
