//! Fleet scenarios: the seeded description of *what* a fleet run simulates.
//!
//! A [`FleetScenario`] is a compact, copyable recipe; every per-device
//! decision (platform profile, isolation method, app mix, event-arrival
//! trace, sensor seed) is derived deterministically from the scenario seed
//! and the device index.  Two runs of the same scenario — on any number of
//! worker threads, on any machine — therefore simulate byte-identical
//! devices.

use amulet_apps::catalog::CatalogApp;
use amulet_core::layout::PlatformSpec;
use amulet_core::method::IsolationMethod;
use amulet_core::platform::builtin_platforms;
use amulet_os::events::DeliveryPolicy;

/// How the fleet runner treats the trace's arrival timestamps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TimeMode {
    /// Deliver events in arrival order with no notion of wall-clock time —
    /// the original fleet mode.  Reports carry active-cycle energy only
    /// and are byte-identical to what this mode has always produced.
    #[default]
    ArrivalOrder,
    /// Drive a virtual clock from the trace's `at_ms` stamps: the clock
    /// advances by executed-cycle time while handlers run and jumps across
    /// inter-event idle gaps, which are charged at the platform's LPM
    /// (sleep) current.  Events that arrive while the device is busy (or
    /// that the batching policy defers) accrue measured delivery latency.
    /// The delivered schedule is identical to [`TimeMode::ArrivalOrder`] —
    /// stepping adds time/energy accounting on top, so active cycles,
    /// events and faults match the arrival-order run exactly.
    Stepped,
}

impl TimeMode {
    /// Stable lowercase label (used in reports and CLI arguments).
    pub fn label(&self) -> &'static str {
        match self {
            TimeMode::ArrivalOrder => "arrival-order",
            TimeMode::Stepped => "stepped",
        }
    }
}

/// A seeded fleet-simulation recipe.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetScenario {
    /// Scenario name (recorded in reports).
    pub name: String,
    /// Master seed every per-device decision is derived from.
    pub seed: u64,
    /// Number of simulated devices.
    pub devices: usize,
    /// Events in each device's arrival trace.
    pub events_per_device: usize,
    /// Largest app mix a device may carry (1..=this many catalogue apps).
    pub max_apps_per_device: usize,
    /// `max_batch` of the batched-delivery leg.
    pub max_batch: usize,
    /// `max_latency_events` of the batched-delivery leg.
    pub max_latency_events: usize,
    /// How trace timestamps are treated (see [`TimeMode`]).
    pub time_mode: TimeMode,
    /// Overrides every platform's LPM (sleep) current, in nanoamperes,
    /// for [`TimeMode::Stepped`] runs.  `None` uses each platform's own
    /// datasheet figure; `Some(0)` makes idling free, which must — and
    /// the test suite asserts does — reproduce the arrival-order energy
    /// numbers exactly.
    pub lpm_current_override_na: Option<u32>,
    /// Per-mille of devices whose trace is empty for the whole campaign
    /// (no sensor wore, no subscription fired): a realistic fleet is
    /// mostly idle.  Silent devices still boot, arm their timers and
    /// subscriptions, and pay the final batch flush — they are simulated,
    /// not skipped — but the discrete-event runner can serve them from a
    /// per-config outcome cache when the run provably never samples the
    /// device's seeded sensors.  `0` (the default) reproduces every
    /// historical report byte for byte.
    pub silent_permille: u16,
    /// Restricts the app-mix draw to a window `(start, len)` of the
    /// nine-app catalogue.  `None` (the default) draws from the whole
    /// catalogue and is arithmetically identical to the historical
    /// derivation; the scaling preset uses a subscription-only window so
    /// silent devices are provably sensor-free.
    pub catalog_window: Option<(usize, usize)>,
    /// Directory of the cross-run content-addressable firmware store
    /// (see `crate::store::FirmwareStore`).  `None` (the default) keeps
    /// the cache purely in-memory, exactly as before the store existed.
    /// The store is a pure cache: it never changes a single byte of any
    /// result, so it is **not** part of the rendered scenario.
    pub store_dir: Option<std::path::PathBuf>,
    /// Paranoid store mode: every image loaded from disk is verified
    /// byte-identical to a fresh build before reuse (CI runs this).
    pub paranoid: bool,
    /// Per-mille of devices the fault injector arms with an adversarial
    /// app: each armed device carries one extra application drawn from
    /// [`amulet_apps::adversarial::FaultKind::ALL`] (adapted to the
    /// device's isolation method) and receives one controlled probe whose
    /// verdict feeds the containment matrix.  `0` (the default) draws
    /// nothing and reproduces every historical report byte for byte.
    pub fault_permille: u16,
    /// OS step budget per delivery, so runaway handlers terminate (and
    /// classify as [`crate::faults::Verdict::Hung`]) instead of spinning
    /// to the simulator's own backstop.  `None` keeps the OS default.
    pub step_budget: Option<u64>,
    /// `base_backoff` of the watchdog restart policy (deliveries skipped
    /// after an app's first strike; doubles per strike).  Only meaningful
    /// when [`FleetScenario::watchdog_max_strikes`] is nonzero.
    pub watchdog_base_backoff: u32,
    /// Strikes before the watchdog quarantines an app.  `0` (the
    /// default) leaves the OS on its baseline kill-on-fault policy.
    pub watchdog_max_strikes: u32,
    /// Per-mille of devices swept by the OTA re-install wave.  Each
    /// swept device re-receives its own firmware image through the
    /// versioned envelope at a seeded point in the campaign; see
    /// [`crate::faults::run_ota`].  `0` disables the wave.
    pub ota_permille: u16,
    /// Per-mille chance each OTA delivery attempt suffers a seeded
    /// single-bit flip in transit.
    pub ota_corrupt_permille: u16,
    /// Retries after a corrupt OTA attempt before the device rolls back
    /// to the image it is already running.
    pub ota_max_retries: u32,
    /// Byte cap for the on-disk firmware store; least-recently-used
    /// images are evicted once the directory exceeds it.  `None` (the
    /// default) never evicts from disk.
    pub store_cap_bytes: Option<u64>,
    /// Statically verify every firmware image entering the fleet: the
    /// `amulet-verify` abstract interpreter must prove the build free of
    /// proven-escape accesses (the gate), or the build is refused.
    /// Draw-free: arming it changes no device derivation.
    pub verify: bool,
    /// Rewrite every built image through the static check-elision pass:
    /// software checks the verifier certifies redundant are replaced by
    /// cycle-neutral `Elided` fillers, so elided fleets report identical
    /// cycle/energy numbers while retiring fewer instructions.
    /// Draw-free, like [`FleetScenario::verify`].
    pub elide_checks: bool,
    /// Run the superinstruction fusion pass over every deployed image
    /// (after elision when both are armed).  Fusion is derived dispatch
    /// state: images encode to identical bytes and keep their store keys,
    /// and fleets report byte-identical outcomes — the knob only changes
    /// how fast the interpreter retires the check-heavy hot paths.
    /// Draw-free, like [`FleetScenario::verify`].
    pub fuse: bool,
}

impl Default for FleetScenario {
    /// The default production-scale scenario: 1000 devices drawn from every
    /// built-in platform, all four isolation methods and one-to-three-app
    /// mixes of the nine-app catalogue.
    fn default() -> Self {
        FleetScenario {
            name: "mixed-fleet".to_string(),
            seed: 0xF1EE7,
            devices: 1000,
            events_per_device: 120,
            max_apps_per_device: 3,
            max_batch: 8,
            max_latency_events: 12,
            time_mode: TimeMode::ArrivalOrder,
            lpm_current_override_na: None,
            silent_permille: 0,
            catalog_window: None,
            store_dir: None,
            paranoid: false,
            fault_permille: 0,
            step_budget: None,
            watchdog_base_backoff: 0,
            watchdog_max_strikes: 0,
            ota_permille: 0,
            ota_corrupt_permille: 0,
            ota_max_retries: 3,
            store_cap_bytes: None,
            verify: false,
            elide_checks: false,
            fuse: false,
        }
    }
}

/// The fully-resolved configuration of one simulated device.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Device index within the fleet.
    pub index: usize,
    /// Hardware platform profile.
    pub platform: PlatformSpec,
    /// Isolation method the firmware is built for.
    pub method: IsolationMethod,
    /// The catalogue apps installed on this device.
    pub apps: Vec<CatalogApp>,
    /// Seed of the device's event-arrival trace.
    pub trace_seed: u64,
    /// Seed of the device's synthetic sensors.
    pub sensor_seed: u32,
    /// Whether this device's campaign trace is empty (see
    /// [`FleetScenario::silent_permille`]).
    pub silent: bool,
    /// The attack the fault injector armed on this device, already
    /// adapted to the device's isolation method (`None` on clean
    /// devices).  Armed devices carry the attack's adversarial app as
    /// their last installed application.
    pub fault: Option<amulet_apps::FaultKind>,
    /// Seed of this device's OTA re-install transaction, when the OTA
    /// wave sweeps it (see [`FleetScenario::ota_permille`]).
    pub ota_seed: Option<u64>,
    /// Whether the firmware build must pass the static verify gate
    /// (copied from [`FleetScenario::verify`]).
    pub verify: bool,
    /// Whether the firmware image is rewritten through check elision
    /// (copied from [`FleetScenario::elide_checks`]).
    pub elide: bool,
    /// Whether the built image gets the superinstruction fusion pass
    /// (copied from [`FleetScenario::fuse`]).  Unlike elision this is
    /// derived state — fused images encode to the same bytes, so
    /// [`DeviceConfig::firmware_key`] carries no marker for it.
    pub fuse: bool,
}

impl DeviceConfig {
    /// A key identifying the firmware image this device needs; devices
    /// sharing a key share one AFT build (the fleet runner's cache).
    /// Elided images are distinct artefacts — same sources, different
    /// bytes — so the key carries an `|elided` suffix when the scenario
    /// rewrites images, keeping the in-memory cache and the on-disk
    /// store from ever conflating the two.
    pub fn firmware_key(&self) -> String {
        let apps: Vec<&str> = self.apps.iter().map(|a| a.name).collect();
        let suffix = if self.elide { "|elided" } else { "" };
        format!(
            "{}|{}|{}{suffix}",
            self.platform.name,
            self.method,
            apps.join("+")
        )
    }

    /// Whether the discrete-event runner may serve this device from the
    /// per-config silent-outcome cache.  The cache is keyed by firmware
    /// key, and two armed devices sharing an image can still differ in
    /// fault kind (every wild write is one app) or OTA seed — so faulted
    /// and swept devices are always simulated individually.
    pub fn silent_cacheable(&self) -> bool {
        self.silent && self.fault.is_none() && self.ota_seed.is_none()
    }
}

/// Pre-resolved immutable inputs to [`FleetScenario::device_config`]: the
/// platform list and the app catalogue both allocate on every call, which
/// is invisible at 10³ devices and dominant at 10⁶.  Build one context per
/// worker and derive through [`FleetScenario::device_config_in`].
#[derive(Clone, Debug)]
pub struct ConfigContext {
    platforms: Vec<PlatformSpec>,
    catalog: Vec<CatalogApp>,
}

impl ConfigContext {
    /// Resolves the built-in platforms and the app catalogue once.
    pub fn new() -> Self {
        ConfigContext {
            platforms: builtin_platforms(),
            catalog: amulet_apps::catalog(),
        }
    }
}

impl Default for ConfigContext {
    fn default() -> Self {
        Self::new()
    }
}

/// SplitMix64: a tiny deterministic seed mixer (reference constants), used
/// so consecutive device indices decorrelate fully.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FleetScenario {
    /// The batched delivery policy this scenario's batched leg uses.
    pub fn batched_policy(&self) -> DeliveryPolicy {
        DeliveryPolicy::Batched {
            max_batch: self.max_batch.max(1),
            max_latency_events: self.max_latency_events.max(1),
        }
    }

    /// Stable label of the scenario's batched delivery policy, the
    /// policy component of the on-disk store key.
    pub fn policy_label(&self) -> String {
        format!(
            "batched:{}:{}",
            self.max_batch.max(1),
            self.max_latency_events.max(1)
        )
    }

    /// Derives the configuration of device `index` — a pure function of
    /// `(self.seed, index)`.
    pub fn device_config(&self, index: usize) -> DeviceConfig {
        self.device_config_in(&ConfigContext::new(), index)
    }

    /// [`FleetScenario::device_config`] against a pre-built
    /// [`ConfigContext`] — identical output, none of the per-call
    /// catalogue/platform allocation.
    pub fn device_config_in(&self, ctx: &ConfigContext, index: usize) -> DeviceConfig {
        let mut state = self.seed ^ (index as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        let platform =
            ctx.platforms[(splitmix64(&mut state) % ctx.platforms.len() as u64) as usize].clone();
        let method = IsolationMethod::ALL
            [(splitmix64(&mut state) % IsolationMethod::ALL.len() as u64) as usize];
        let catalog = &ctx.catalog;
        let mix = 1 + (splitmix64(&mut state) % self.max_apps_per_device.max(1) as u64) as usize;
        // The window draw: with no window, `(wstart, wlen)` spans the whole
        // catalogue and the arithmetic below reduces to the historical
        // full-catalogue derivation bit for bit.
        let (wstart, wlen) = match self.catalog_window {
            Some((s, l)) => {
                let s = s.min(catalog.len().saturating_sub(1));
                (s, l.clamp(1, catalog.len() - s))
            }
            None => (0, catalog.len()),
        };
        let start = (splitmix64(&mut state) % wlen as u64) as usize;
        let apps: Vec<CatalogApp> = (0..mix.min(wlen))
            .map(|k| catalog[wstart + (start + k) % wlen].clone())
            .collect();
        let trace_seed = splitmix64(&mut state);
        let sensor_seed = splitmix64(&mut state) as u32;
        // Appended draw: scenarios with `silent_permille == 0` consume the
        // same draws as they always did.
        let silent =
            self.silent_permille > 0 && splitmix64(&mut state) % 1000 < self.silent_permille as u64;
        // Further appended draws, same contract: each knob consumes draws
        // only when armed, so zero-knob scenarios stay bit-identical to
        // every historical report.
        let fault = if self.fault_permille > 0
            && splitmix64(&mut state) % 1000 < u64::from(self.fault_permille)
        {
            let kind = amulet_apps::FaultKind::ALL
                [(splitmix64(&mut state) % amulet_apps::FaultKind::ALL.len() as u64) as usize];
            Some(kind.adapted_for(method))
        } else {
            None
        };
        let ota_seed = if self.ota_permille > 0
            && splitmix64(&mut state) % 1000 < u64::from(self.ota_permille)
        {
            Some(splitmix64(&mut state))
        } else {
            None
        };
        let mut apps = apps;
        if let Some(kind) = fault {
            // The adversarial app rides last, so `apps[0]` is always a
            // normal neighbour for the wild-write-neighbor target.
            apps.push(kind.app());
        }
        DeviceConfig {
            index,
            platform,
            method,
            apps,
            trace_seed,
            sensor_seed,
            silent,
            fault,
            ota_seed,
            // Draw-free copies: arming the verifier knobs consumes no
            // splitmix draws, so every other field above derives bit
            // for bit identically with or without them.
            verify: self.verify,
            elide: self.elide_checks,
            fuse: self.fuse,
        }
    }

    /// The watchdog restart policy this scenario configures, when its
    /// [`FleetScenario::watchdog_max_strikes`] knob is armed.  The jitter
    /// seed derives from the scenario seed, so backoff schedules are a
    /// pure function of the scenario.
    pub fn watchdog_policy(&self) -> Option<amulet_os::policy::RestartPolicy> {
        if self.watchdog_max_strikes == 0 {
            return None;
        }
        Some(amulet_os::policy::RestartPolicy::RestartWithBackoff {
            base_backoff: self.watchdog_base_backoff.max(1),
            max_strikes: self.watchdog_max_strikes,
            jitter_seed: self.seed ^ 0xBAC0_FF5E,
        })
    }

    /// Number of trace events device `cfg` replays: zero for silent
    /// devices, the scenario's `events_per_device` otherwise.
    pub fn events_for(&self, cfg: &DeviceConfig) -> usize {
        if cfg.silent {
            0
        } else {
            self.events_per_device
        }
    }

    /// The large-N scaling-campaign preset used by the tracked scaling
    /// bench and the CI discrete-event smoke: a mostly-silent stepped
    /// fleet (80 % of devices never see an event) drawn from the
    /// subscription-only window of the catalogue — FallDetection, HR,
    /// HRLog, Pedometer — whose `main` handlers only subscribe, so a
    /// silent device's whole run provably never touches the seeded
    /// sensors and the discrete-event runner may reuse one simulated
    /// outcome per firmware config.
    pub fn scaling(devices: usize) -> Self {
        FleetScenario {
            name: "scaling-campaign".to_string(),
            seed: 0x5CA1E,
            devices,
            events_per_device: 6,
            time_mode: TimeMode::Stepped,
            silent_permille: 800,
            catalog_window: Some((2, 4)),
            ..FleetScenario::default()
        }
    }

    /// The fault-injection storm preset behind the tracked containment
    /// matrix and the CI fault campaign: 40 % of devices armed with a
    /// seeded attack, 25 % swept by an OTA wave whose deliveries corrupt
    /// 20 % of the time, a pinned step budget so runaway verdicts are
    /// reproducible, and the watchdog restart-with-backoff policy so
    /// repeat offenders end the run quarantined rather than respawning
    /// forever.
    pub fn storm(devices: usize) -> Self {
        FleetScenario {
            name: "fault-storm".to_string(),
            seed: 0x57_0421,
            devices,
            events_per_device: 6,
            time_mode: TimeMode::Stepped,
            fault_permille: 400,
            step_budget: Some(20_000),
            watchdog_base_backoff: 2,
            watchdog_max_strikes: 3,
            ota_permille: 250,
            ota_corrupt_permille: 200,
            ota_max_retries: 3,
            ..FleetScenario::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_configs_are_deterministic_functions_of_seed_and_index() {
        let s = FleetScenario::default();
        for i in [0, 1, 17, 999] {
            let a = s.device_config(i);
            let b = s.device_config(i);
            assert_eq!(a.firmware_key(), b.firmware_key());
            assert_eq!(a.trace_seed, b.trace_seed);
            assert_eq!(a.sensor_seed, b.sensor_seed);
        }
        let other = FleetScenario {
            seed: 99,
            ..FleetScenario::default()
        };
        let same =
            (0..50).all(|i| s.device_config(i).trace_seed == other.device_config(i).trace_seed);
        assert!(!same, "different seeds must give different fleets");
    }

    #[test]
    fn the_fleet_spans_platforms_methods_and_mix_sizes() {
        let s = FleetScenario::default();
        let configs: Vec<_> = (0..200).map(|i| s.device_config(i)).collect();
        let platforms: std::collections::BTreeSet<_> =
            configs.iter().map(|c| c.platform.name.clone()).collect();
        let methods: std::collections::BTreeSet<_> =
            configs.iter().map(|c| c.method.label()).collect();
        let sizes: std::collections::BTreeSet<_> = configs.iter().map(|c| c.apps.len()).collect();
        assert_eq!(platforms.len(), 5, "all five built-in platforms appear");
        assert_eq!(methods.len(), 4);
        assert_eq!(sizes, [1, 2, 3].into_iter().collect());
    }

    #[test]
    fn window_and_silent_knobs_leave_historical_draws_untouched() {
        let plain = FleetScenario::default();
        let knobbed = FleetScenario {
            silent_permille: 500,
            catalog_window: Some((0, 9)),
            fault_permille: 500,
            ota_permille: 500,
            watchdog_max_strikes: 3,
            step_budget: Some(20_000),
            ..FleetScenario::default()
        };
        let ctx = ConfigContext::new();
        for i in 0..200 {
            let a = plain.device_config_in(&ctx, i);
            let b = knobbed.device_config_in(&ctx, i);
            // The knobbed fleet arms faults (appending an adversarial
            // app), but every historical draw — platform, method, the
            // normal app mix, trace and sensor seeds — is untouched.
            assert_eq!(a.platform.name, b.platform.name);
            assert_eq!(a.method, b.method);
            assert_eq!(
                a.apps.iter().map(|x| x.name).collect::<Vec<_>>(),
                b.apps
                    .iter()
                    .take(a.apps.len())
                    .map(|x| x.name)
                    .collect::<Vec<_>>()
            );
            assert_eq!(a.trace_seed, b.trace_seed);
            assert_eq!(a.sensor_seed, b.sensor_seed);
            assert!(!a.silent, "permille 0 never marks a device silent");
            assert!(a.fault.is_none() && a.ota_seed.is_none());
        }
    }

    #[test]
    fn storm_preset_arms_faults_and_ota_across_the_fleet() {
        let s = FleetScenario::storm(500);
        assert_eq!(s.time_mode, TimeMode::Stepped);
        assert!(s.watchdog_policy().is_some());
        assert!(FleetScenario::default().watchdog_policy().is_none());
        let ctx = ConfigContext::new();
        let configs: Vec<_> = (0..500).map(|i| s.device_config_in(&ctx, i)).collect();
        let armed: Vec<_> = configs.iter().filter(|c| c.fault.is_some()).collect();
        let swept = configs.iter().filter(|c| c.ota_seed.is_some()).count();
        assert!(
            (120..=280).contains(&armed.len()),
            "~40% armed, got {}/500",
            armed.len()
        );
        assert!((60..=190).contains(&swept), "~25% swept, got {swept}/500");
        let kinds: std::collections::BTreeSet<_> = armed
            .iter()
            .filter_map(|c| c.fault)
            .map(|k| k.label())
            .collect();
        assert!(
            kinds.len() >= 7,
            "the draw spans the attack kinds: {kinds:?}"
        );
        for c in &configs {
            match c.fault {
                Some(kind) => {
                    assert_eq!(kind, kind.adapted_for(c.method), "stored kind is adapted");
                    assert_eq!(
                        c.apps.last().map(|a| a.name),
                        Some(kind.app().name),
                        "adversarial app rides last"
                    );
                    assert!(!c.silent_cacheable());
                }
                None => {
                    let adversarial: Vec<_> = amulet_apps::adversarial_catalog()
                        .iter()
                        .map(|a| a.name)
                        .collect();
                    assert!(c.apps.iter().all(|a| !adversarial.contains(&a.name)));
                }
            }
            if c.ota_seed.is_some() {
                assert!(!c.silent_cacheable());
            }
        }
    }

    #[test]
    fn scaling_preset_is_mostly_silent_subscription_only() {
        let s = FleetScenario::scaling(500);
        assert_eq!(s.time_mode, TimeMode::Stepped);
        let ctx = ConfigContext::new();
        let configs: Vec<_> = (0..500).map(|i| s.device_config_in(&ctx, i)).collect();
        let silent = configs.iter().filter(|c| c.silent).count();
        assert!(
            (300..=490).contains(&silent),
            "~80% of devices silent, got {silent}/500"
        );
        let window = ["FallDetection", "HR", "HRLog", "Pedometer"];
        for c in &configs {
            for a in &c.apps {
                assert!(
                    window.contains(&a.name),
                    "app {} outside the subscription-only window",
                    a.name
                );
            }
            assert_eq!(s.events_for(c), if c.silent { 0 } else { 6 });
        }
    }

    #[test]
    fn firmware_keys_collapse_identical_builds() {
        let s = FleetScenario::default();
        let keys: std::collections::BTreeSet<_> = (0..500)
            .map(|i| s.device_config(i).firmware_key())
            .collect();
        // 5 platforms × 4 methods × (9 windows × 3 sizes) = 540 is the
        // ceiling; 500 devices drawn from it must repeat keys often
        // (expected ≈330 distinct), which is what makes caching pay.
        assert!(keys.len() < 400, "got {} distinct keys", keys.len());
    }
}
