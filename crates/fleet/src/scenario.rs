//! Fleet scenarios: the seeded description of *what* a fleet run simulates.
//!
//! A [`FleetScenario`] is a compact, copyable recipe; every per-device
//! decision (platform profile, isolation method, app mix, event-arrival
//! trace, sensor seed) is derived deterministically from the scenario seed
//! and the device index.  Two runs of the same scenario — on any number of
//! worker threads, on any machine — therefore simulate byte-identical
//! devices.

use amulet_apps::catalog::CatalogApp;
use amulet_core::layout::PlatformSpec;
use amulet_core::method::IsolationMethod;
use amulet_core::platform::builtin_platforms;
use amulet_os::events::DeliveryPolicy;

/// How the fleet runner treats the trace's arrival timestamps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TimeMode {
    /// Deliver events in arrival order with no notion of wall-clock time —
    /// the original fleet mode.  Reports carry active-cycle energy only
    /// and are byte-identical to what this mode has always produced.
    #[default]
    ArrivalOrder,
    /// Drive a virtual clock from the trace's `at_ms` stamps: the clock
    /// advances by executed-cycle time while handlers run and jumps across
    /// inter-event idle gaps, which are charged at the platform's LPM
    /// (sleep) current.  Events that arrive while the device is busy (or
    /// that the batching policy defers) accrue measured delivery latency.
    /// The delivered schedule is identical to [`TimeMode::ArrivalOrder`] —
    /// stepping adds time/energy accounting on top, so active cycles,
    /// events and faults match the arrival-order run exactly.
    Stepped,
}

impl TimeMode {
    /// Stable lowercase label (used in reports and CLI arguments).
    pub fn label(&self) -> &'static str {
        match self {
            TimeMode::ArrivalOrder => "arrival-order",
            TimeMode::Stepped => "stepped",
        }
    }
}

/// A seeded fleet-simulation recipe.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetScenario {
    /// Scenario name (recorded in reports).
    pub name: String,
    /// Master seed every per-device decision is derived from.
    pub seed: u64,
    /// Number of simulated devices.
    pub devices: usize,
    /// Events in each device's arrival trace.
    pub events_per_device: usize,
    /// Largest app mix a device may carry (1..=this many catalogue apps).
    pub max_apps_per_device: usize,
    /// `max_batch` of the batched-delivery leg.
    pub max_batch: usize,
    /// `max_latency_events` of the batched-delivery leg.
    pub max_latency_events: usize,
    /// How trace timestamps are treated (see [`TimeMode`]).
    pub time_mode: TimeMode,
    /// Overrides every platform's LPM (sleep) current, in nanoamperes,
    /// for [`TimeMode::Stepped`] runs.  `None` uses each platform's own
    /// datasheet figure; `Some(0)` makes idling free, which must — and
    /// the test suite asserts does — reproduce the arrival-order energy
    /// numbers exactly.
    pub lpm_current_override_na: Option<u32>,
}

impl Default for FleetScenario {
    /// The default production-scale scenario: 1000 devices drawn from every
    /// built-in platform, all four isolation methods and one-to-three-app
    /// mixes of the nine-app catalogue.
    fn default() -> Self {
        FleetScenario {
            name: "mixed-fleet".to_string(),
            seed: 0xF1EE7,
            devices: 1000,
            events_per_device: 120,
            max_apps_per_device: 3,
            max_batch: 8,
            max_latency_events: 12,
            time_mode: TimeMode::ArrivalOrder,
            lpm_current_override_na: None,
        }
    }
}

/// The fully-resolved configuration of one simulated device.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Device index within the fleet.
    pub index: usize,
    /// Hardware platform profile.
    pub platform: PlatformSpec,
    /// Isolation method the firmware is built for.
    pub method: IsolationMethod,
    /// The catalogue apps installed on this device.
    pub apps: Vec<CatalogApp>,
    /// Seed of the device's event-arrival trace.
    pub trace_seed: u64,
    /// Seed of the device's synthetic sensors.
    pub sensor_seed: u32,
}

impl DeviceConfig {
    /// A key identifying the firmware image this device needs; devices
    /// sharing a key share one AFT build (the fleet runner's cache).
    pub fn firmware_key(&self) -> String {
        let apps: Vec<&str> = self.apps.iter().map(|a| a.name).collect();
        format!("{}|{}|{}", self.platform.name, self.method, apps.join("+"))
    }
}

/// SplitMix64: a tiny deterministic seed mixer (reference constants), used
/// so consecutive device indices decorrelate fully.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FleetScenario {
    /// The batched delivery policy this scenario's batched leg uses.
    pub fn batched_policy(&self) -> DeliveryPolicy {
        DeliveryPolicy::Batched {
            max_batch: self.max_batch.max(1),
            max_latency_events: self.max_latency_events.max(1),
        }
    }

    /// Derives the configuration of device `index` — a pure function of
    /// `(self.seed, index)`.
    pub fn device_config(&self, index: usize) -> DeviceConfig {
        let mut state = self.seed ^ (index as u64).wrapping_mul(0xA076_1D64_78BD_642F);
        let platforms = builtin_platforms();
        let platform =
            platforms[(splitmix64(&mut state) % platforms.len() as u64) as usize].clone();
        let method = IsolationMethod::ALL
            [(splitmix64(&mut state) % IsolationMethod::ALL.len() as u64) as usize];
        let catalog = amulet_apps::catalog();
        let mix = 1 + (splitmix64(&mut state) % self.max_apps_per_device.max(1) as u64) as usize;
        let start = (splitmix64(&mut state) % catalog.len() as u64) as usize;
        let apps: Vec<CatalogApp> = (0..mix.min(catalog.len()))
            .map(|k| catalog[(start + k) % catalog.len()].clone())
            .collect();
        DeviceConfig {
            index,
            platform,
            method,
            apps,
            trace_seed: splitmix64(&mut state),
            sensor_seed: splitmix64(&mut state) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_configs_are_deterministic_functions_of_seed_and_index() {
        let s = FleetScenario::default();
        for i in [0, 1, 17, 999] {
            let a = s.device_config(i);
            let b = s.device_config(i);
            assert_eq!(a.firmware_key(), b.firmware_key());
            assert_eq!(a.trace_seed, b.trace_seed);
            assert_eq!(a.sensor_seed, b.sensor_seed);
        }
        let other = FleetScenario {
            seed: 99,
            ..FleetScenario::default()
        };
        let same =
            (0..50).all(|i| s.device_config(i).trace_seed == other.device_config(i).trace_seed);
        assert!(!same, "different seeds must give different fleets");
    }

    #[test]
    fn the_fleet_spans_platforms_methods_and_mix_sizes() {
        let s = FleetScenario::default();
        let configs: Vec<_> = (0..200).map(|i| s.device_config(i)).collect();
        let platforms: std::collections::BTreeSet<_> =
            configs.iter().map(|c| c.platform.name.clone()).collect();
        let methods: std::collections::BTreeSet<_> =
            configs.iter().map(|c| c.method.label()).collect();
        let sizes: std::collections::BTreeSet<_> = configs.iter().map(|c| c.apps.len()).collect();
        assert_eq!(platforms.len(), 5, "all five built-in platforms appear");
        assert_eq!(methods.len(), 4);
        assert_eq!(sizes, [1, 2, 3].into_iter().collect());
    }

    #[test]
    fn firmware_keys_collapse_identical_builds() {
        let s = FleetScenario::default();
        let keys: std::collections::BTreeSet<_> = (0..500)
            .map(|i| s.device_config(i).firmware_key())
            .collect();
        // 5 platforms × 4 methods × (9 windows × 3 sizes) = 540 is the
        // ceiling; 500 devices drawn from it must repeat keys often
        // (expected ≈330 distinct), which is what makes caching pay.
        assert!(keys.len() < 400, "got {} distinct keys", keys.len());
    }
}
