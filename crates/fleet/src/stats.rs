//! Aggregate statistics over a finished fleet run.
//!
//! All reductions are performed sequentially in device order, so a fleet
//! report is bit-identical regardless of how many worker threads produced
//! the per-device results.
//!
//! Two reduction paths share one fold ([`aggregate`] and
//! [`reduce_blocks`]): the exact path reduces a materialised
//! `Vec<DeviceResult>`, while the streaming path folds each finished
//! device block into a [`BlockSummary`] on the worker that simulated it —
//! no 10⁶-element result vector, no unbounded latency-sample
//! concatenation — and merges the summaries in block order.  Per-device
//! energy and lifetime percentiles stay exact at every fleet size (two
//! `f64`s per device); delivery-latency statistics come from an
//! order-independent bottom-k sketch that is exact while the fleet's
//! sample count fits its capacity and a uniform-sample estimate beyond
//! it, with a property test pinning the small-N case against the exact
//! computation.

use crate::faults::Verdict;
use crate::run::{DeviceResult, PolicyOutcome};
use std::collections::BTreeMap;

/// Upper edges (in percent) of the battery-impact histogram buckets; one
/// extra bucket catches everything above the last edge.  The paper's
/// headline claim is that every app stays below 0.5 %, so the edges
/// concentrate resolution there.
pub const BATTERY_IMPACT_BUCKET_EDGES: [f64; 7] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0];

/// The nearest-rank percentile of an ascending-sorted sample set
/// (0.0 for an empty one) — the one percentile definition every fleet
/// statistic uses.
fn nearest_rank(sorted: &[f64], percent: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    sorted[((percent / 100.0 * n as f64).ceil() as usize).clamp(1, n) - 1]
}

/// Distribution statistics of per-device energy, in joules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyStats {
    /// Sum over all devices.
    pub total_joules: f64,
    /// Mean per device.
    pub mean_joules: f64,
    /// Median (nearest-rank) per device.
    pub p50_joules: f64,
    /// 99th percentile (nearest-rank) per device.
    pub p99_joules: f64,
}

impl EnergyStats {
    fn from_sorted(values: &[f64]) -> Self {
        let total: f64 = values.iter().sum();
        EnergyStats {
            total_joules: total,
            mean_joules: total / values.len().max(1) as f64,
            p50_joules: nearest_rank(values, 50.0),
            p99_joules: nearest_rank(values, 99.0),
        }
    }
}

/// Distribution statistics of per-event delivery latency, in virtual
/// milliseconds, over every dispatched trace event of every device.
/// All-zero when the run had no clock ([`TimeMode::ArrivalOrder`]).
///
/// [`TimeMode::ArrivalOrder`]: crate::scenario::TimeMode::ArrivalOrder
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Latency samples observed (dispatched trace events).
    pub events: u64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Median (nearest-rank) latency.
    pub p50_ms: f64,
    /// 99th-percentile (nearest-rank) latency.
    pub p99_ms: f64,
    /// Worst latency observed.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Reduces raw samples (concatenated in device order — the order is
    /// deterministic, and sorting makes the statistics order-free anyway).
    fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        LatencyStats {
            events: n as u64,
            mean_ms: samples.iter().sum::<f64>() / n as f64,
            p50_ms: nearest_rank(&samples, 50.0),
            p99_ms: nearest_rank(&samples, 99.0),
            max_ms: samples[n - 1],
        }
    }
}

/// The fleet-wide reduction of one delivery policy's outcomes.
///
/// The time-stepped fields (`idle_joules` through `battery_weeks_p50`)
/// are zero under [`TimeMode::ArrivalOrder`], which has no clock.
///
/// [`TimeMode::ArrivalOrder`]: crate::scenario::TimeMode::ArrivalOrder
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyAggregate {
    /// Total cycles across the fleet.
    pub total_cycles: u64,
    /// Total switch cycles across the fleet.
    pub switch_cycles: u64,
    /// Share of all cycles spent switching (0..1).
    pub switch_overhead_share: f64,
    /// Switch cycles per delivered event — the fair cross-policy metric,
    /// since batched delivery also coalesces timer re-arms and therefore
    /// delivers fewer events over the same trace.
    pub switch_cycles_per_event: f64,
    /// Total events delivered.
    pub events_delivered: u64,
    /// Total faults.
    pub faults: u64,
    /// Total full directed switches.
    pub full_switches: u64,
    /// Total intra-batch boundaries.
    pub batch_boundaries: u64,
    /// Per-device (active) energy distribution.
    pub energy: EnergyStats,
    /// Total LPM (sleep) energy across the fleet, in joules.
    pub idle_joules: f64,
    /// Idle energy as a share of all energy (0..1): idle / (active+idle).
    pub idle_energy_share: f64,
    /// Fleet duty cycle (0..1): total active seconds over total virtual
    /// seconds.
    pub duty_cycle: f64,
    /// Delivery-latency distribution over every dispatched trace event.
    pub delivery_latency: LatencyStats,
    /// Stamped trace events the final flush delivered after the trace
    /// horizon, fleet-wide — delivered, but excluded from
    /// `delivery_latency` because their latency measures where the finite
    /// trace stopped rather than the delivery policy (DESIGN §6).
    pub truncated_events: u64,
    /// Median (nearest-rank) per-device battery-lifetime projection, in
    /// weeks.
    pub battery_weeks_p50: f64,
}

/// The order-sensitive running fold of one policy's outcomes — the single
/// implementation both the exact reduction ([`aggregate`]) and the
/// streaming reduction ([`reduce_blocks`]) finish through, so the derived
/// formulas can never drift apart.  Scalars accumulate in device order;
/// per-device energies and lifetimes are kept (two `f64`s per device) so
/// their percentiles are exact at every fleet size.
#[derive(Clone, Debug, Default)]
struct PolicyFold {
    total_cycles: u64,
    switch_cycles: u64,
    events_delivered: u64,
    faults: u64,
    full_switches: u64,
    batch_boundaries: u64,
    truncated_events: u64,
    idle_joules: f64,
    active_seconds: f64,
    virtual_seconds: f64,
    energies: Vec<f64>,
    battery_weeks: Vec<f64>,
}

impl PolicyFold {
    fn add(&mut self, o: &PolicyOutcome) {
        self.total_cycles += o.total_cycles;
        self.switch_cycles += o.switch_cycles;
        self.events_delivered += o.events_delivered;
        self.faults += o.faults;
        self.full_switches += o.full_switches;
        self.batch_boundaries += o.batch_boundaries;
        self.truncated_events += o.truncated_events;
        self.idle_joules += o.idle_joules;
        self.active_seconds += o.active_seconds;
        self.virtual_seconds += o.virtual_seconds;
        self.energies.push(o.energy_joules);
        self.battery_weeks.push(o.battery_weeks);
    }

    /// Merges a later block's fold onto this one (block order = device
    /// order, so the concatenated per-device vectors stay in device
    /// order).
    fn merge(&mut self, later: &PolicyFold) {
        self.total_cycles += later.total_cycles;
        self.switch_cycles += later.switch_cycles;
        self.events_delivered += later.events_delivered;
        self.faults += later.faults;
        self.full_switches += later.full_switches;
        self.batch_boundaries += later.batch_boundaries;
        self.truncated_events += later.truncated_events;
        self.idle_joules += later.idle_joules;
        self.active_seconds += later.active_seconds;
        self.virtual_seconds += later.virtual_seconds;
        self.energies.extend_from_slice(&later.energies);
        self.battery_weeks.extend_from_slice(&later.battery_weeks);
    }

    fn finish(mut self, delivery_latency: LatencyStats) -> PolicyAggregate {
        self.energies.sort_by(f64::total_cmp);
        let energy = EnergyStats::from_sorted(&self.energies);
        let switch_overhead_share = if self.total_cycles == 0 {
            0.0
        } else {
            self.switch_cycles as f64 / self.total_cycles as f64
        };
        let switch_cycles_per_event = if self.events_delivered == 0 {
            0.0
        } else {
            self.switch_cycles as f64 / self.events_delivered as f64
        };
        let all_joules = energy.total_joules + self.idle_joules;
        let idle_energy_share = if all_joules > 0.0 {
            self.idle_joules / all_joules
        } else {
            0.0
        };
        let duty_cycle = if self.virtual_seconds > 0.0 {
            self.active_seconds / self.virtual_seconds
        } else {
            0.0
        };
        self.battery_weeks.sort_by(f64::total_cmp);
        let battery_weeks_p50 = nearest_rank(&self.battery_weeks, 50.0);
        PolicyAggregate {
            total_cycles: self.total_cycles,
            switch_cycles: self.switch_cycles,
            switch_overhead_share,
            switch_cycles_per_event,
            events_delivered: self.events_delivered,
            faults: self.faults,
            full_switches: self.full_switches,
            batch_boundaries: self.batch_boundaries,
            energy,
            idle_joules: self.idle_joules,
            idle_energy_share,
            duty_cycle,
            delivery_latency,
            truncated_events: self.truncated_events,
            battery_weeks_p50,
        }
    }
}

fn reduce_policy<'a>(
    devices: &'a [DeviceResult],
    outcome: impl Fn(&'a DeviceResult) -> &'a PolicyOutcome,
    latencies: impl Fn(&'a DeviceResult) -> &'a [f64],
) -> PolicyAggregate {
    let mut fold = PolicyFold::default();
    let mut samples: Vec<f64> = Vec::new();
    for d in devices {
        fold.add(outcome(d));
        samples.extend_from_slice(latencies(d));
    }
    fold.finish(LatencyStats::from_samples(samples))
}

/// Capacity of the delivery-latency sketch: statistics are **exact**
/// while a leg's fleet-wide sample count fits, and a deterministic
/// uniform-sample estimate beyond it.
const LATENCY_SKETCH_K: usize = 2048;

/// SplitMix64 finalizer over a sample's identity, giving every latency
/// sample a pseudo-random priority that depends only on *which* sample it
/// is — never on which worker or block produced it.
fn sample_priority(device: u64, seq: u32) -> u64 {
    let mut z = device
        .wrapping_mul(0xA076_1D64_78BD_642F)
        .wrapping_add((seq as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An order-independent bottom-k sample sketch of delivery latencies.
///
/// Every sample gets a deterministic priority hashed from its identity
/// (global device index, per-device sample sequence); the sketch keeps
/// the `k` smallest-priority samples.  "Keep the k smallest of a set" is
/// associative, commutative and duplicate-free (priorities are unique per
/// leg because ties break on the identity itself), so any merge order —
/// any worker count, any block claim order — retains exactly the same
/// sample set.  While the total count fits `k` the retained set is *all*
/// samples and the finished statistics are exact; beyond `k` the retained
/// set is a uniform random sample and the statistics are estimates
/// (`events` and `max_ms` stay exact — they are order-free scalars).
#[derive(Clone, Debug, Default)]
struct LatencySketch {
    /// Retained `(priority, device, seq, value)` entries; pruned to the
    /// `k` smallest `(priority, device, seq)` whenever it overflows.
    entries: Vec<(u64, u64, u32, f64)>,
    /// Total samples observed (not just retained).
    count: u64,
    /// Worst latency observed (over all samples).
    max_ms: f64,
}

impl LatencySketch {
    fn push(&mut self, device: u64, seq: u32, value: f64) {
        self.count += 1;
        self.max_ms = self.max_ms.max(value);
        self.entries
            .push((sample_priority(device, seq), device, seq, value));
        if self.entries.len() >= 2 * LATENCY_SKETCH_K {
            self.prune();
        }
    }

    fn prune(&mut self) {
        if self.entries.len() > LATENCY_SKETCH_K {
            self.entries
                .sort_unstable_by_key(|&(pri, dev, seq, _)| (pri, dev, seq));
            self.entries.truncate(LATENCY_SKETCH_K);
        }
    }

    /// Folds a later (or earlier — order does not matter) sketch in.
    fn merge(&mut self, other: &LatencySketch) {
        self.count += other.count;
        self.max_ms = self.max_ms.max(other.max_ms);
        self.entries.extend_from_slice(&other.entries);
        self.prune();
    }

    /// Finishes the sketch into [`LatencyStats`].
    fn finish(mut self) -> LatencyStats {
        self.prune();
        if self.count == 0 {
            return LatencyStats::default();
        }
        let retained: Vec<f64> = self.entries.iter().map(|&(_, _, _, v)| v).collect();
        if self.count <= retained.len() as u64 {
            // Every sample was retained: identical to the exact
            // computation, sorted-sum mean included.
            return LatencyStats::from_samples(retained);
        }
        let estimate = LatencyStats::from_samples(retained);
        LatencyStats {
            events: self.count,
            mean_ms: estimate.mean_ms,
            p50_ms: estimate.p50_ms,
            p99_ms: estimate.p99_ms,
            max_ms: self.max_ms,
        }
    }
}

/// The streamed reduction of one finished device block: order-free
/// scalar partials, two per-device `f64`s, and the latency sketches —
/// everything [`reduce_blocks`] needs, nothing that grows with the
/// block's event count.  Workers fold each block into its summary as soon
/// as the block finishes, so a 10⁶-device campaign never materialises
/// 10⁶ `DeviceResult`s.
#[derive(Clone, Debug, Default)]
pub struct BlockSummary {
    devices: usize,
    per_event: PolicyFold,
    batched: PolicyFold,
    per_event_latency: LatencySketch,
    batched_latency: LatencySketch,
    per_platform: BTreeMap<String, u64>,
    per_method: BTreeMap<String, u64>,
    histograms: BTreeMap<String, ProfileHistogram>,
    containment: ContainmentMap,
    ota: OtaWaveStats,
}

impl BlockSummary {
    /// Folds a finished block's results (in device order) into a summary.
    pub fn from_devices(devices: &[DeviceResult]) -> Self {
        let mut s = BlockSummary {
            devices: devices.len(),
            ..BlockSummary::default()
        };
        for d in devices {
            s.per_event.add(&d.per_event);
            s.batched.add(&d.batched);
            for (seq, v) in d.per_event_latencies_ms.iter().enumerate() {
                s.per_event_latency.push(d.index as u64, seq as u32, *v);
            }
            for (seq, v) in d.batched_latencies_ms.iter().enumerate() {
                s.batched_latency.push(d.index as u64, seq as u32, *v);
            }
            *s.per_platform.entry(d.platform.clone()).or_insert(0) += 1;
            *s.per_method
                .entry(d.method.label().to_string())
                .or_insert(0) += 1;
            for (profile, impact) in &d.battery_impacts {
                bucket_impact(&mut s.histograms, profile, *impact);
            }
            record_fault(&mut s.containment, d);
            s.ota.record(d);
        }
        s.per_event_latency.prune();
        s.batched_latency.prune();
        s
    }
}

/// Records one (device, app) battery impact in the per-profile histogram
/// map — the one bucketing implementation [`aggregate`] and
/// [`BlockSummary::from_devices`] share.
fn bucket_impact(histograms: &mut BTreeMap<String, ProfileHistogram>, profile: &str, impact: f64) {
    let h = histograms
        .entry(profile.to_string())
        .or_insert_with(|| ProfileHistogram {
            profile: profile.to_string(),
            instances: 0,
            max_impact_percent: 0.0,
            buckets: vec![0; BATTERY_IMPACT_BUCKET_EDGES.len() + 1],
        });
    h.instances += 1;
    h.max_impact_percent = h.max_impact_percent.max(impact);
    let bucket = BATTERY_IMPACT_BUCKET_EDGES
        .iter()
        .position(|edge| impact <= *edge)
        .unwrap_or(BATTERY_IMPACT_BUCKET_EDGES.len());
    h.buckets[bucket] += 1;
}

/// Reduces block summaries (must be in block order) to the fleet
/// aggregate — the streaming counterpart of [`aggregate`], sharing its
/// fold and formulas.  For a single block the result is identical to
/// [`aggregate`] over the block's devices, latency statistics included
/// while the sample count fits the sketch (the equivalence property test
/// pins both).
pub fn reduce_blocks(blocks: &[BlockSummary]) -> FleetAggregate {
    let mut devices = 0usize;
    let mut per_event = PolicyFold::default();
    let mut batched = PolicyFold::default();
    let mut per_event_latency = LatencySketch::default();
    let mut batched_latency = LatencySketch::default();
    let mut per_platform: BTreeMap<String, u64> = BTreeMap::new();
    let mut per_method: BTreeMap<String, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, ProfileHistogram> = BTreeMap::new();
    let mut containment = ContainmentMap::new();
    let mut ota = OtaWaveStats::default();
    for b in blocks {
        devices += b.devices;
        per_event.merge(&b.per_event);
        batched.merge(&b.batched);
        per_event_latency.merge(&b.per_event_latency);
        batched_latency.merge(&b.batched_latency);
        merge_containment(&mut containment, &b.containment);
        ota.merge(&b.ota);
        for (k, v) in &b.per_platform {
            *per_platform.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &b.per_method {
            *per_method.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &b.histograms {
            let into = histograms
                .entry(k.clone())
                .or_insert_with(|| ProfileHistogram {
                    profile: h.profile.clone(),
                    instances: 0,
                    max_impact_percent: 0.0,
                    buckets: vec![0; BATTERY_IMPACT_BUCKET_EDGES.len() + 1],
                });
            into.instances += h.instances;
            into.max_impact_percent = into.max_impact_percent.max(h.max_impact_percent);
            for (b, add) in into.buckets.iter_mut().zip(&h.buckets) {
                *b += add;
            }
        }
    }
    let per_event = per_event.finish(per_event_latency.finish());
    let batched = batched.finish(batched_latency.finish());
    finish_aggregate(
        devices,
        per_platform,
        per_method,
        histograms,
        containment,
        ota,
        per_event,
        batched,
    )
}

/// Assembles the [`FleetAggregate`] from finished pieces — shared by
/// [`aggregate`] and [`reduce_blocks`] so the savings formulas are
/// written once.
#[allow(clippy::too_many_arguments)]
fn finish_aggregate(
    devices: usize,
    per_platform: BTreeMap<String, u64>,
    per_method: BTreeMap<String, u64>,
    histograms: BTreeMap<String, ProfileHistogram>,
    containment: ContainmentMap,
    ota_wave: OtaWaveStats,
    per_event: PolicyAggregate,
    batched: PolicyAggregate,
) -> FleetAggregate {
    let saved = per_event
        .switch_cycles
        .saturating_sub(batched.switch_cycles);
    FleetAggregate {
        devices,
        devices_per_platform: per_platform.into_iter().collect(),
        devices_per_method: per_method.into_iter().collect(),
        switch_cycles_saved_percent: if per_event.switch_cycles == 0 {
            0.0
        } else {
            saved as f64 / per_event.switch_cycles as f64 * 100.0
        },
        switch_cycles_saved_per_event_percent: if per_event.switch_cycles_per_event <= 0.0 {
            0.0
        } else {
            (per_event.switch_cycles_per_event - batched.switch_cycles_per_event).max(0.0)
                / per_event.switch_cycles_per_event
                * 100.0
        },
        per_event,
        batched,
        battery_histograms: histograms.into_values().collect(),
        containment: finish_containment(containment),
        ota_wave,
    }
}

/// A battery-impact histogram for one ARP profile across every fleet
/// device that carried it.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileHistogram {
    /// Profile (application) name.
    pub profile: String,
    /// Number of (device, app) instances observed.
    pub instances: u64,
    /// Worst impact observed, in percent.
    pub max_impact_percent: f64,
    /// Counts per bucket: `buckets[i]` counts impacts ≤
    /// [`BATTERY_IMPACT_BUCKET_EDGES`]`[i]`; the final entry counts the
    /// rest.
    pub buckets: Vec<u64>,
}

/// One cell row of the containment matrix: every device of one
/// `(platform, method, attack)` combination, with its verdict counts.
/// The five counters partition `devices` — each probed device gets
/// exactly one verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContainmentRow {
    /// Platform profile name.
    pub platform: String,
    /// Isolation-method label.
    pub method: String,
    /// Attack label (the adapted [`amulet_apps::FaultKind`]).
    pub fault: String,
    /// Armed devices in this cell.
    pub devices: u64,
    /// Probes trapped by memory-protection hardware.
    pub caught_by_mpu: u64,
    /// Probes refused by compiled-in software checks.
    pub caught_by_software: u64,
    /// Probes that ran to completion — the attack landed.
    pub escaped: u64,
    /// Probes the OS watchdog cut off.
    pub hung: u64,
    /// Probes that crashed on non-protection hardware.
    pub crashed: u64,
}

/// The containment matrix under accumulation: verdict counts per
/// `(platform, method, attack)` cell.  A `BTreeMap` so iteration — and
/// therefore the finished row order — is deterministic.
pub(crate) type ContainmentMap = BTreeMap<(String, String, String), [u64; 5]>;

/// Folds one device's probe verdict (if any) into the containment map.
pub(crate) fn record_fault(map: &mut ContainmentMap, d: &DeviceResult) {
    if let Some(probe) = &d.fault {
        let key = (
            d.platform.clone(),
            d.method.label().to_string(),
            probe.kind.label().to_string(),
        );
        map.entry(key).or_insert([0; 5])[probe.verdict.index()] += 1;
    }
}

/// Merges a later containment map into an earlier one (additive, so any
/// block order gives the same matrix).
pub(crate) fn merge_containment(into: &mut ContainmentMap, later: &ContainmentMap) {
    for (key, counts) in later {
        let cell = into.entry(key.clone()).or_insert([0; 5]);
        for (c, add) in cell.iter_mut().zip(counts) {
            *c += add;
        }
    }
}

/// Finishes the containment map into name-sorted matrix rows.
pub(crate) fn finish_containment(map: ContainmentMap) -> Vec<ContainmentRow> {
    map.into_iter()
        .map(|((platform, method, fault), c)| ContainmentRow {
            platform,
            method,
            fault,
            devices: c.iter().sum(),
            caught_by_mpu: c[Verdict::CaughtByMpu.index()],
            caught_by_software: c[Verdict::CaughtBySoftware.index()],
            escaped: c[Verdict::Escaped.index()],
            hung: c[Verdict::Hung.index()],
            crashed: c[Verdict::Crashed.index()],
        })
        .collect()
}

/// The fleet-wide reduction of the OTA wave: how the swept devices' OTA
/// transactions ended.  `installed + rolled_back == devices` always —
/// `bricked` counts the impossible third state so reports can prove it
/// stays zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OtaWaveStats {
    /// Devices the wave swept.
    pub devices: u64,
    /// Devices whose re-install verified and was accepted.
    pub installed: u64,
    /// Devices that exhausted their retries and kept the running image.
    pub rolled_back: u64,
    /// Devices that ended neither installed nor rolled back (always 0).
    pub bricked: u64,
    /// Devices that needed more than one delivery attempt.
    pub retried_devices: u64,
    /// Total delivery attempts across the wave.
    pub attempts: u64,
    /// Attempts the envelope verification rejected.
    pub corrupt_attempts: u64,
    /// Total seeded retry backoff across the wave, in milliseconds.
    pub backoff_ms: u64,
}

impl OtaWaveStats {
    /// Folds one device's OTA outcome (if any) in.
    pub(crate) fn record(&mut self, d: &DeviceResult) {
        if let Some(ota) = &d.ota {
            self.devices += 1;
            self.installed += u64::from(ota.installed);
            self.rolled_back += u64::from(ota.rolled_back);
            self.bricked += u64::from(ota.bricked());
            self.retried_devices += u64::from(ota.attempts > 1);
            self.attempts += u64::from(ota.attempts);
            self.corrupt_attempts += u64::from(ota.corrupt_attempts);
            self.backoff_ms += ota.backoff_ms;
        }
    }

    /// Merges a later block's wave stats in (additive).
    pub(crate) fn merge(&mut self, later: &OtaWaveStats) {
        self.devices += later.devices;
        self.installed += later.installed;
        self.rolled_back += later.rolled_back;
        self.bricked += later.bricked;
        self.retried_devices += later.retried_devices;
        self.attempts += later.attempts;
        self.corrupt_attempts += later.corrupt_attempts;
        self.backoff_ms += later.backoff_ms;
    }
}

/// The complete aggregate of a fleet run.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetAggregate {
    /// Number of devices simulated.
    pub devices: usize,
    /// Devices per platform profile, name-sorted.
    pub devices_per_platform: Vec<(String, u64)>,
    /// Devices per isolation method, label-sorted.
    pub devices_per_method: Vec<(String, u64)>,
    /// Reduction of the per-event (baseline) leg.
    pub per_event: PolicyAggregate,
    /// Reduction of the batched leg.
    pub batched: PolicyAggregate,
    /// How much switch work batching saved, in percent of the per-event
    /// leg's switch cycles (raw totals; note the legs deliver different
    /// event counts because batching coalesces timer re-arms).
    pub switch_cycles_saved_percent: f64,
    /// How much switch work batching saved **per delivered event**, in
    /// percent — the normalized comparison.
    pub switch_cycles_saved_per_event_percent: f64,
    /// Battery-lifetime impact histograms, one per ARP profile, name-sorted.
    pub battery_histograms: Vec<ProfileHistogram>,
    /// The containment matrix: verdict counts per `(platform, method,
    /// attack)` cell, name-sorted.  Empty when the scenario armed no
    /// faults.
    pub containment: Vec<ContainmentRow>,
    /// The OTA wave reduction (all-zero when the scenario swept nothing).
    pub ota_wave: OtaWaveStats,
}

/// Reduces per-device results (must be in device order) to the aggregate.
pub fn aggregate(devices: &[DeviceResult]) -> FleetAggregate {
    let per_event = reduce_policy(devices, |d| &d.per_event, |d| &d.per_event_latencies_ms);
    let batched = reduce_policy(devices, |d| &d.batched, |d| &d.batched_latencies_ms);

    let mut per_platform: BTreeMap<String, u64> = BTreeMap::new();
    let mut per_method: BTreeMap<String, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, ProfileHistogram> = BTreeMap::new();
    let mut containment = ContainmentMap::new();
    let mut ota = OtaWaveStats::default();
    for d in devices {
        *per_platform.entry(d.platform.clone()).or_insert(0) += 1;
        *per_method.entry(d.method.label().to_string()).or_insert(0) += 1;
        for (profile, impact) in &d.battery_impacts {
            bucket_impact(&mut histograms, profile, *impact);
        }
        record_fault(&mut containment, d);
        ota.record(d);
    }
    finish_aggregate(
        devices.len(),
        per_platform,
        per_method,
        histograms,
        containment,
        ota,
        per_event,
        batched,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(cycles: u64, switch: u64, energy: f64) -> PolicyOutcome {
        PolicyOutcome {
            total_cycles: cycles,
            switch_cycles: switch,
            app_cycles: cycles - switch,
            service_cycles: 0,
            events_delivered: 10,
            syscalls: 5,
            faults: 0,
            full_switches: 20,
            batch_boundaries: 0,
            energy_joules: energy,
            idle_joules: 0.0,
            virtual_seconds: 0.0,
            active_seconds: 0.0,
            battery_weeks: 0.0,
            truncated_events: 0,
        }
    }

    fn device(index: usize, energy: f64) -> DeviceResult {
        DeviceResult {
            index,
            platform: "msp430fr5969".into(),
            method: amulet_core::method::IsolationMethod::Mpu,
            app_names: vec!["Clock".into()],
            per_event: outcome(1000, 400, energy),
            batched: outcome(900, 300, energy * 0.9),
            battery_impacts: vec![("Clock".into(), 0.003)],
            per_event_latencies_ms: Vec::new(),
            batched_latencies_ms: Vec::new(),
            fault: None,
            ota: None,
        }
    }

    #[test]
    fn percentiles_use_nearest_rank_on_sorted_energies() {
        let devices: Vec<DeviceResult> = (0..100).map(|i| device(i, (i + 1) as f64)).collect();
        let agg = aggregate(&devices);
        assert_eq!(agg.per_event.energy.p50_joules, 50.0);
        assert_eq!(agg.per_event.energy.p99_joules, 99.0);
        assert_eq!(agg.per_event.energy.total_joules, 5050.0);
        assert_eq!(agg.per_event.energy.mean_joules, 50.5);
    }

    #[test]
    fn histograms_bucket_battery_impacts_per_profile() {
        let devices: Vec<DeviceResult> = (0..10).map(|i| device(i, 1.0)).collect();
        let agg = aggregate(&devices);
        assert_eq!(agg.battery_histograms.len(), 1);
        let h = &agg.battery_histograms[0];
        assert_eq!(h.profile, "Clock");
        assert_eq!(h.instances, 10);
        // 0.003 lands in the (0.001, 0.005] bucket.
        assert_eq!(h.buckets[1], 10);
        assert_eq!(h.buckets.iter().sum::<u64>(), 10);
        assert!(h.max_impact_percent > 0.0);
    }

    #[test]
    fn switch_savings_are_reported_in_percent() {
        let devices: Vec<DeviceResult> = (0..4).map(|i| device(i, 1.0)).collect();
        let agg = aggregate(&devices);
        // 400 → 300 switch cycles per device is a 25 % saving.
        assert_eq!(agg.switch_cycles_saved_percent, 25.0);
        assert!(agg.per_event.switch_overhead_share > agg.batched.switch_overhead_share);
    }

    #[test]
    fn empty_fleet_aggregates_to_zeroes() {
        let agg = aggregate(&[]);
        assert_eq!(agg.devices, 0);
        assert_eq!(agg.per_event.energy.total_joules, 0.0);
        assert_eq!(agg.switch_cycles_saved_percent, 0.0);
        assert_eq!(agg.per_event.delivery_latency, LatencyStats::default());
        assert_eq!(agg.per_event.idle_energy_share, 0.0);
        assert!(agg.containment.is_empty());
        assert_eq!(agg.ota_wave, OtaWaveStats::default());
    }

    #[test]
    fn containment_rows_partition_devices_by_verdict() {
        use crate::faults::{FaultProbe, OtaOutcome};
        use amulet_apps::FaultKind;
        let mut devices: Vec<DeviceResult> = (0..6).map(|i| device(i, 1.0)).collect();
        for (i, d) in devices.iter_mut().enumerate().take(4) {
            d.fault = Some(FaultProbe {
                kind: FaultKind::WildWriteOsRam,
                verdict: if i == 0 {
                    Verdict::Escaped
                } else {
                    Verdict::CaughtByMpu
                },
            });
        }
        devices[4].fault = Some(FaultProbe {
            kind: FaultKind::RunawayLoop,
            verdict: Verdict::Hung,
        });
        devices[5].ota = Some(OtaOutcome {
            install_at_ms: 10,
            attempts: 3,
            corrupt_attempts: 2,
            installed: true,
            rolled_back: false,
            backoff_ms: 750,
        });
        let agg = aggregate(&devices);
        assert_eq!(agg.containment.len(), 2, "two distinct cells");
        let wild = agg
            .containment
            .iter()
            .find(|r| r.fault == "wild-write-os-ram")
            .unwrap();
        assert_eq!((wild.devices, wild.caught_by_mpu, wild.escaped), (4, 3, 1));
        assert_eq!(wild.caught_by_software + wild.hung + wild.crashed, 0);
        assert_eq!(wild.platform, "msp430fr5969");
        assert_eq!(wild.method, "MPU");
        let runaway = agg
            .containment
            .iter()
            .find(|r| r.fault == "runaway-loop")
            .unwrap();
        assert_eq!((runaway.devices, runaway.hung), (1, 1));
        let w = &agg.ota_wave;
        assert_eq!(
            (w.devices, w.installed, w.rolled_back, w.bricked),
            (1, 1, 0, 0)
        );
        assert_eq!(
            (w.retried_devices, w.attempts, w.corrupt_attempts),
            (1, 3, 2)
        );
        assert_eq!(w.backoff_ms, 750);

        // The streaming path folds the same devices to the same matrix,
        // however the blocks are cut.
        let split = [
            BlockSummary::from_devices(&devices[..3]),
            BlockSummary::from_devices(&devices[3..]),
        ];
        assert_eq!(reduce_blocks(&split), agg);
    }

    #[test]
    fn stepped_fields_reduce_across_devices() {
        let mut devices: Vec<DeviceResult> = (0..4).map(|i| device(i, 1.0)).collect();
        for (i, d) in devices.iter_mut().enumerate() {
            d.per_event.idle_joules = 2.0;
            d.per_event.active_seconds = 1.0;
            d.per_event.virtual_seconds = 10.0;
            d.per_event.battery_weeks = (i + 1) as f64;
            d.per_event_latencies_ms = vec![i as f64, 100.0];
        }
        let agg = aggregate(&devices);
        let p = &agg.per_event;
        assert_eq!(p.idle_joules, 8.0);
        // 8 J idle against 4 J active (4 devices × 1 J).
        assert!((p.idle_energy_share - 8.0 / 12.0).abs() < 1e-12);
        assert!((p.duty_cycle - 0.1).abs() < 1e-12);
        // Samples: [0,100, 1,100, 2,100, 3,100] → p50 = 4th of 8 = 3.
        assert_eq!(p.delivery_latency.events, 8);
        assert_eq!(p.delivery_latency.p50_ms, 3.0);
        assert_eq!(p.delivery_latency.p99_ms, 100.0);
        assert_eq!(p.delivery_latency.max_ms, 100.0);
        // Battery weeks [1,2,3,4] → nearest-rank p50 = 2.
        assert_eq!(p.battery_weeks_p50, 2.0);
        // The untouched batched leg stays all-zero.
        assert_eq!(agg.batched.delivery_latency, LatencyStats::default());
        assert_eq!(agg.batched.duty_cycle, 0.0);
    }
}
