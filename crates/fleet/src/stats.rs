//! Aggregate statistics over a finished fleet run.
//!
//! All reductions are performed sequentially in device order, so a fleet
//! report is bit-identical regardless of how many worker threads produced
//! the per-device results.

use crate::run::{DeviceResult, PolicyOutcome};
use std::collections::BTreeMap;

/// Upper edges (in percent) of the battery-impact histogram buckets; one
/// extra bucket catches everything above the last edge.  The paper's
/// headline claim is that every app stays below 0.5 %, so the edges
/// concentrate resolution there.
pub const BATTERY_IMPACT_BUCKET_EDGES: [f64; 7] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0];

/// The nearest-rank percentile of an ascending-sorted sample set
/// (0.0 for an empty one) — the one percentile definition every fleet
/// statistic uses.
fn nearest_rank(sorted: &[f64], percent: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    sorted[((percent / 100.0 * n as f64).ceil() as usize).clamp(1, n) - 1]
}

/// Distribution statistics of per-device energy, in joules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyStats {
    /// Sum over all devices.
    pub total_joules: f64,
    /// Mean per device.
    pub mean_joules: f64,
    /// Median (nearest-rank) per device.
    pub p50_joules: f64,
    /// 99th percentile (nearest-rank) per device.
    pub p99_joules: f64,
}

impl EnergyStats {
    fn from_sorted(values: &[f64]) -> Self {
        let total: f64 = values.iter().sum();
        EnergyStats {
            total_joules: total,
            mean_joules: total / values.len().max(1) as f64,
            p50_joules: nearest_rank(values, 50.0),
            p99_joules: nearest_rank(values, 99.0),
        }
    }
}

/// Distribution statistics of per-event delivery latency, in virtual
/// milliseconds, over every dispatched trace event of every device.
/// All-zero when the run had no clock ([`TimeMode::ArrivalOrder`]).
///
/// [`TimeMode::ArrivalOrder`]: crate::scenario::TimeMode::ArrivalOrder
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Latency samples observed (dispatched trace events).
    pub events: u64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Median (nearest-rank) latency.
    pub p50_ms: f64,
    /// 99th-percentile (nearest-rank) latency.
    pub p99_ms: f64,
    /// Worst latency observed.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Reduces raw samples (concatenated in device order — the order is
    /// deterministic, and sorting makes the statistics order-free anyway).
    fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        LatencyStats {
            events: n as u64,
            mean_ms: samples.iter().sum::<f64>() / n as f64,
            p50_ms: nearest_rank(&samples, 50.0),
            p99_ms: nearest_rank(&samples, 99.0),
            max_ms: samples[n - 1],
        }
    }
}

/// The fleet-wide reduction of one delivery policy's outcomes.
///
/// The time-stepped fields (`idle_joules` through `battery_weeks_p50`)
/// are zero under [`TimeMode::ArrivalOrder`], which has no clock.
///
/// [`TimeMode::ArrivalOrder`]: crate::scenario::TimeMode::ArrivalOrder
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyAggregate {
    /// Total cycles across the fleet.
    pub total_cycles: u64,
    /// Total switch cycles across the fleet.
    pub switch_cycles: u64,
    /// Share of all cycles spent switching (0..1).
    pub switch_overhead_share: f64,
    /// Switch cycles per delivered event — the fair cross-policy metric,
    /// since batched delivery also coalesces timer re-arms and therefore
    /// delivers fewer events over the same trace.
    pub switch_cycles_per_event: f64,
    /// Total events delivered.
    pub events_delivered: u64,
    /// Total faults.
    pub faults: u64,
    /// Total full directed switches.
    pub full_switches: u64,
    /// Total intra-batch boundaries.
    pub batch_boundaries: u64,
    /// Per-device (active) energy distribution.
    pub energy: EnergyStats,
    /// Total LPM (sleep) energy across the fleet, in joules.
    pub idle_joules: f64,
    /// Idle energy as a share of all energy (0..1): idle / (active+idle).
    pub idle_energy_share: f64,
    /// Fleet duty cycle (0..1): total active seconds over total virtual
    /// seconds.
    pub duty_cycle: f64,
    /// Delivery-latency distribution over every dispatched trace event.
    pub delivery_latency: LatencyStats,
    /// Median (nearest-rank) per-device battery-lifetime projection, in
    /// weeks.
    pub battery_weeks_p50: f64,
}

fn reduce_policy<'a>(
    devices: &'a [DeviceResult],
    outcome: impl Fn(&'a DeviceResult) -> &'a PolicyOutcome,
    latencies: impl Fn(&'a DeviceResult) -> &'a [f64],
) -> PolicyAggregate {
    let mut agg = PolicyAggregate {
        total_cycles: 0,
        switch_cycles: 0,
        switch_overhead_share: 0.0,
        switch_cycles_per_event: 0.0,
        events_delivered: 0,
        faults: 0,
        full_switches: 0,
        batch_boundaries: 0,
        energy: EnergyStats {
            total_joules: 0.0,
            mean_joules: 0.0,
            p50_joules: 0.0,
            p99_joules: 0.0,
        },
        idle_joules: 0.0,
        idle_energy_share: 0.0,
        duty_cycle: 0.0,
        delivery_latency: LatencyStats::default(),
        battery_weeks_p50: 0.0,
    };
    let mut energies: Vec<f64> = Vec::new();
    let mut battery_weeks: Vec<f64> = Vec::new();
    let mut samples: Vec<f64> = Vec::new();
    let mut active_seconds = 0.0;
    let mut virtual_seconds = 0.0;
    for d in devices {
        let o = outcome(d);
        agg.total_cycles += o.total_cycles;
        agg.switch_cycles += o.switch_cycles;
        agg.events_delivered += o.events_delivered;
        agg.faults += o.faults;
        agg.full_switches += o.full_switches;
        agg.batch_boundaries += o.batch_boundaries;
        agg.idle_joules += o.idle_joules;
        active_seconds += o.active_seconds;
        virtual_seconds += o.virtual_seconds;
        energies.push(o.energy_joules);
        battery_weeks.push(o.battery_weeks);
        samples.extend_from_slice(latencies(d));
    }
    energies.sort_by(f64::total_cmp);
    agg.energy = EnergyStats::from_sorted(&energies);
    agg.switch_overhead_share = if agg.total_cycles == 0 {
        0.0
    } else {
        agg.switch_cycles as f64 / agg.total_cycles as f64
    };
    agg.switch_cycles_per_event = if agg.events_delivered == 0 {
        0.0
    } else {
        agg.switch_cycles as f64 / agg.events_delivered as f64
    };
    let all_joules = agg.energy.total_joules + agg.idle_joules;
    if all_joules > 0.0 {
        agg.idle_energy_share = agg.idle_joules / all_joules;
    }
    if virtual_seconds > 0.0 {
        agg.duty_cycle = active_seconds / virtual_seconds;
    }
    agg.delivery_latency = LatencyStats::from_samples(samples);
    battery_weeks.sort_by(f64::total_cmp);
    agg.battery_weeks_p50 = nearest_rank(&battery_weeks, 50.0);
    agg
}

/// A battery-impact histogram for one ARP profile across every fleet
/// device that carried it.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileHistogram {
    /// Profile (application) name.
    pub profile: String,
    /// Number of (device, app) instances observed.
    pub instances: u64,
    /// Worst impact observed, in percent.
    pub max_impact_percent: f64,
    /// Counts per bucket: `buckets[i]` counts impacts ≤
    /// [`BATTERY_IMPACT_BUCKET_EDGES`]`[i]`; the final entry counts the
    /// rest.
    pub buckets: Vec<u64>,
}

/// The complete aggregate of a fleet run.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetAggregate {
    /// Number of devices simulated.
    pub devices: usize,
    /// Devices per platform profile, name-sorted.
    pub devices_per_platform: Vec<(String, u64)>,
    /// Devices per isolation method, label-sorted.
    pub devices_per_method: Vec<(String, u64)>,
    /// Reduction of the per-event (baseline) leg.
    pub per_event: PolicyAggregate,
    /// Reduction of the batched leg.
    pub batched: PolicyAggregate,
    /// How much switch work batching saved, in percent of the per-event
    /// leg's switch cycles (raw totals; note the legs deliver different
    /// event counts because batching coalesces timer re-arms).
    pub switch_cycles_saved_percent: f64,
    /// How much switch work batching saved **per delivered event**, in
    /// percent — the normalized comparison.
    pub switch_cycles_saved_per_event_percent: f64,
    /// Battery-lifetime impact histograms, one per ARP profile, name-sorted.
    pub battery_histograms: Vec<ProfileHistogram>,
}

/// Reduces per-device results (must be in device order) to the aggregate.
pub fn aggregate(devices: &[DeviceResult]) -> FleetAggregate {
    let per_event = reduce_policy(devices, |d| &d.per_event, |d| &d.per_event_latencies_ms);
    let batched = reduce_policy(devices, |d| &d.batched, |d| &d.batched_latencies_ms);

    let mut per_platform: BTreeMap<String, u64> = BTreeMap::new();
    let mut per_method: BTreeMap<String, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, ProfileHistogram> = BTreeMap::new();
    for d in devices {
        *per_platform.entry(d.platform.clone()).or_insert(0) += 1;
        *per_method.entry(d.method.label().to_string()).or_insert(0) += 1;
        for (profile, impact) in &d.battery_impacts {
            let h = histograms
                .entry(profile.clone())
                .or_insert_with(|| ProfileHistogram {
                    profile: profile.clone(),
                    instances: 0,
                    max_impact_percent: 0.0,
                    buckets: vec![0; BATTERY_IMPACT_BUCKET_EDGES.len() + 1],
                });
            h.instances += 1;
            h.max_impact_percent = h.max_impact_percent.max(*impact);
            let bucket = BATTERY_IMPACT_BUCKET_EDGES
                .iter()
                .position(|edge| *impact <= *edge)
                .unwrap_or(BATTERY_IMPACT_BUCKET_EDGES.len());
            h.buckets[bucket] += 1;
        }
    }

    let saved = per_event
        .switch_cycles
        .saturating_sub(batched.switch_cycles);
    FleetAggregate {
        devices: devices.len(),
        devices_per_platform: per_platform.into_iter().collect(),
        devices_per_method: per_method.into_iter().collect(),
        switch_cycles_saved_percent: if per_event.switch_cycles == 0 {
            0.0
        } else {
            saved as f64 / per_event.switch_cycles as f64 * 100.0
        },
        switch_cycles_saved_per_event_percent: if per_event.switch_cycles_per_event <= 0.0 {
            0.0
        } else {
            (per_event.switch_cycles_per_event - batched.switch_cycles_per_event).max(0.0)
                / per_event.switch_cycles_per_event
                * 100.0
        },
        per_event,
        batched,
        battery_histograms: histograms.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(cycles: u64, switch: u64, energy: f64) -> PolicyOutcome {
        PolicyOutcome {
            total_cycles: cycles,
            switch_cycles: switch,
            app_cycles: cycles - switch,
            service_cycles: 0,
            events_delivered: 10,
            syscalls: 5,
            faults: 0,
            full_switches: 20,
            batch_boundaries: 0,
            energy_joules: energy,
            idle_joules: 0.0,
            virtual_seconds: 0.0,
            active_seconds: 0.0,
            battery_weeks: 0.0,
        }
    }

    fn device(index: usize, energy: f64) -> DeviceResult {
        DeviceResult {
            index,
            platform: "msp430fr5969".into(),
            method: amulet_core::method::IsolationMethod::Mpu,
            app_names: vec!["Clock".into()],
            per_event: outcome(1000, 400, energy),
            batched: outcome(900, 300, energy * 0.9),
            battery_impacts: vec![("Clock".into(), 0.003)],
            per_event_latencies_ms: Vec::new(),
            batched_latencies_ms: Vec::new(),
        }
    }

    #[test]
    fn percentiles_use_nearest_rank_on_sorted_energies() {
        let devices: Vec<DeviceResult> = (0..100).map(|i| device(i, (i + 1) as f64)).collect();
        let agg = aggregate(&devices);
        assert_eq!(agg.per_event.energy.p50_joules, 50.0);
        assert_eq!(agg.per_event.energy.p99_joules, 99.0);
        assert_eq!(agg.per_event.energy.total_joules, 5050.0);
        assert_eq!(agg.per_event.energy.mean_joules, 50.5);
    }

    #[test]
    fn histograms_bucket_battery_impacts_per_profile() {
        let devices: Vec<DeviceResult> = (0..10).map(|i| device(i, 1.0)).collect();
        let agg = aggregate(&devices);
        assert_eq!(agg.battery_histograms.len(), 1);
        let h = &agg.battery_histograms[0];
        assert_eq!(h.profile, "Clock");
        assert_eq!(h.instances, 10);
        // 0.003 lands in the (0.001, 0.005] bucket.
        assert_eq!(h.buckets[1], 10);
        assert_eq!(h.buckets.iter().sum::<u64>(), 10);
        assert!(h.max_impact_percent > 0.0);
    }

    #[test]
    fn switch_savings_are_reported_in_percent() {
        let devices: Vec<DeviceResult> = (0..4).map(|i| device(i, 1.0)).collect();
        let agg = aggregate(&devices);
        // 400 → 300 switch cycles per device is a 25 % saving.
        assert_eq!(agg.switch_cycles_saved_percent, 25.0);
        assert!(agg.per_event.switch_overhead_share > agg.batched.switch_overhead_share);
    }

    #[test]
    fn empty_fleet_aggregates_to_zeroes() {
        let agg = aggregate(&[]);
        assert_eq!(agg.devices, 0);
        assert_eq!(agg.per_event.energy.total_joules, 0.0);
        assert_eq!(agg.switch_cycles_saved_percent, 0.0);
        assert_eq!(agg.per_event.delivery_latency, LatencyStats::default());
        assert_eq!(agg.per_event.idle_energy_share, 0.0);
    }

    #[test]
    fn stepped_fields_reduce_across_devices() {
        let mut devices: Vec<DeviceResult> = (0..4).map(|i| device(i, 1.0)).collect();
        for (i, d) in devices.iter_mut().enumerate() {
            d.per_event.idle_joules = 2.0;
            d.per_event.active_seconds = 1.0;
            d.per_event.virtual_seconds = 10.0;
            d.per_event.battery_weeks = (i + 1) as f64;
            d.per_event_latencies_ms = vec![i as f64, 100.0];
        }
        let agg = aggregate(&devices);
        let p = &agg.per_event;
        assert_eq!(p.idle_joules, 8.0);
        // 8 J idle against 4 J active (4 devices × 1 J).
        assert!((p.idle_energy_share - 8.0 / 12.0).abs() < 1e-12);
        assert!((p.duty_cycle - 0.1).abs() < 1e-12);
        // Samples: [0,100, 1,100, 2,100, 3,100] → p50 = 4th of 8 = 3.
        assert_eq!(p.delivery_latency.events, 8);
        assert_eq!(p.delivery_latency.p50_ms, 3.0);
        assert_eq!(p.delivery_latency.p99_ms, 100.0);
        assert_eq!(p.delivery_latency.max_ms, 100.0);
        // Battery weeks [1,2,3,4] → nearest-rank p50 = 2.
        assert_eq!(p.battery_weeks_p50, 2.0);
        // The untouched batched leg stays all-zero.
        assert_eq!(agg.batched.delivery_latency, LatencyStats::default());
        assert_eq!(agg.batched.duty_cycle, 0.0);
    }
}
