//! The content-addressable firmware store: a cross-run cache of built
//! firmware images.
//!
//! PR 6's wake calendar made the discrete-event core fast enough that
//! AFT firmware builds (compile + link + MPU planning) dominate a
//! campaign's cold start — and they were redone on every process start.
//! This store persists each distinct image once, keyed by a stable
//! content address derived from everything that determines the build:
//!
//! ```text
//! store key  = "<platform>|<method>|<app1>+<app2>|<policy label>"
//! file name  = fw-<fnv1a64(store key) as 16 hex digits>.bin
//! ```
//!
//! The on-disk bytes are the versioned envelope of
//! [`amulet_mcu::serial`] — magic, format version, content hash, the
//! embedded store key, and the image payload — so a loaded file proves
//! both *what* it is (the embedded key must match the key asked for;
//! hash collisions in the file name cannot alias images) and *that* it
//! is intact (any single-bit flip fails the envelope hash).  A file
//! that fails any of these checks is treated as a miss and rebuilt over;
//! corruption can cost time, never correctness.
//!
//! In memory the store is exactly the process-wide map the calendar
//! already used: one `Arc<Firmware>` per distinct key, shared by every
//! runtime booted for that configuration, with builds performed outside
//! the lock (a racing duplicate build produces an identical image and is
//! dropped).  A FIFO eviction bound keeps pathological many-config runs
//! from holding every image alive at once.
//!
//! **Paranoid mode** ([`FleetScenario::paranoid`], `fleet_sim
//! --paranoid`, run by CI) rebuilds every disk hit from source and
//! compares the encodings byte for byte before reuse; a mismatch is
//! counted, the fresh build wins, and the stale file is rewritten.
//!
//! **Disk cap** ([`FleetScenario::store_cap_bytes`], `fleet_sim
//! --store-cap-bytes`): when set, every persist re-checks the
//! directory's total image size and removes least-recently-*used* files
//! (by modification time; disk hits refresh it) until the cap holds
//! again.  Evicting is always safe — an evicted image is just a future
//! rebuild — so the cap bounds disk footprint without ever affecting
//! results.

use crate::run::build_firmware;
use crate::scenario::{ConfigContext, DeviceConfig, FleetScenario};
use amulet_core::serial::fnv1a64;
use amulet_mcu::firmware::Firmware;
use amulet_mcu::serial::{decode_firmware, encode_firmware};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// In-memory image bound: beyond this many distinct configurations the
/// least-recently-*inserted* image is dropped (re-loadable from disk when
/// a directory is configured, rebuildable otherwise).  Every realistic
/// scenario holds well under this — the full config space of the default
/// catalogue is 540 keys.
const DEFAULT_CAPACITY: usize = 4096;

/// A point-in-time snapshot of a store's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FirmwareStoreStats {
    /// Lookups served from the in-memory map.
    pub hits: u64,
    /// Lookups that missed the in-memory map.
    pub misses: u64,
    /// Misses served by decoding an on-disk image.
    pub disk_hits: u64,
    /// Misses that ran a fresh AFT build (includes paranoid re-builds).
    pub builds: u64,
    /// Envelope bytes read from disk (successful loads only).
    pub bytes_read: u64,
    /// Envelope bytes written to disk.
    pub bytes_written: u64,
    /// Images evicted from the in-memory map.
    pub evictions: u64,
    /// Image files removed from disk to hold the byte cap.
    pub disk_evictions: u64,
    /// Paranoid verifications where the decoded image was **not**
    /// byte-identical to a fresh build (the fresh build was used and the
    /// file rewritten).  Nonzero means the store directory was corrupted
    /// in a hash-preserving way or written by a different build.
    pub verify_failures: u64,
}

#[derive(Default, Debug)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    builds: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    evictions: AtomicU64,
    disk_evictions: AtomicU64,
    verify_failures: AtomicU64,
}

/// The in-memory map plus its FIFO insertion order, kept under one lock.
type ImageMap = (HashMap<String, Arc<Firmware>>, VecDeque<String>);

/// Best-effort LRU touch: refreshes an image file's modification time so
/// the disk-cap eviction order tracks recency of *use*, not of writing.
/// Failure is harmless — the file just keeps its stale position.
fn touch(path: &Path) {
    if let Ok(f) = std::fs::File::options().write(true).open(path) {
        let _ = f.set_times(std::fs::FileTimes::new().set_modified(std::time::SystemTime::now()));
    }
}

/// The content-addressable firmware store (see the module docs).
#[derive(Debug)]
pub struct FirmwareStore {
    dir: Option<PathBuf>,
    paranoid: bool,
    /// Policy component of the store key, from
    /// [`FleetScenario::policy_label`].
    policy_label: String,
    capacity: usize,
    /// Byte cap for the on-disk directory; `None` never evicts.
    cap_bytes: Option<u64>,
    /// Builds and disk I/O happen outside the `images` lock.
    images: Mutex<ImageMap>,
    counters: Counters,
}

impl FirmwareStore {
    /// A purely in-memory store — the pre-PR-7 behaviour.
    pub fn in_memory() -> Self {
        FirmwareStore {
            dir: None,
            paranoid: false,
            policy_label: String::new(),
            capacity: DEFAULT_CAPACITY,
            cap_bytes: None,
            images: Mutex::new((HashMap::new(), VecDeque::new())),
            counters: Counters::default(),
        }
    }

    /// The store a scenario asks for: on-disk under
    /// [`FleetScenario::store_dir`] when set (created on demand), in
    /// memory otherwise; paranoid when the scenario says so.
    pub fn for_scenario(scenario: &FleetScenario) -> Self {
        let mut store = FirmwareStore::in_memory();
        store.dir = scenario.store_dir.clone();
        store.paranoid = scenario.paranoid;
        store.policy_label = scenario.policy_label();
        store.cap_bytes = scenario.store_cap_bytes;
        store
    }

    /// An on-disk store rooted at `dir`, with the policy label taken from
    /// `scenario`.
    pub fn on_disk(dir: &Path, scenario: &FleetScenario) -> Self {
        let mut store = FirmwareStore::for_scenario(scenario);
        store.dir = Some(dir.to_path_buf());
        store
    }

    /// Whether this store persists images to disk.
    pub fn is_persistent(&self) -> bool {
        self.dir.is_some()
    }

    /// Enables or disables paranoid verification.
    pub fn set_paranoid(&mut self, paranoid: bool) {
        self.paranoid = paranoid;
    }

    /// Sets (or clears) the on-disk byte cap.
    pub fn set_cap_bytes(&mut self, cap_bytes: Option<u64>) {
        self.cap_bytes = cap_bytes;
    }

    /// The full store key of a firmware configuration key: the firmware
    /// key plus the delivery-policy label.
    pub fn store_key(&self, firmware_key: &str) -> String {
        format!("{firmware_key}|{}", self.policy_label)
    }

    /// The file an image is stored under: the key's FNV-1a64 content
    /// address.  The embedded key is still verified on load, so a
    /// (astronomically unlikely) address collision degrades to a rebuild,
    /// never to the wrong image.
    fn image_path(&self, store_key: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("fw-{:016x}.bin", fnv1a64(store_key.as_bytes()))))
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> FirmwareStoreStats {
        FirmwareStoreStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            builds: self.counters.builds.load(Ordering::Relaxed),
            bytes_read: self.counters.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.counters.bytes_written.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            disk_evictions: self.counters.disk_evictions.load(Ordering::Relaxed),
            verify_failures: self.counters.verify_failures.load(Ordering::Relaxed),
        }
    }

    /// Returns the image for `key`, from memory, disk, or a fresh build —
    /// in that order.  The returned `Arc` is shared with every other
    /// caller asking for the same key.
    pub fn get_or_build(&self, key: &str, cfg: &DeviceConfig) -> Arc<Firmware> {
        if let Some(fw) = self
            .images
            .lock()
            .expect("firmware store poisoned")
            .0
            .get(key)
        {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(fw);
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        // Load or build outside the lock: two workers may race on the
        // same key, but the image is a pure function of the config, so
        // the loser's copy is identical and simply dropped.
        let built = self.load_or_build(key, cfg);
        let mut guard = self.images.lock().expect("firmware store poisoned");
        let (images, order) = &mut *guard;
        let arc = Arc::clone(images.entry(key.to_string()).or_insert_with(|| {
            order.push_back(key.to_string());
            built
        }));
        while images.len() > self.capacity {
            let Some(evict) = order.pop_front() else {
                break;
            };
            images.remove(&evict);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
        arc
    }

    fn load_or_build(&self, key: &str, cfg: &DeviceConfig) -> Arc<Firmware> {
        let store_key = self.store_key(key);
        let path = match self.image_path(&store_key) {
            Some(p) => p,
            None => return self.build_fresh(key, cfg),
        };
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                let fresh = self.build_fresh(key, cfg);
                self.persist(&path, &store_key, &fresh);
                return fresh;
            }
        };
        match decode_firmware(&bytes) {
            Ok((embedded_key, mut firmware)) if embedded_key == store_key => {
                if self.paranoid {
                    // Verify byte-identity against a fresh build before
                    // trusting the decoded image.  The fresh build is
                    // authoritative either way.
                    self.counters
                        .bytes_read
                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                    let fresh = self.build_fresh(key, cfg);
                    if encode_firmware(&store_key, &fresh) != bytes {
                        self.counters
                            .verify_failures
                            .fetch_add(1, Ordering::Relaxed);
                        self.persist(&path, &store_key, &fresh);
                    }
                    return fresh;
                }
                self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_read
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                touch(&path);
                // Fusion is derived dispatch state the wire format never
                // carries: re-derive it after every decode, exactly as
                // `build_firmware` does after a fresh build.
                if cfg.fuse {
                    firmware.fuse();
                }
                Arc::new(firmware)
            }
            // Wrong key (file-name hash collision) or any decode error
            // (truncation, corruption, version skew): rebuild and write
            // the file over.
            _ => {
                let fresh = self.build_fresh(key, cfg);
                self.persist(&path, &store_key, &fresh);
                fresh
            }
        }
    }

    fn build_fresh(&self, key: &str, cfg: &DeviceConfig) -> Arc<Firmware> {
        self.counters.builds.fetch_add(1, Ordering::Relaxed);
        build_firmware(key, cfg)
    }

    /// Writes an image atomically (temp file + rename) so a crashed or
    /// raced writer can never leave a half-written envelope behind — a
    /// torn write surfaces as a missing or stale file, both of which the
    /// load path already handles.
    fn persist(&self, path: &Path, store_key: &str, firmware: &Firmware) {
        let Some(dir) = self.dir.as_deref() else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let bytes = encode_firmware(store_key, firmware);
        let tmp = path.with_extension(format!("tmp.{:016x}", fnv1a64(store_key.as_bytes())));
        if std::fs::write(&tmp, &bytes).is_ok() && std::fs::rename(&tmp, path).is_ok() {
            self.counters
                .bytes_written
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            self.enforce_disk_cap(path);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Shrinks the store directory back under the byte cap after a
    /// persist: image files are removed least-recently-used first (by
    /// modification time — refreshed on every disk hit — with the file
    /// name as the deterministic tie-break) until the total fits.  The
    /// just-written file is never removed, so a cap smaller than one
    /// image still makes progress.
    fn enforce_disk_cap(&self, keep: &Path) {
        let (Some(dir), Some(cap)) = (self.dir.as_deref(), self.cap_bytes) else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = entries
            .flatten()
            .filter_map(|e| {
                let path = e.path();
                if path.extension().is_none_or(|x| x != "bin") {
                    return None;
                }
                let meta = e.metadata().ok()?;
                Some((meta.modified().ok()?, path, meta.len()))
            })
            .collect();
        let mut total: u64 = files.iter().map(|(_, _, len)| len).sum();
        files.sort();
        for (_, path, len) in files {
            if total <= cap {
                break;
            }
            if path == keep {
                continue;
            }
            if std::fs::remove_file(&path).is_ok() {
                total -= len;
                self.counters.disk_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Materialises every distinct firmware configuration of `scenario`
    /// through the store — the explicit cold/warm phase `fleet_sim`
    /// times.  Returns the number of distinct configurations.
    pub fn prewarm(&self, scenario: &FleetScenario) -> usize {
        let distinct = Self::distinct_configs(scenario);
        self.prewarm_configs(&distinct);
        distinct.len()
    }

    /// The distinct firmware configurations `scenario` draws, in firmware-key
    /// order.  Separated from [`FirmwareStore::prewarm`] so `fleet_sim` can
    /// derive the config set once and time only the materialisation
    /// (build-vs-load) phase when comparing cold and warm stores.
    pub fn distinct_configs(scenario: &FleetScenario) -> Vec<(String, DeviceConfig)> {
        let ctx = ConfigContext::new();
        let mut distinct: BTreeMap<String, DeviceConfig> = BTreeMap::new();
        for index in 0..scenario.devices {
            let cfg = scenario.device_config_in(&ctx, index);
            distinct.entry(cfg.firmware_key()).or_insert(cfg);
        }
        distinct.into_iter().collect()
    }

    /// Materialises every configuration in `configs` through the store.
    pub fn prewarm_configs(&self, configs: &[(String, DeviceConfig)]) {
        for (key, cfg) in configs {
            self.get_or_build(key, cfg);
        }
    }

    /// Warm-start validation: confirms every configuration in `configs` has
    /// an intact on-disk image (magic, version, content hash and embedded
    /// key all verify via [`amulet_mcu::verify_envelope`]) and repairs —
    /// builds and persists — any that are missing or corrupt.  Unlike
    /// [`FirmwareStore::prewarm_configs`] the images are *not* decoded or
    /// cached: that happens lazily at first [`FirmwareStore::get_or_build`],
    /// which is all a warm start needs before it can skip rebuilding.
    /// Verified images count as `disk_hits`; repairs count as `builds`.
    /// Returns the number verified from disk.
    pub fn validate_configs(&self, configs: &[(String, DeviceConfig)]) -> usize {
        let mut verified = 0usize;
        for (key, cfg) in configs {
            let store_key = self.store_key(key);
            let intact = self
                .image_path(&store_key)
                .and_then(|path| std::fs::read(path).ok())
                .is_some_and(|bytes| match amulet_mcu::verify_envelope(&bytes) {
                    Ok(embedded_key) if embedded_key == store_key => {
                        self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                        self.counters
                            .bytes_read
                            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                        true
                    }
                    _ => false,
                });
            if intact {
                verified += 1;
            } else if let Some(path) = self.image_path(&store_key) {
                let fresh = self.build_fresh(key, cfg);
                self.persist(&path, &store_key, &fresh);
            }
        }
        verified
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("amulet-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny() -> FleetScenario {
        FleetScenario {
            devices: 8,
            ..FleetScenario::scaling(8)
        }
    }

    #[test]
    fn in_memory_store_counts_hits_and_builds() {
        let s = tiny();
        let store = FirmwareStore::for_scenario(&s);
        let cfg = s.device_config(0);
        let key = cfg.firmware_key();
        let a = store.get_or_build(&key, &cfg);
        let b = store.get_or_build(&key, &cfg);
        assert!(Arc::ptr_eq(&a, &b), "one image shared by reference");
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.builds), (1, 1, 1));
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(stats.bytes_written, 0, "no directory, nothing persisted");
    }

    #[test]
    fn disk_store_round_trips_images_across_instances() {
        let dir = tmpdir("roundtrip");
        let s = FleetScenario {
            store_dir: Some(dir.clone()),
            ..tiny()
        };
        let cfg = s.device_config(0);
        let key = cfg.firmware_key();

        let cold = FirmwareStore::for_scenario(&s);
        let built = cold.get_or_build(&key, &cfg);
        let cold_stats = cold.stats();
        assert_eq!(cold_stats.builds, 1);
        assert!(cold_stats.bytes_written > 0, "image persisted");

        // A new instance (a new process, morally) must load, not build.
        let warm = FirmwareStore::for_scenario(&s);
        let loaded = warm.get_or_build(&key, &cfg);
        let warm_stats = warm.stats();
        assert_eq!(warm_stats.builds, 0, "warm start builds nothing");
        assert_eq!(warm_stats.disk_hits, 1);
        assert_eq!(*loaded, *built, "decoded image equals the built one");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_files_degrade_to_rebuilds() {
        let dir = tmpdir("corrupt");
        let s = FleetScenario {
            store_dir: Some(dir.clone()),
            ..tiny()
        };
        let cfg = s.device_config(0);
        let key = cfg.firmware_key();
        let cold = FirmwareStore::for_scenario(&s);
        let built = cold.get_or_build(&key, &cfg);

        let file = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "bin"))
            .expect("persisted image file");
        let original = std::fs::read(&file).unwrap();

        // Bit-flip: the warm instance must rebuild, not decode garbage.
        let mut flipped = original.clone();
        flipped[original.len() / 2] ^= 0x10;
        std::fs::write(&file, &flipped).unwrap();
        let warm = FirmwareStore::for_scenario(&s);
        let got = warm.get_or_build(&key, &cfg);
        assert_eq!(*got, *built);
        assert_eq!(warm.stats().builds, 1, "corruption forces a rebuild");
        assert_eq!(warm.stats().disk_hits, 0);
        assert_eq!(
            std::fs::read(&file).unwrap(),
            original,
            "the rebuilt image is written back over the corrupt file"
        );

        // Truncation behaves the same.
        std::fs::write(&file, &original[..original.len() / 3]).unwrap();
        let warm = FirmwareStore::for_scenario(&s);
        warm.get_or_build(&key, &cfg);
        assert_eq!(warm.stats().builds, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn paranoid_mode_verifies_and_repairs() {
        let dir = tmpdir("paranoid");
        let s = FleetScenario {
            store_dir: Some(dir.clone()),
            ..tiny()
        };
        let cfg = s.device_config(0);
        let key = cfg.firmware_key();
        FirmwareStore::for_scenario(&s).get_or_build(&key, &cfg);

        // An intact file verifies clean.
        let paranoid = FirmwareStore::for_scenario(&FleetScenario {
            paranoid: true,
            ..s.clone()
        });
        paranoid.get_or_build(&key, &cfg);
        let stats = paranoid.stats();
        assert_eq!(stats.verify_failures, 0);
        assert_eq!(stats.builds, 1, "paranoid mode rebuilds to compare");

        // A file whose envelope is valid but whose content was produced
        // for different bytes: simulate by storing a different config's
        // image under this key's file name (hash-valid, key-matching
        // envelope, wrong payload).
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "bin"))
            .unwrap();
        let other_cfg = (1..s.devices)
            .map(|i| s.device_config(i))
            .find(|c| c.firmware_key() != key)
            .expect("a second distinct config");
        let other = build_firmware(&other_cfg.firmware_key(), &other_cfg);
        let store_key = paranoid.store_key(&key);
        std::fs::write(&file, encode_firmware(&store_key, &other)).unwrap();

        let paranoid = FirmwareStore::for_scenario(&FleetScenario {
            paranoid: true,
            ..s.clone()
        });
        let got = paranoid.get_or_build(&key, &cfg);
        assert_eq!(paranoid.stats().verify_failures, 1);
        let fresh = build_firmware(&key, &cfg);
        assert_eq!(*got, *fresh, "the fresh build wins");
        assert_eq!(
            std::fs::read(&file).unwrap(),
            encode_firmware(&store_key, &fresh),
            "the stale file is repaired"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prewarm_materialises_every_distinct_config_once() {
        let dir = tmpdir("prewarm");
        let s = FleetScenario {
            devices: 64,
            store_dir: Some(dir.clone()),
            ..FleetScenario::scaling(64)
        };
        let cold = FirmwareStore::for_scenario(&s);
        let distinct = cold.prewarm(&s);
        assert!(distinct > 0);
        assert_eq!(cold.stats().builds as usize, distinct);
        let files = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "bin")
            })
            .count();
        assert_eq!(files, distinct, "one file per distinct config");

        let warm = FirmwareStore::for_scenario(&s);
        assert_eq!(warm.prewarm(&s), distinct);
        assert_eq!(warm.stats().builds, 0, "warm prewarm builds nothing");
        assert_eq!(warm.stats().disk_hits as usize, distinct);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_configs_verifies_intact_images_and_repairs_corrupt_ones() {
        let dir = tmpdir("validate");
        let s = FleetScenario {
            devices: 64,
            store_dir: Some(dir.clone()),
            ..FleetScenario::scaling(64)
        };
        let configs = FirmwareStore::distinct_configs(&s);
        let cold = FirmwareStore::for_scenario(&s);
        cold.prewarm_configs(&configs);

        // A fresh instance verifies every envelope without building or
        // decoding anything.
        let warm = FirmwareStore::for_scenario(&s);
        assert_eq!(warm.validate_configs(&configs), configs.len());
        let stats = warm.stats();
        assert_eq!(stats.builds, 0);
        assert_eq!(stats.disk_hits as usize, configs.len());
        assert_eq!(stats.bytes_read, cold.stats().bytes_written);

        // Corrupt one image: validation refuses it, rebuilds it, and the
        // repaired file verifies again on the next pass.
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "bin"))
            .unwrap();
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();

        let repair = FirmwareStore::for_scenario(&s);
        assert_eq!(repair.validate_configs(&configs), configs.len() - 1);
        assert_eq!(
            repair.stats().builds,
            1,
            "exactly the corrupt image rebuilds"
        );

        let clean = FirmwareStore::for_scenario(&s);
        assert_eq!(clean.validate_configs(&configs), configs.len());
        assert_eq!(clean.stats().builds, 0);

        // An in-memory store has nothing to validate.
        assert_eq!(FirmwareStore::in_memory().validate_configs(&configs), 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Pins a file's modification time to a deterministic epoch offset so
    /// the eviction order under test never depends on write timing.
    fn set_mtime(path: &Path, secs: u64) {
        let t = std::time::UNIX_EPOCH + std::time::Duration::from_secs(secs);
        let f = std::fs::File::options().write(true).open(path).unwrap();
        f.set_times(std::fs::FileTimes::new().set_modified(t))
            .unwrap();
    }

    #[test]
    fn disk_cap_evicts_least_recently_used_images() {
        let dir = tmpdir("diskcap");
        let s = FleetScenario {
            devices: 64,
            store_dir: Some(dir.clone()),
            ..FleetScenario::scaling(64)
        };
        let configs = FirmwareStore::distinct_configs(&s);
        assert!(configs.len() >= 4, "need four distinct configs");
        let (first3, fourth) = (&configs[..3], &configs[3]);

        // Persist all four images with no cap to measure them, then drop
        // the fourth again and pin the first three mtimes: configs[0]
        // oldest, configs[2] newest.
        let cold = FirmwareStore::for_scenario(&s);
        cold.prewarm_configs(&configs[..4]);
        let path_of =
            |store: &FirmwareStore, key: &str| store.image_path(&store.store_key(key)).unwrap();
        let len_of = |key: &str| std::fs::metadata(path_of(&cold, key)).unwrap().len();
        let size: u64 = first3.iter().map(|(key, _)| len_of(key)).sum();
        let fourth_len = len_of(&fourth.0);
        std::fs::remove_file(path_of(&cold, &fourth.0)).unwrap();
        for (i, (key, _)) in first3.iter().enumerate() {
            set_mtime(&path_of(&cold, key), 1000 + 100 * i as u64);
        }

        // A capped store: a disk hit on the *oldest* image refreshes its
        // recency, so when persisting the fourth image overflows the cap
        // by one byte, the single eviction removes configs[1] — now the
        // least recently used — and leaves the touched configs[0] alone.
        let mut capped = FirmwareStore::for_scenario(&s);
        capped.set_cap_bytes(Some(size + fourth_len - 1));
        capped.get_or_build(&first3[0].0, &first3[0].1);
        assert_eq!(capped.stats().disk_hits, 1);
        capped.get_or_build(&fourth.0, &fourth.1);
        assert_eq!(capped.stats().disk_evictions, 1, "one file had to go");
        assert!(!path_of(&capped, &first3[1].0).exists(), "LRU evicted");
        for key in [&first3[0].0, &first3[2].0, &fourth.0] {
            assert!(path_of(&capped, key).exists(), "{key} survives");
        }

        // An evicted image is only a future rebuild, never an error.
        let reload = FirmwareStore::for_scenario(&s);
        reload.get_or_build(&first3[1].0, &first3[1].1);
        assert_eq!(reload.stats().builds, 1);

        // A cap smaller than a single image keeps only the newest file.
        std::fs::remove_file(path_of(&cold, &first3[1].0)).unwrap();
        let mut tiny_cap = FirmwareStore::for_scenario(&s);
        tiny_cap.set_cap_bytes(Some(1));
        tiny_cap.get_or_build(&first3[1].0, &first3[1].1);
        let survivors = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "bin")
            })
            .count();
        assert_eq!(survivors, 1, "only the just-written image remains");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_is_fifo_and_counted() {
        let s = tiny();
        let mut store = FirmwareStore::for_scenario(&s);
        store.capacity = 2;
        let mut distinct = Vec::new();
        let ctx = ConfigContext::new();
        for i in 0..s.devices {
            let cfg = s.device_config_in(&ctx, i);
            let key = cfg.firmware_key();
            if !distinct.iter().any(|(k, _)| *k == key) {
                distinct.push((key, cfg));
            }
            if distinct.len() == 3 {
                break;
            }
        }
        assert_eq!(distinct.len(), 3, "need three distinct configs");
        for (key, cfg) in &distinct {
            store.get_or_build(key, cfg);
        }
        assert_eq!(store.stats().evictions, 1);
        // The evicted key (FIFO: the first inserted) misses again.
        store.get_or_build(&distinct[0].0, &distinct[0].1);
        assert_eq!(store.stats().hits, 0);
        assert_eq!(store.stats().misses, 4);
    }
}
