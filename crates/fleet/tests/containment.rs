//! Pinned containment cells and the end-to-end fault storm.
//!
//! The unit matrix pins the empirically-settled verdicts that make the
//! five `RegionConstraints` profiles measurably differ: the cortex-m33
//! and riscv-pmp profiles police *everything* an app can reach, while the
//! msp430fr5994's MPU has no jurisdiction over the peripheral window or
//! the interrupt vectors — the escape paths the storm report documents.

use amulet_aft::aft::Aft;
use amulet_apps::adversarial::FaultKind;
use amulet_core::method::IsolationMethod;
use amulet_core::platform::builtin_platforms;
use amulet_fleet::faults::{attack_payload, classify};
use amulet_fleet::{simulate_summary, FleetScenario, Verdict};
use amulet_os::os::{AmuletOs, OsOptions};
use amulet_os::policy::RestartPolicy;

/// Boots one device carrying a normal neighbour plus `kind`'s adversarial
/// app and delivers the controlled probe, exactly as the fleet runner
/// does (same restart policy, same pinned step budget, same computed
/// target address).
fn probe(platform_name: &str, method: IsolationMethod, kind: FaultKind) -> Verdict {
    let platform = builtin_platforms()
        .into_iter()
        .find(|p| p.name == platform_name)
        .unwrap_or_else(|| panic!("unknown platform {platform_name}"));
    let adapted = kind.adapted_for(method);
    let adv = adapted.app();
    let normal = amulet_apps::catalog();
    let built = Aft::for_platform(method, &platform)
        .add_app(normal[0].app_source())
        .add_app(adv.app_source())
        .build()
        .unwrap_or_else(|e| panic!("{platform_name}/{method}/{}: {e}", kind.label()));
    let mut os = AmuletOs::with_options(
        built.firmware,
        OsOptions {
            restart_policy: RestartPolicy::Kill,
            step_budget: 20_000,
            ..OsOptions::default()
        },
    );
    os.boot();
    let idx = os.app_index(adv.name).expect("adversarial app installed");
    let payload = attack_payload(adapted, os.firmware());
    let (outcome, _) = os.call_handler(idx, "attack", payload);
    classify(outcome)
}

#[test]
fn full_jurisdiction_profiles_contain_every_wild_probe_in_hardware() {
    for platform in ["cortex-m33", "riscv-pmp"] {
        for kind in [
            FaultKind::WildWriteOsRam,
            FaultKind::WildWritePeripheral,
            FaultKind::WildWriteBootRom,
            FaultKind::WildWriteNeighbor,
            FaultKind::WildWriteVector,
            FaultKind::WildCallPeripheral,
            FaultKind::StackSmash,
            FaultKind::ArrayOob,
        ] {
            assert_eq!(
                probe(platform, IsolationMethod::Mpu, kind),
                Verdict::CaughtByMpu,
                "{platform}: {}",
                kind.label()
            );
        }
        assert_eq!(
            probe(platform, IsolationMethod::Mpu, FaultKind::RunawayLoop),
            Verdict::Hung,
            "{platform}: only the watchdog stops a loop that touches nothing"
        );
    }
}

#[test]
fn fr5994_peripheral_window_and_vectors_are_the_documented_escapes() {
    let m = IsolationMethod::Mpu;
    // The FR5994's MPU segments cover FRAM+SRAM only: a wild write into
    // the memory-mapped peripheral window, or into the (peripheral-space)
    // interrupt vector table, lands unopposed.
    assert_eq!(
        probe("msp430fr5994", m, FaultKind::WildWritePeripheral),
        Verdict::Escaped
    );
    assert_eq!(
        probe("msp430fr5994", m, FaultKind::WildWriteVector),
        Verdict::Escaped
    );
    // A write into the boot ROM is refused by the ROM's own write
    // protection — contained, but not by the isolation method.
    assert_eq!(
        probe("msp430fr5994", m, FaultKind::WildWriteBootRom),
        Verdict::Crashed
    );
    // Inside its jurisdiction the MPU does catch the attacks.
    for kind in [
        FaultKind::WildWriteOsRam,
        FaultKind::WildWriteNeighbor,
        FaultKind::StackSmash,
        FaultKind::ArrayOob,
    ] {
        assert_eq!(
            probe("msp430fr5994", m, kind),
            Verdict::CaughtByMpu,
            "{}",
            kind.label()
        );
    }
    // A wild *call* into peripheral space trips the compiled-in function
    // pointer bound before any fetch is attempted.
    assert_eq!(
        probe("msp430fr5994", m, FaultKind::WildCallPeripheral),
        Verdict::CaughtBySoftware
    );
    // The FR5969 shares the vector-table hole.
    assert_eq!(
        probe("msp430fr5969", m, FaultKind::WildWriteVector),
        Verdict::Escaped
    );
}

#[test]
fn feature_limited_containment_is_entirely_software() {
    for kind in [FaultKind::WildWriteOsRam, FaultKind::StackSmash] {
        assert_eq!(
            probe("msp430fr5969", IsolationMethod::FeatureLimited, kind),
            Verdict::CaughtBySoftware,
            "{} adapts to the array-bounds check",
            kind.label()
        );
    }
    assert_eq!(
        probe(
            "msp430fr5969",
            IsolationMethod::FeatureLimited,
            FaultKind::RunawayLoop
        ),
        Verdict::Hung
    );
}

#[test]
fn no_isolation_lets_wild_writes_escape() {
    assert_eq!(
        probe(
            "msp430fr5969",
            IsolationMethod::NoIsolation,
            FaultKind::WildWriteOsRam
        ),
        Verdict::Escaped
    );
    assert_eq!(
        probe(
            "msp430fr5969",
            IsolationMethod::SoftwareOnly,
            FaultKind::WildWriteOsRam
        ),
        Verdict::CaughtBySoftware
    );
}

#[test]
fn storm_report_contains_faults_and_never_bricks_a_device() {
    let scenario = FleetScenario::storm(1000);
    let a = simulate_summary(&scenario, 1);
    let b = simulate_summary(&scenario, 8);
    assert_eq!(a.aggregate, b.aggregate, "worker count changes nothing");

    let agg = &a.aggregate;
    assert!(!agg.containment.is_empty(), "the storm armed devices");
    let probed: u64 = agg.containment.iter().map(|r| r.devices).sum();
    assert!(
        (250..=550).contains(&probed),
        "~40% of 1000 devices probed, got {probed}"
    );
    for row in &agg.containment {
        assert_eq!(
            row.caught_by_mpu + row.caught_by_software + row.escaped + row.hung + row.crashed,
            row.devices,
            "verdicts partition the cell {row:?}"
        );
        // The acceptance bar: full-jurisdiction MPU profiles contain
        // every wild probe in hardware, with zero escapes.
        if ["cortex-m33", "riscv-pmp"].contains(&row.platform.as_str())
            && row.method == "MPU"
            && row.fault.starts_with("wild-")
        {
            assert_eq!(
                (row.caught_by_mpu, row.escaped),
                (row.devices, 0),
                "full jurisdiction must contain {row:?}"
            );
        }
        // No-isolation wild writes all land.
        if row.method == "No Isolation" && row.fault.starts_with("wild-write-") {
            assert!(
                row.escaped + row.crashed == row.devices,
                "nothing polices {row:?}"
            );
        }
    }
    // The documented FR5994 escape path shows up as a measured cell.
    let hole = agg
        .containment
        .iter()
        .find(|r| {
            r.platform == "msp430fr5994" && r.method == "MPU" && r.fault == "wild-write-peripheral"
        })
        .expect("a 1000-device storm draws the FR5994 peripheral hole");
    assert_eq!(hole.escaped, hole.devices, "{hole:?}");

    let w = &agg.ota_wave;
    assert!(w.devices > 0, "the wave swept devices");
    assert_eq!(
        w.installed + w.rolled_back,
        w.devices,
        "two terminal states"
    );
    assert_eq!(w.bricked, 0, "no device ever bricks");
    assert!(w.corrupt_attempts > 0, "20% corruption must bite");
    assert!(
        w.retried_devices > 0 && w.backoff_ms > 0,
        "retries back off"
    );
    assert!(w.attempts >= w.devices);
}

#[test]
fn check_elision_changes_no_storm_outcome() {
    // The static verifier's check elision is sound exactly when it is
    // invisible to every dynamic outcome: the containment matrix, the
    // OTA wave, the energy and cycle aggregates of a fault storm must
    // all be bit-identical with the elided images — elided fleets just
    // retire fewer instructions.  This is the fleet-level half of the
    // static/dynamic cross-validation (the per-app half lives in
    // amulet-verify's certification tests).
    let base = FleetScenario::storm(120);
    let elided = FleetScenario {
        elide_checks: true,
        ..base.clone()
    };
    let a = simulate_summary(&base, 4);
    let b = simulate_summary(&elided, 4);
    assert_eq!(a.aggregate, b.aggregate, "elision must be outcome-neutral");
    assert!(
        !a.aggregate.containment.is_empty(),
        "the comparison covered armed probes"
    );
}

#[test]
fn superinstruction_fusion_changes_no_storm_outcome() {
    // Fusion is sound exactly when it is invisible to every dynamic
    // outcome: a fused fleet must report bit-identical containment,
    // OTA, energy and cycle aggregates — the knob only changes how fast
    // the interpreter retires the sequences.  Also exercised composed
    // with elision, since fused `ElidedPair` slots are how the two
    // passes interact.
    let base = FleetScenario::storm(120);
    let fused = FleetScenario {
        fuse: true,
        ..base.clone()
    };
    let both = FleetScenario {
        fuse: true,
        elide_checks: true,
        ..base.clone()
    };
    let elided = FleetScenario {
        elide_checks: true,
        ..base.clone()
    };
    let a = simulate_summary(&base, 4);
    let b = simulate_summary(&fused, 4);
    assert_eq!(a.aggregate, b.aggregate, "fusion must be outcome-neutral");
    let c = simulate_summary(&elided, 4);
    let d = simulate_summary(&both, 4);
    assert_eq!(
        c.aggregate, d.aggregate,
        "fusion over elided images must be outcome-neutral too"
    );
    assert!(
        !a.aggregate.containment.is_empty(),
        "the comparison covered armed probes"
    );
}

#[test]
fn static_verifier_cross_validates_the_dynamic_matrix() {
    // Soundness criterion from the matrix above: an app whose probe
    // dynamically escaped (or was caught) may never verify with its
    // attacking access proven safe.  The probes are payload-controlled,
    // so every one of them must stay (at best) unknown — summed over a
    // whole storm's worth of adversarial images, the undecided count is
    // strictly positive while benign catalogue code still certifies.
    let summary = amulet_fleet::verify_fleet(&FleetScenario::storm(120), 4);
    assert!(summary.images > 0, "the storm deploys firmware");
    assert!(summary.apps > summary.images, "multi-app images verified");
    assert!(
        summary.unknown > 0,
        "payload-controlled probes must stay undecided"
    );
    assert!(
        summary.proven_safe > summary.unknown,
        "benign catalogue accesses still certify ({} safe vs {} unknown)",
        summary.proven_safe,
        summary.unknown
    );
    assert!(
        summary.elidable_sites > 0 && summary.elidable_sites < summary.elidable_candidates,
        "some checks elide, attack-guarding ones survive ({}/{})",
        summary.elidable_sites,
        summary.elidable_candidates
    );
    assert!(
        summary.passes_gate(),
        "no storm image contains a *proven* escape: {:?}",
        summary.gate_failures
    );
}

#[test]
fn storm_devices_match_the_linear_oracle() {
    // The discrete-event calendar and the linear walk must agree on every
    // armed device, probes and OTA outcomes included.
    let scenario = FleetScenario::storm(80);
    let calendar = amulet_fleet::simulate(&scenario, 4);
    let linear = amulet_fleet::simulate_linear(&scenario, 4);
    assert_eq!(calendar.devices, linear.devices);
    assert_eq!(calendar.aggregate, linear.aggregate);
    assert!(calendar.devices.iter().any(|d| d.fault.is_some()));
    assert!(calendar.devices.iter().any(|d| d.ota.is_some()));
}
