//! Property tests for the discrete-event fleet core: the wake-calendar
//! runner must be **bit-identical** to the original linear stepped walk —
//! the oracle pattern that made the attribute cache and the NAPOT solver
//! safe — and the streaming block aggregation must reproduce the exact
//! reduction at small N, delivery-latency percentiles included.

use amulet_fleet::{simulate, simulate_linear, simulate_summary, FleetScenario, TimeMode};
use proptest::prelude::*;

fn stepped(seed: u64, devices: usize, events: usize) -> FleetScenario {
    FleetScenario {
        seed,
        devices,
        events_per_device: events,
        time_mode: TimeMode::Stepped,
        ..FleetScenario::default()
    }
}

/// All five platform profiles at 64 devices under the default seed — the
/// deterministic anchor case the issue calls out (≤64 devices, every
/// profile), checked bit for bit against the linear oracle.
#[test]
fn calendar_matches_linear_oracle_on_all_five_platforms() {
    let sc = stepped(FleetScenario::default().seed, 64, 20);
    let des = simulate(&sc, 4);
    let linear = simulate_linear(&sc, 4);
    let platforms: std::collections::BTreeSet<_> =
        des.devices.iter().map(|d| d.platform.clone()).collect();
    assert_eq!(platforms.len(), 5, "64 devices span all five profiles");
    assert_eq!(des.devices, linear.devices);
    assert_eq!(des.aggregate, linear.aggregate);
}

/// Truncation semantics: a per-event leg never defers deliveries past the
/// horizon, so only batched legs may report truncated events, and those
/// events are excluded from the latency population.
#[test]
fn truncated_events_only_appear_on_the_batched_leg() {
    let report = simulate(&stepped(0xF1EE7, 48, 16), 2);
    let mut batched_truncations = 0;
    for d in &report.devices {
        assert_eq!(
            d.per_event.truncated_events, 0,
            "per-event delivery has no horizon stragglers (device {})",
            d.index
        );
        batched_truncations += d.batched.truncated_events;
        // Truncated events are excluded from the latency samples, so the
        // two together never exceed the delivered-event count.
        assert!(
            d.batched_latencies_ms.len() as u64 + d.batched.truncated_events
                <= d.batched.events_delivered,
            "latency samples + truncated events stay within deliveries (device {})",
            d.index
        );
    }
    assert_eq!(report.aggregate.per_event.truncated_events, 0);
    assert_eq!(
        report.aggregate.batched.truncated_events,
        batched_truncations
    );
    assert!(
        batched_truncations > 0,
        "a 48-device batched fleet leaves stragglers at the horizon"
    );
}

proptest! {
    // Each case simulates small fleets end to end; a handful of cases
    // keeps the suite fast while still roaming the seed space.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole oracle: for any seed, size and knob setting — silent
    /// devices and catalogue windows included — the discrete-event
    /// stepped runner produces the same `DeviceResult`s, bit for bit, as
    /// the linear stepped walk.
    #[test]
    fn calendar_is_bit_identical_to_the_linear_walk(
        seed in 0u64..1_000_000,
        devices in 3usize..32,
        events in 4usize..16,
        silent_permille in prop_oneof![Just(0u16), Just(500u16), Just(800u16)],
        windowed in any::<bool>(),
    ) {
        let sc = FleetScenario {
            silent_permille,
            catalog_window: windowed.then_some((2, 4)),
            ..stepped(seed, devices, events)
        };
        let des = simulate(&sc, 3);
        let linear = simulate_linear(&sc, 3);
        prop_assert_eq!(des.devices, linear.devices);
        prop_assert_eq!(des.aggregate, linear.aggregate);
    }

    /// The streaming reduction: block summaries folded on the workers
    /// must reproduce the exact aggregate — every field, latency
    /// percentiles included — at small N, in both time modes, for any
    /// worker count.
    #[test]
    fn streaming_summary_matches_the_exact_aggregate(
        seed in 0u64..1_000_000,
        devices in 3usize..32,
        arrival_order in any::<bool>(),
        workers in prop_oneof![Just(1usize), Just(8usize)],
    ) {
        let sc = FleetScenario {
            time_mode: if arrival_order {
                TimeMode::ArrivalOrder
            } else {
                TimeMode::Stepped
            },
            silent_permille: 250,
            ..stepped(seed, devices, 12)
        };
        let exact = simulate(&sc, 2);
        let summary = simulate_summary(&sc, workers);
        prop_assert_eq!(summary.aggregate, exact.aggregate);
        prop_assert_eq!(summary.scenario, sc);
    }
}
