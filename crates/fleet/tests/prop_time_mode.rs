//! Property tests for the time-mode equivalence guarantee: the stepped
//! replay delivers the *identical schedule* as arrival-order delivery, so
//! with idling made free (LPM current overridden to zero) every cycle and
//! energy number must match the arrival-order run exactly — for any
//! scenario seed, fleet size and batching parameters.

use amulet_fleet::{simulate, FleetScenario, TimeMode};
use proptest::prelude::*;

fn scenario(seed: u64, devices: usize, events: usize, max_batch: usize) -> FleetScenario {
    FleetScenario {
        seed,
        devices,
        events_per_device: events,
        max_batch,
        ..FleetScenario::default()
    }
}

proptest! {
    // Each case simulates two small fleets end to end; a handful of cases
    // keeps the suite fast while still roaming the seed space.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn stepped_with_free_idling_matches_arrival_order_exactly(
        seed in 0u64..1_000_000,
        devices in 3usize..8,
        events in 8usize..24,
        max_batch in 2usize..10,
    ) {
        let arrival = simulate(&scenario(seed, devices, events, max_batch), 2);
        let stepped = simulate(
            &FleetScenario {
                time_mode: TimeMode::Stepped,
                lpm_current_override_na: Some(0),
                ..scenario(seed, devices, events, max_batch)
            },
            2,
        );
        for (a, s) in arrival.devices.iter().zip(&stepped.devices) {
            for (ao, so) in [(&a.per_event, &s.per_event), (&a.batched, &s.batched)] {
                prop_assert_eq!(ao.total_cycles, so.total_cycles, "device {}", a.index);
                prop_assert_eq!(ao.switch_cycles, so.switch_cycles, "device {}", a.index);
                prop_assert_eq!(ao.app_cycles, so.app_cycles, "device {}", a.index);
                prop_assert_eq!(ao.service_cycles, so.service_cycles, "device {}", a.index);
                prop_assert_eq!(ao.events_delivered, so.events_delivered, "device {}", a.index);
                prop_assert_eq!(ao.syscalls, so.syscalls, "device {}", a.index);
                prop_assert_eq!(ao.faults, so.faults, "device {}", a.index);
                prop_assert_eq!(ao.full_switches, so.full_switches, "device {}", a.index);
                prop_assert_eq!(ao.batch_boundaries, so.batch_boundaries, "device {}", a.index);
                prop_assert_eq!(ao.energy_joules, so.energy_joules, "device {}", a.index);
                prop_assert_eq!(so.idle_joules, 0.0, "free idling, device {}", a.index);
                // The clock itself still runs in stepped mode.
                prop_assert!(so.virtual_seconds > 0.0, "device {}", a.index);
            }
        }
        // And the reductions agree wherever both modes define the field.
        let (a, s) = (&arrival.aggregate, &stepped.aggregate);
        for (ap, sp) in [(&a.per_event, &s.per_event), (&a.batched, &s.batched)] {
            prop_assert_eq!(ap.total_cycles, sp.total_cycles);
            prop_assert_eq!(ap.switch_cycles, sp.switch_cycles);
            prop_assert_eq!(ap.events_delivered, sp.events_delivered);
            prop_assert_eq!(ap.energy.total_joules, sp.energy.total_joules);
            prop_assert_eq!(ap.energy.p50_joules, sp.energy.p50_joules);
            prop_assert_eq!(ap.energy.p99_joules, sp.energy.p99_joules);
            prop_assert_eq!(sp.idle_joules, 0.0);
        }
        prop_assert_eq!(
            a.switch_cycles_saved_percent,
            s.switch_cycles_saved_percent
        );
        prop_assert_eq!(a.battery_histograms.clone(), s.battery_histograms.clone());
    }

    #[test]
    fn stepped_reports_are_worker_count_free(
        seed in 0u64..1_000_000,
        devices in 3usize..8,
    ) {
        let sc = FleetScenario {
            time_mode: TimeMode::Stepped,
            ..scenario(seed, devices, 12, 4)
        };
        let serial = simulate(&sc, 1);
        let parallel = simulate(&sc, 8);
        prop_assert_eq!(serial.devices, parallel.devices);
        prop_assert_eq!(serial.aggregate, parallel.aggregate);
    }
}
