//! End-to-end guard for the warm-start claim `BENCH_fleet.json` commits:
//! a second process (here: a second store instance) over the same store
//! directory must materialise the scaling preset's full distinct-config
//! set without building a single firmware, and the campaign it then runs
//! must render byte-identically to the cold campaign.

use amulet_fleet::{simulate_summary_in, FirmwareStore, FleetScenario};

fn store_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("amulet-warm-start-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn warm_store_rebuilds_nothing_and_reproduces_the_cold_report() {
    let dir = store_dir();
    let mut scenario = FleetScenario::scaling(600);
    scenario.store_dir = Some(dir.clone());

    // Cold pass: every distinct config is an AFT build, persisted to disk.
    let cold = FirmwareStore::for_scenario(&scenario);
    let configs = cold.prewarm(&scenario);
    let cold_summary = simulate_summary_in(&scenario, 4, &cold);
    let cold_stats = cold.stats();
    assert!(configs > 0);
    assert_eq!(cold_stats.builds as usize, configs);
    assert_eq!(cold_stats.disk_hits, 0);
    assert!(cold_stats.bytes_written > 0);

    // Warm pass: a fresh instance over the same directory loads everything.
    let warm = FirmwareStore::for_scenario(&scenario);
    assert_eq!(warm.prewarm(&scenario), configs);
    let warm_summary = simulate_summary_in(&scenario, 4, &warm);
    let warm_stats = warm.stats();
    assert_eq!(warm_stats.builds, 0, "warm start must rebuild nothing");
    assert_eq!(warm_stats.disk_hits as usize, configs);
    assert_eq!(warm_stats.bytes_read, cold_stats.bytes_written);
    assert_eq!(warm_stats.verify_failures, 0);

    // The simulated campaign is oblivious to where its firmware came from.
    assert_eq!(cold_summary.aggregate, warm_summary.aggregate);

    // Paranoid pass: every disk image verifies byte-identical to a fresh
    // build — the check the CI store job runs at 10⁴ devices.
    let mut paranoid_scenario = scenario.clone();
    paranoid_scenario.paranoid = true;
    let paranoid = FirmwareStore::for_scenario(&paranoid_scenario);
    assert_eq!(paranoid.prewarm(&paranoid_scenario), configs);
    assert_eq!(paranoid.stats().verify_failures, 0);
    assert_eq!(paranoid.stats().builds as usize, configs);

    let _ = std::fs::remove_dir_all(&dir);
}
