//! The memory bus: physical storage, region decoding, peripheral dispatch
//! and MPU enforcement.
//!
//! Every data access and instruction fetch made by the CPU (and by the OS on
//! the application's behalf) goes through [`Bus`].  The bus decodes the
//! address into an MSP430FR5969 region, dispatches peripheral-register
//! accesses to the MPU and timer models, and consults the MPU for FRAM /
//! InfoMem accesses.  Accesses the MPU denies are reported as
//! [`BusFault`]s, which the CPU converts into application faults.
//!
//! # The access-attribute cache
//!
//! Decoding a region (a 6-way range cascade) and consulting an MPU backend
//! on **every** access is the second-hottest operation in the simulator
//! after instruction fetch.  The bus therefore keeps a flat 64 KiB
//! *attribute table* — one byte per address encoding whether a read, write
//! or instruction fetch at that address is an ordinary permitted memory
//! access — precomputed from the currently installed MPU configuration.
//! The hot paths of [`Bus::read`], [`Bus::write`] and
//! [`Bus::check_execute`] become a single table index; anything the table
//! cannot prove harmless (peripheral dispatch, denied or unmapped
//! accesses, the extended-MPU ablation) falls back to the original cascade,
//! which stays the semantic oracle — it alone produces faults, latches
//! violation flags and counts denials.
//!
//! Because the OS alternates between the OS and per-app MPU configurations
//! on every context switch, tables are **memoised per configuration**:
//! each table is keyed by a fingerprint of the MPU backend state, so a
//! switch back to an already-seen configuration re-points the bus at the
//! existing table instead of rebuilding.  Validity is tracked with the MPU
//! backends' `config_writes` counters as a cheap epoch: any register
//! write, [`Bus::install_mpu_config`] or [`Bus::reset`] moves the epoch
//! and forces a (memoised) re-resolve on the next access.  The memo
//! itself survives [`Bus::reset`], which is what lets the fleet simulator
//! reuse attribute tables across `Device::reset` runs.

use crate::mpu::{ExtendedMpu, Mpu, MpuRegisterError, PmpEntry, PmpMpu, RegionMpu, RegionSlot};
use crate::timer::Timer;
use amulet_core::addr::{Addr, AddrRange};
use amulet_core::layout::PlatformSpec;
use amulet_core::mpu_plan::MpuConfig;
use amulet_core::perm::{AccessKind, Perm};
use std::fmt;

/// Which architectural region an address decodes to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Region {
    /// Memory-mapped peripheral registers.
    Peripherals,
    /// Bootstrap-loader ROM (read-only).
    BootstrapLoader,
    /// Information memory (FRAM).
    InfoMem,
    /// SRAM.
    Sram,
    /// Main FRAM (code + data).
    Fram,
    /// Interrupt vector table.
    InterruptVectors,
    /// A hole in the memory map.
    Unmapped,
}

/// Why a bus access failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BusFaultCause {
    /// The MPU denied the access.
    MpuViolation,
    /// The extended ("advanced") MPU denied the access.
    ExtendedMpuViolation,
    /// The address decodes to a hole in the memory map.
    Unmapped,
    /// A write targeted read-only memory (bootstrap loader).
    ReadOnly,
    /// An MPU register write violated the password/lock protocol.
    MpuRegisterProtocol(MpuRegisterError),
    /// A word access at an odd address (the MSP430 requires aligned words).
    Misaligned,
}

/// A failed bus access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BusFault {
    /// The faulting address.
    pub addr: Addr,
    /// What kind of access was attempted.
    pub access: AccessKind,
    /// Why it failed.
    pub cause: BusFaultCause,
}

impl fmt::Display for BusFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {:#06x} failed: {:?}",
            self.access, self.addr, self.cause
        )
    }
}

impl std::error::Error for BusFault {}

/// Counters the bus maintains for the evaluation and the profiler.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Data reads performed.
    pub reads: u64,
    /// Data writes performed.
    pub writes: u64,
    /// Instruction-fetch permission checks performed.
    pub exec_checks: u64,
    /// Writes that landed in FRAM (more energy-expensive on real hardware).
    pub fram_writes: u64,
    /// Peripheral-register writes (MPU/timer configuration traffic).
    pub peripheral_writes: u64,
    /// Accesses denied by the MPU or extended MPU.
    pub denied: u64,
}

/// Attribute bit: a read at this address is a plain permitted memory read
/// (no peripheral dispatch, no fault possible).
const ATTR_R: u8 = 1 << 0;
/// Attribute bit: a write at this address is a plain permitted memory write.
const ATTR_W: u8 = 1 << 1;
/// Attribute bit: an instruction fetch at this address is permitted.
const ATTR_X: u8 = 1 << 2;
/// Attribute bit: a write here counts as an FRAM write in [`BusStats`].
const ATTR_FRAM_WRITE: u8 = 1 << 3;

/// Upper bound on memoised attribute tables per bus.  A device needs one
/// per installed MPU configuration (the OS plus one per app); pathological
/// reconfiguration churn (e.g. property tests driving arbitrary register
/// writes) clears the memo instead of growing without bound.
const MAX_ATTR_TABLES: usize = 16;

/// Everything the attribute table's contents depend on besides the (fixed)
/// platform memory map: the state of all three hardware MPU backends.
#[derive(Clone, PartialEq)]
struct MpuFingerprint {
    seg_enabled: bool,
    boundary1: Addr,
    boundary2: Addr,
    seg_perms: [Perm; 4],
    region_enabled: bool,
    region_slots: Vec<RegionSlot>,
    pmp_user_mode: bool,
    pmp_entries: Vec<PmpEntry>,
}

/// Which hardware MPU backend the platform's [`amulet_core::platform::MpuModel`]
/// selects as the one that polices bus traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MpuBackendKind {
    /// FR5969-style segmented MPU ([`Mpu`]).
    Segmented,
    /// Aligned-region MPU ([`RegionMpu`]).
    Region,
    /// NAPOT PMP ([`PmpMpu`]).
    Pmp,
}

/// One memoised attribute table: the MPU state it was built for, and one
/// attribute byte per address.  The fixed array size lets the hot path's
/// masked index compile without a bounds check.
#[derive(Clone)]
struct AttrTable {
    key: MpuFingerprint,
    attrs: Box<[u8; 0x1_0000]>,
}

/// Fills `range ∩ [0, 64 KiB)` of the attribute table with `value`.
fn paint(attrs: &mut [u8], range: AddrRange, value: u8) {
    let start = (range.start as usize).min(attrs.len());
    let end = (range.end as usize).min(attrs.len());
    if start < end {
        attrs[start..end].fill(value);
    }
}

/// ORs `value` into `range ∩ [0, 64 KiB)` of the attribute table.
fn paint_or(attrs: &mut [u8], range: AddrRange, value: u8) {
    let start = (range.start as usize).min(attrs.len());
    let end = (range.end as usize).min(attrs.len());
    for a in &mut attrs[start.min(end)..end] {
        *a |= value;
    }
}

/// The R/W/X attribute bits a permission grants.
fn perm_attr(p: Perm) -> u8 {
    ((p.read as u8) * ATTR_R) | ((p.write as u8) * ATTR_W) | ((p.execute as u8) * ATTR_X)
}

/// The system bus.
#[derive(Clone)]
pub struct Bus {
    platform: PlatformSpec,
    /// Physical memory.  Fixed size so masked indexing compiles without
    /// bounds checks on the hot path.
    mem: Box<[u8; 0x1_0000]>,
    /// The FR5969-style segmented MPU (the active backend on segmented
    /// platforms).  Configure it through [`Mpu::write_register`] or
    /// [`Bus::install_mpu_config`] — direct field assignment bypasses the
    /// `config_writes` epoch and leaves the access-attribute cache stale
    /// (debug builds assert against this on every access).
    pub mpu: Mpu,
    /// The Tock/Cortex-M-style region MPU (the active backend on
    /// aligned-region platforms).  Same configuration rule as [`Bus::mpu`]:
    /// go through the register interface, not direct field writes.
    pub region_mpu: RegionMpu,
    /// The RISC-V-PMP-style NAPOT backend (the active backend on NAPOT
    /// platforms).  Same configuration rule as [`Bus::mpu`].
    pub pmp: PmpMpu,
    /// Which backend the platform's MPU model selects.
    backend: MpuBackendKind,
    /// The hypothetical advanced MPU used by the §5 ablation.
    pub ext_mpu: ExtendedMpu,
    /// The benchmark timer.
    pub timer: Timer,
    /// Access counters.
    pub stats: BusStats,
    /// The attribute table for the installed MPU configuration (`None`
    /// when unresolved).  Held directly — not behind an index — so the hot
    /// path is one pointer chase.
    attr_active: Option<AttrTable>,
    /// Memoised tables for other configurations this bus has seen;
    /// fingerprints are unique across `attr_spare` ∪ `attr_active`.
    attr_spare: Vec<AttrTable>,
    /// `mpu.config_writes + region_mpu.config_writes` at the last resolve;
    /// both counters are monotone, so any MPU register traffic moves the
    /// sum and forces a re-resolve on the next access.
    attr_epoch: u64,
    /// Whether the fast path consults the attribute cache at all (the
    /// equivalence property test and the hot-path bench turn it off to
    /// exercise/measure the direct cascade).
    attr_enabled: bool,
}

impl fmt::Debug for Bus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bus")
            .field("platform", &"PlatformSpec")
            .field("mpu", &self.mpu)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Bus {
    /// Creates a bus for the given platform with zeroed memory.  The MPU
    /// backend that polices FRAM/InfoMem accesses is chosen by the
    /// platform's [`amulet_core::platform::MpuModel`].
    pub fn new(platform: PlatformSpec) -> Self {
        let (mpu, region_mpu, pmp) = Self::mpu_backends(&platform);
        let backend = Self::backend_kind(&platform);
        Bus {
            platform,
            mem: vec![0u8; 0x1_0000]
                .into_boxed_slice()
                .try_into()
                .unwrap_or_else(|_| unreachable!("memory array has the fixed size")),
            mpu,
            region_mpu,
            pmp,
            backend,
            ext_mpu: ExtendedMpu::default(),
            timer: Timer::new(),
            stats: BusStats::default(),
            attr_active: None,
            attr_spare: Vec::new(),
            attr_epoch: 0,
            attr_enabled: true,
        }
    }

    /// Builds all three MPU backends in their power-on (disabled) state
    /// for a platform — the single backend-selection rule shared by
    /// [`Bus::new`] and [`Bus::reset`].  Only the backend the platform's
    /// MPU model selects gets slots; the inactive ones stay empty.
    fn mpu_backends(platform: &PlatformSpec) -> (Mpu, RegionMpu, PmpMpu) {
        let mpu = Mpu::new(platform.fram, platform.info_mem);
        let kind = Self::backend_kind(platform);
        let (region_slots, pmp_entries) = match kind {
            MpuBackendKind::Segmented => (0, 0),
            MpuBackendKind::Region => (platform.mpu.main_segments(), 0),
            MpuBackendKind::Pmp => (0, platform.mpu.main_segments()),
        };
        let mut region_mpu = RegionMpu::new(
            region_slots,
            platform.fram,
            platform.info_mem,
            platform.sram,
        );
        if kind == MpuBackendKind::Region && platform.mpu.covers_peripherals() {
            // A peripheral-jurisdiction profile polices the full platform
            // space — which is what makes its checkless policy sound (a
            // corrupted code pointer has nowhere unpoliced to escape to).
            // The base constructor already covers FRAM/InfoMem/SRAM; the
            // extension is the rest of the shared platform range list.
            region_mpu =
                region_mpu.with_extended_jurisdiction(&platform.full_jurisdiction_ranges()[3..]);
        }
        let pmp = PmpMpu::new(pmp_entries, platform.full_jurisdiction_ranges().to_vec());
        (mpu, region_mpu, pmp)
    }

    /// Which backend polices this platform's bus traffic.
    fn backend_kind(platform: &PlatformSpec) -> MpuBackendKind {
        if platform.mpu.is_napot() {
            MpuBackendKind::Pmp
        } else if platform.mpu.is_region_based() {
            MpuBackendKind::Region
        } else {
            MpuBackendKind::Segmented
        }
    }

    /// Pure backend property: whether the active backend's deny-by-default
    /// jurisdiction extends over the **full platform space** — peripheral
    /// registers, the boot ROM and the vector table.  The single source of
    /// truth shared by the slow-path oracle ([`Bus::full_platform_policed`])
    /// and the attribute-table painter, so the fast path and the oracle
    /// cannot drift.
    fn backend_polices_full_platform(&self) -> bool {
        match self.backend {
            MpuBackendKind::Segmented => false,
            MpuBackendKind::Region => self.region_mpu.covers_full_platform(),
            MpuBackendKind::Pmp => true,
        }
    }

    /// The slow paths' gate for peripheral/boot-ROM/vector policing: the
    /// backend's full-platform jurisdiction, unless the extended-MPU
    /// ablation is active (which keeps the historical unpoliced
    /// behaviour outside FRAM/InfoMem/SRAM).
    fn full_platform_policed(&self) -> bool {
        !self.ext_mpu.enabled && self.backend_polices_full_platform()
    }

    /// Creates a bus for the MSP430FR5969.
    pub fn msp430fr5969() -> Self {
        Bus::new(PlatformSpec::msp430fr5969())
    }

    /// Returns the bus to its power-on state **in place**: memory is zeroed
    /// (the 64 KiB allocation is reused), the MPU backends return to their
    /// disabled reset values, the timer stops and the access counters
    /// clear.  Lets one bus be reused across many simulation runs.
    ///
    /// The memoised attribute tables are deliberately **kept**: their
    /// contents are a pure function of MPU state and the (unchanged)
    /// platform, so the next run re-resolves against the existing memo
    /// instead of rebuilding a table per context switch.
    pub fn reset(&mut self) {
        self.mem.fill(0);
        let (mpu, region_mpu, pmp) = Self::mpu_backends(&self.platform);
        self.mpu = mpu;
        self.region_mpu = region_mpu;
        self.pmp = pmp;
        self.ext_mpu = ExtendedMpu::default();
        self.timer = Timer::new();
        self.stats = BusStats::default();
        if let Some(active) = self.attr_active.take() {
            self.attr_spare.push(active);
        }
        self.attr_epoch = 0;
    }

    /// Turns the access-attribute cache on or off.  With the cache off,
    /// every access runs the original region-cascade + MPU-backend path;
    /// behaviour and [`BusStats`] must be identical either way (the
    /// equivalence is property-tested), so this exists only for that test
    /// and for the hot-path bench's before/after comparison.
    pub fn set_attr_cache_enabled(&mut self, enabled: bool) {
        self.attr_enabled = enabled;
    }

    /// The platform this bus models.
    pub fn platform(&self) -> &PlatformSpec {
        &self.platform
    }

    /// Decodes an address into its architectural region.
    pub fn region(&self, addr: Addr) -> Region {
        let p = &self.platform;
        if p.peripherals.contains(addr) {
            Region::Peripherals
        } else if p.bootstrap_loader.contains(addr) {
            Region::BootstrapLoader
        } else if p.info_mem.contains(addr) {
            Region::InfoMem
        } else if p.sram.contains(addr) {
            Region::Sram
        } else if p.fram.contains(addr) {
            Region::Fram
        } else if p.interrupt_vectors.contains(addr) {
            Region::InterruptVectors
        } else {
            Region::Unmapped
        }
    }

    /// The range of main FRAM.
    pub fn fram_range(&self) -> AddrRange {
        self.platform.fram
    }

    /// Fingerprint of everything the attribute table depends on.
    fn mpu_fingerprint(&self) -> MpuFingerprint {
        MpuFingerprint {
            seg_enabled: self.mpu.enabled,
            boundary1: self.mpu.boundary1,
            boundary2: self.mpu.boundary2,
            seg_perms: [
                self.mpu.seg_info,
                self.mpu.seg1,
                self.mpu.seg2,
                self.mpu.seg3,
            ],
            region_enabled: self.region_mpu.enabled,
            region_slots: self.region_mpu.slots.clone(),
            pmp_user_mode: self.pmp.user_mode,
            pmp_entries: self.pmp.entries.clone(),
        }
    }

    /// The attribute byte for `addr` under the installed MPU configuration,
    /// re-resolving the memoised table when MPU register traffic moved the
    /// epoch.  Hot path: two counter compares and one table index.
    #[inline(always)]
    fn attr(&mut self, addr: Addr) -> u8 {
        let epoch = self.mpu.config_writes + self.region_mpu.config_writes + self.pmp.config_writes;
        if self.attr_epoch != epoch || self.attr_active.is_none() {
            self.resolve_attr_table(epoch);
        }
        // The epoch only moves on register *writes*: mutating the pub MPU
        // backend fields directly (bypassing `write_register` /
        // `install_mpu_config`) would leave a stale table.  No in-tree code
        // does; debug builds verify the invariant on every access.
        #[cfg(debug_assertions)]
        if let Some(t) = &self.attr_active {
            debug_assert!(
                Self::fingerprint_matches(&t.key, &self.mpu, &self.region_mpu, &self.pmp),
                "MPU state was mutated without a register write; the \
                 attribute cache is stale (configure the MPU through \
                 write_register/install_mpu_config)"
            );
        }
        match &self.attr_active {
            Some(t) => t.attrs[(addr & 0xFFFF) as usize],
            // `resolve_attr_table` always installs a table.
            None => 0,
        }
    }

    /// Whether a memoised table's key matches the *installed* MPU state
    /// (allocation-free — this runs after every context switch).
    fn fingerprint_matches(
        key: &MpuFingerprint,
        mpu: &Mpu,
        region_mpu: &RegionMpu,
        pmp: &PmpMpu,
    ) -> bool {
        key.seg_enabled == mpu.enabled
            && key.boundary1 == mpu.boundary1
            && key.boundary2 == mpu.boundary2
            && key.seg_perms == [mpu.seg_info, mpu.seg1, mpu.seg2, mpu.seg3]
            && key.region_enabled == region_mpu.enabled
            && key.region_slots == region_mpu.slots
            && key.pmp_user_mode == pmp.user_mode
            && key.pmp_entries == pmp.entries
    }

    /// Points `attr_current` at the table matching the installed MPU
    /// configuration, building (and memoising) it on first sight.
    #[cold]
    fn resolve_attr_table(&mut self, epoch: u64) {
        // Retire the previously active table into the memo, then pull (or
        // build) the one matching the installed configuration.  The active
        // table was either taken from the memo or freshly built, so
        // fingerprints stay unique across the memo and the active slot.
        if let Some(active) = self.attr_active.take() {
            self.attr_spare.push(active);
        }
        let (mpu, region_mpu, pmp) = (&self.mpu, &self.region_mpu, &self.pmp);
        let table = match self
            .attr_spare
            .iter()
            .position(|t| Self::fingerprint_matches(&t.key, mpu, region_mpu, pmp))
        {
            Some(i) => self.attr_spare.swap_remove(i),
            None => {
                if self.attr_spare.len() >= MAX_ATTR_TABLES {
                    self.attr_spare.clear();
                }
                AttrTable {
                    key: self.mpu_fingerprint(),
                    attrs: self.build_attr_table(),
                }
            }
        };
        self.attr_active = Some(table);
        self.attr_epoch = epoch;
    }

    /// Builds the 64 KiB attribute table for the installed MPU
    /// configuration by interval painting (no per-address backend calls).
    ///
    /// Ranges are painted in reverse priority order of [`Bus::region`]'s
    /// decode cascade, so where ranges overlap the highest-priority
    /// region's attributes win — exactly the oracle's decision order.  The
    /// painter consults the active backend's own **jurisdiction** (the
    /// FR5994 profile's stops at SRAM; the Cortex-M33-class and PMP
    /// backends also police peripheral space) instead of hardcoding any
    /// particular range set.
    fn build_attr_table(&self) -> Box<[u8; 0x1_0000]> {
        let p = &self.platform;
        // Base: unmapped — nothing is a plain permitted access.
        let mut attrs: Box<[u8; 0x1_0000]> = vec![0u8; 0x1_0000]
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("attribute table has the fixed size"));
        paint(
            &mut attrs[..],
            p.interrupt_vectors,
            ATTR_R | ATTR_W | ATTR_X,
        );
        match self.backend {
            MpuBackendKind::Region | MpuBackendKind::Pmp => {
                // Region-like backend: deny-by-default over its own
                // jurisdiction when enforcing, permissive when not.  The
                // slots/entries match first-hit in slot order, so paint in
                // reverse and let earlier slots overwrite later ones.
                let (enforcing, jurisdiction, slots): (
                    bool,
                    Vec<AddrRange>,
                    Vec<(AddrRange, Perm)>,
                ) = match self.backend {
                    MpuBackendKind::Region => (
                        self.region_mpu.enabled,
                        self.region_mpu.jurisdiction().collect(),
                        self.region_mpu
                            .slots
                            .iter()
                            .filter(|s| s.enabled)
                            .map(|s| (s.range, s.perm))
                            .collect(),
                    ),
                    MpuBackendKind::Pmp => (
                        self.pmp.user_mode,
                        self.pmp.jurisdiction().collect(),
                        self.pmp
                            .entries
                            .iter()
                            .filter(|e| e.enabled)
                            .map(|e| (e.range(), e.perm))
                            .collect(),
                    ),
                    // Every new backend kind must pick its painter state
                    // explicitly; the outer arm already excludes the
                    // segmented backend.
                    MpuBackendKind::Segmented => {
                        unreachable!("segmented backend painted in its own arm")
                    }
                };
                let base = if enforcing {
                    0
                } else {
                    ATTR_R | ATTR_W | ATTR_X
                };
                for range in &jurisdiction {
                    paint(&mut attrs[..], *range, base);
                }
                if enforcing {
                    for (slot_range, perm) in slots.iter().rev() {
                        let v = perm_attr(*perm);
                        for range in &jurisdiction {
                            let clipped = AddrRange::new(
                                slot_range.start.max(range.start).min(range.end),
                                slot_range.end.clamp(range.start, range.end),
                            );
                            paint(&mut attrs[..], clipped, v);
                        }
                    }
                }
            }
            MpuBackendKind::Segmented => {
                // Segmented backend: SRAM is outside its jurisdiction
                // (always permitted); FRAM splits into three segments at
                // the two boundaries; InfoMem is the pinned segment.
                paint(&mut attrs[..], p.sram, ATTR_R | ATTR_W | ATTR_X);
                if self.mpu.enabled {
                    let f = p.fram;
                    let c1 = self.mpu.boundary1.clamp(f.start, f.end);
                    let c2 = self.mpu.boundary2.clamp(f.start, f.end).max(c1);
                    paint(
                        &mut attrs[..],
                        AddrRange::new(f.start, c1),
                        perm_attr(self.mpu.seg1),
                    );
                    paint(
                        &mut attrs[..],
                        AddrRange::new(c1, c2),
                        perm_attr(self.mpu.seg2),
                    );
                    paint(
                        &mut attrs[..],
                        AddrRange::new(c2, f.end),
                        perm_attr(self.mpu.seg3),
                    );
                    paint(&mut attrs[..], p.info_mem, perm_attr(self.mpu.seg_info));
                } else {
                    paint(&mut attrs[..], p.fram, ATTR_R | ATTR_W | ATTR_X);
                    paint(&mut attrs[..], p.info_mem, ATTR_R | ATTR_W | ATTR_X);
                }
            }
        }
        // FRAM and InfoMem writes are counted separately by the stats.
        paint_or(&mut attrs[..], p.fram, ATTR_FRAM_WRITE);
        paint_or(&mut attrs[..], p.info_mem, ATTR_FRAM_WRITE);
        // Boot ROM and peripheral space.  Peripheral reads and writes
        // always take the dispatch path, so their R/W attribute bits stay
        // clear, and a boot-ROM write is never a plain permitted store
        // (the ROM is write-protected even where a region grants W).  On
        // full-platform-jurisdiction backends the remaining bits painted
        // by the slots above are the MPU's own decision and are masked,
        // not overwritten — the same `backend_polices_full_platform` rule
        // the slow-path oracle consults; every other backend keeps the
        // historical always-readable ROM / always-fetchable peripheral
        // attributes.
        let mask = |attrs: &mut [u8; 0x1_0000], range: AddrRange, keep: u8| {
            let start = (range.start as usize).min(attrs.len());
            let end = (range.end as usize).min(attrs.len());
            for a in &mut attrs[start..end] {
                *a &= keep;
            }
        };
        if self.backend_polices_full_platform() {
            mask(&mut attrs, p.bootstrap_loader, ATTR_R | ATTR_X);
            mask(&mut attrs, p.peripherals, ATTR_X);
        } else {
            paint(&mut attrs[..], p.bootstrap_loader, ATTR_R | ATTR_X);
            paint(&mut attrs[..], p.peripherals, ATTR_X);
        }
        attrs
    }

    /// Whether the fast path may consult the attribute table for `addr`:
    /// the cache is on, the extended-MPU ablation (whose state the table
    /// does not track) is off, and the address is inside the table.
    #[inline(always)]
    fn attr_fast_path(&self, addr: Addr) -> bool {
        self.attr_enabled && !self.ext_mpu.enabled && addr < 0x1_0000
    }

    /// Fast execute-permission probe for the fused dispatch path: `true`
    /// when the attribute table is authoritative for every address
    /// `base + offset` (even, cached, no extended MPU) and grants execute
    /// at each one.  `false` means "take the exact per-instruction path",
    /// not "fault" — cache-off buses, external MPUs and slow regions all
    /// land there.  Counts nothing: the caller batches the
    /// [`BusStats::exec_checks`] accounting for exactly the components it
    /// retires.  The table is resolved once for the whole span.
    #[inline(always)]
    pub(crate) fn exec_allowed_fast<const N: usize>(
        &mut self,
        base: Addr,
        offsets: [u32; N],
    ) -> bool {
        if !self.attr_fast_path(base) {
            return false;
        }
        let epoch = self.mpu.config_writes + self.region_mpu.config_writes + self.pmp.config_writes;
        if self.attr_epoch != epoch || self.attr_active.is_none() {
            self.resolve_attr_table(epoch);
        }
        let Some(t) = &self.attr_active else {
            return false;
        };
        offsets
            .iter()
            .all(|&o| t.attrs[((base + o) & 0xFFFF) as usize] & ATTR_X != 0)
    }

    /// Installs an MPU configuration by performing the same memory-mapped
    /// register writes the OS's context-switch code issues on hardware:
    /// boundaries/access-bits/control for the segmented part, or
    /// select/base/limit per region plus control for the region part.
    pub fn install_mpu_config(&mut self, config: &MpuConfig) -> Result<(), BusFault> {
        match config {
            MpuConfig::Segmented(regs) => {
                // Trusted switch path: program the register file directly
                // (this runs twice per delivered event — the full
                // region-decode cascade per register write was measurable
                // at fleet scale).  Stats and the password/lock protocol
                // are identical to issuing each write through `Bus::write`.
                let writes = [
                    (crate::mpu::MPUSEGB1, regs.mpusegb1),
                    (crate::mpu::MPUSEGB2, regs.mpusegb2),
                    (crate::mpu::MPUSAM, regs.mpusam),
                    (crate::mpu::MPUCTL0, regs.mpuctl0),
                ];
                for (addr, value) in writes {
                    self.stats.writes += 1;
                    self.stats.peripheral_writes += 1;
                    self.mpu.write_register(addr, value).map_err(|e| BusFault {
                        addr,
                        access: AccessKind::Write,
                        cause: BusFaultCause::MpuRegisterProtocol(e),
                    })?;
                }
            }
            MpuConfig::Region(regs) => {
                // Privileged path: the register block rejects CPU-side
                // stores, so the OS programs it directly (the write
                // sequence and slot-count cap live in `apply_config`).
                // Count the same stats a `Bus::write` per register would.
                self.region_mpu.apply_config(regs);
                self.stats.writes += regs.write_count() as u64;
                self.stats.peripheral_writes += regs.write_count() as u64;
            }
            MpuConfig::Pmp(regs) => {
                // Privileged (CSR-style) path, same rule as the region
                // block: only the OS's trusted switch code programs it.
                // The machine-mode configuration is the mode toggle alone.
                self.pmp.apply_config(regs);
                self.stats.writes += regs.write_count() as u64;
                self.stats.peripheral_writes += regs.write_count() as u64;
            }
        }
        Ok(())
    }

    fn check_protection(&mut self, addr: Addr, access: AccessKind) -> Result<(), BusFault> {
        if self.ext_mpu.enabled {
            if !self.ext_mpu.check(addr, access) {
                self.stats.denied += 1;
                return Err(BusFault {
                    addr,
                    access,
                    cause: BusFaultCause::ExtendedMpuViolation,
                });
            }
            return Ok(());
        }
        let decision = match self.backend {
            MpuBackendKind::Segmented => self.mpu.check(addr, access),
            MpuBackendKind::Region => self.region_mpu.check(addr, access),
            MpuBackendKind::Pmp => self.pmp.check(addr, access),
        };
        if decision.permits() {
            Ok(())
        } else {
            self.stats.denied += 1;
            Err(BusFault {
                addr,
                access,
                cause: BusFaultCause::MpuViolation,
            })
        }
    }

    /// Reads `size` bytes (1 or 2) at `addr` as a little-endian value,
    /// enforcing region and MPU rules.
    #[inline(always)]
    pub fn read(&mut self, addr: Addr, size: u32) -> Result<u16, BusFault> {
        debug_assert!(size == 1 || size == 2);
        if size == 2 && !addr.is_multiple_of(2) {
            return Err(BusFault {
                addr,
                access: AccessKind::Read,
                cause: BusFaultCause::Misaligned,
            });
        }
        self.stats.reads += 1;
        if self.attr_fast_path(addr) && self.attr(addr) & ATTR_R != 0 {
            return Ok(self.read_raw(addr, size));
        }
        self.read_slow(addr, size)
    }

    /// The original region-cascade read path: peripheral dispatch, faults,
    /// and the MPU oracle.  Also serves every access the attribute cache
    /// cannot prove to be a plain permitted read.
    fn read_slow(&mut self, addr: Addr, size: u32) -> Result<u16, BusFault> {
        match self.region(addr) {
            Region::Unmapped => Err(BusFault {
                addr,
                access: AccessKind::Read,
                cause: BusFaultCause::Unmapped,
            }),
            Region::Peripherals => {
                // Backends whose jurisdiction covers peripheral space
                // police the access before it reaches any register file.
                if self.full_platform_policed() {
                    self.check_protection(addr, AccessKind::Read)?;
                }
                Ok(self.read_peripheral(addr))
            }
            Region::Fram | Region::InfoMem | Region::Sram => {
                self.check_protection(addr, AccessKind::Read)?;
                Ok(self.read_raw(addr, size))
            }
            Region::BootstrapLoader | Region::InterruptVectors => {
                if self.full_platform_policed() {
                    self.check_protection(addr, AccessKind::Read)?;
                }
                Ok(self.read_raw(addr, size))
            }
        }
    }

    /// Writes `size` bytes (1 or 2) at `addr`, enforcing region and MPU
    /// rules.
    #[inline(always)]
    pub fn write(&mut self, addr: Addr, size: u32, value: u16) -> Result<(), BusFault> {
        debug_assert!(size == 1 || size == 2);
        if size == 2 && !addr.is_multiple_of(2) {
            return Err(BusFault {
                addr,
                access: AccessKind::Write,
                cause: BusFaultCause::Misaligned,
            });
        }
        self.stats.writes += 1;
        if self.attr_fast_path(addr) {
            let a = self.attr(addr);
            if a & ATTR_W != 0 {
                if a & ATTR_FRAM_WRITE != 0 {
                    self.stats.fram_writes += 1;
                }
                self.write_raw(addr, size, value);
                return Ok(());
            }
        }
        self.write_slow(addr, size, value)
    }

    /// The original region-cascade write path (peripheral dispatch, faults,
    /// MPU oracle) — the fallback for everything the attribute cache cannot
    /// prove to be a plain permitted write.
    fn write_slow(&mut self, addr: Addr, size: u32, value: u16) -> Result<(), BusFault> {
        match self.region(addr) {
            Region::Unmapped => Err(BusFault {
                addr,
                access: AccessKind::Write,
                cause: BusFaultCause::Unmapped,
            }),
            Region::BootstrapLoader => {
                // On full-jurisdiction backends the MPU faults first (as
                // the hardware would); otherwise the ROM's write-protect
                // reports the failure.
                if self.full_platform_policed() {
                    self.check_protection(addr, AccessKind::Write)?;
                }
                Err(BusFault {
                    addr,
                    access: AccessKind::Write,
                    cause: BusFaultCause::ReadOnly,
                })
            }
            Region::Peripherals => {
                if self.full_platform_policed() {
                    self.check_protection(addr, AccessKind::Write)?;
                }
                self.stats.peripheral_writes += 1;
                self.write_peripheral(addr, value)
            }
            Region::Fram | Region::InfoMem => {
                self.check_protection(addr, AccessKind::Write)?;
                self.stats.fram_writes += 1;
                self.write_raw(addr, size, value);
                Ok(())
            }
            Region::Sram => {
                self.check_protection(addr, AccessKind::Write)?;
                self.write_raw(addr, size, value);
                Ok(())
            }
            Region::InterruptVectors => {
                if self.full_platform_policed() {
                    self.check_protection(addr, AccessKind::Write)?;
                }
                self.write_raw(addr, size, value);
                Ok(())
            }
        }
    }

    /// Checks whether an instruction fetch at `addr` is permitted.
    ///
    /// Instructions are word-aligned, so a fetch at an odd program counter
    /// is rejected as [`BusFaultCause::Misaligned`] — the same word-access
    /// rule [`Bus::read`] and [`Bus::write`] enforce.
    #[inline(always)]
    pub fn check_execute(&mut self, addr: Addr) -> Result<(), BusFault> {
        if !addr.is_multiple_of(2) {
            return Err(BusFault {
                addr,
                access: AccessKind::Execute,
                cause: BusFaultCause::Misaligned,
            });
        }
        self.stats.exec_checks += 1;
        if self.attr_fast_path(addr) && self.attr(addr) & ATTR_X != 0 {
            return Ok(());
        }
        self.check_execute_slow(addr)
    }

    /// The original instruction-fetch permission path (the MPU oracle).
    fn check_execute_slow(&mut self, addr: Addr) -> Result<(), BusFault> {
        match self.region(addr) {
            Region::Unmapped => Err(BusFault {
                addr,
                access: AccessKind::Execute,
                cause: BusFaultCause::Unmapped,
            }),
            Region::Fram | Region::InfoMem | Region::Sram => {
                // SRAM is outside the segmented MPU's jurisdiction (one of
                // the reasons the paper still needs software checks) but
                // inside a region MPU's; `check_protection` routes to
                // whichever backend the platform has.
                self.check_protection(addr, AccessKind::Execute)
            }
            Region::Peripherals | Region::BootstrapLoader | Region::InterruptVectors
                if self.full_platform_policed() =>
            {
                self.check_protection(addr, AccessKind::Execute)
            }
            // On every other backend the boot ROM, vectors and peripheral
            // space are outside the jurisdiction: fetches from them are
            // architecturally possible.
            _ => Ok(()),
        }
    }

    fn read_peripheral(&self, addr: Addr) -> u16 {
        if Mpu::owns_register(addr) {
            self.mpu.read_register(addr)
        } else if RegionMpu::owns_register(addr) {
            self.region_mpu.read_register(addr)
        } else if PmpMpu::owns_register(addr) {
            self.pmp.read_register(addr)
        } else if Timer::owns_register(addr) {
            self.timer.read_register(addr)
        } else {
            self.read_raw(addr & !1, 2)
        }
    }

    fn write_peripheral(&mut self, addr: Addr, value: u16) -> Result<(), BusFault> {
        if Mpu::owns_register(addr) {
            self.mpu.write_register(addr, value).map_err(|e| BusFault {
                addr,
                access: AccessKind::Write,
                cause: BusFaultCause::MpuRegisterProtocol(e),
            })
        } else if RegionMpu::owns_register(addr) || PmpMpu::owns_register(addr) {
            // The region MPU's and the PMP's register blocks are
            // privileged-only (Cortex-M PPB / RISC-V CSR style): stores
            // executed by application code fault, and only the OS's
            // `install_mpu_config` path programs them.  Without this, an
            // app on a region platform — compiled with no data-pointer
            // checks — could simply disable the MPU.
            Err(BusFault {
                addr,
                access: AccessKind::Write,
                cause: BusFaultCause::MpuRegisterProtocol(MpuRegisterError::Privileged),
            })
        } else if Timer::owns_register(addr) {
            self.timer.write_register(addr, value);
            Ok(())
        } else {
            self.write_raw(addr & !1, 2, value);
            Ok(())
        }
    }

    /// Raw read with no protection checks (loader / host tooling only).
    /// Addresses must be inside the 64 KiB space (debug builds assert;
    /// release builds mask).
    #[inline]
    pub fn read_raw(&self, addr: Addr, size: u32) -> u16 {
        debug_assert!(addr < 0x1_0000, "raw read outside the address space");
        let lo = self.mem[addr as usize & 0xFFFF] as u16;
        if size == 1 {
            lo
        } else {
            let hi = self.mem[(addr as usize + 1) & 0xFFFF] as u16;
            lo | (hi << 8)
        }
    }

    /// Raw write with no protection checks (loader / host tooling only).
    #[inline]
    pub fn write_raw(&mut self, addr: Addr, size: u32, value: u16) {
        debug_assert!(addr < 0x1_0000, "raw write outside the address space");
        self.mem[addr as usize & 0xFFFF] = (value & 0xFF) as u8;
        if size == 2 {
            self.mem[(addr as usize + 1) & 0xFFFF] = (value >> 8) as u8;
        }
    }

    /// Copies a byte slice into memory with no protection checks (used by the
    /// firmware loader).
    pub fn load_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        debug_assert!(
            (addr as usize) + bytes.len() <= 0x1_0000,
            "loaded bytes extend outside the address space"
        );
        for (i, b) in bytes.iter().enumerate() {
            self.mem[(addr as usize + i) & 0xFFFF] = *b;
        }
    }

    /// Copies bytes out of memory with no protection checks (host tooling).
    pub fn dump_bytes(&self, range: AddrRange) -> Vec<u8> {
        debug_assert!(range.end <= 0x1_0000, "dump outside the address space");
        (range.start..range.end)
            .map(|a| self.mem[a as usize & 0xFFFF])
            .collect()
    }

    /// Fills a range with a value, bypassing protection (used by the OS's
    /// `bzero`-on-switch ablation).
    pub fn fill(&mut self, range: AddrRange, value: u8) {
        debug_assert!(range.end <= 0x1_0000, "fill outside the address space");
        for a in range.start..range.end {
            self.mem[a as usize & 0xFFFF] = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpu::{MPUCTL0, MPUSAM, MPUSEGB1, MPUSEGB2};
    use crate::timer::TIMER_CONTROL;
    use crate::timer::TIMER_COUNTER;

    fn bus() -> Bus {
        Bus::msp430fr5969()
    }

    #[test]
    fn region_decoding_matches_datasheet() {
        let b = bus();
        assert_eq!(b.region(0x0200), Region::Peripherals);
        assert_eq!(b.region(0x1000), Region::BootstrapLoader);
        assert_eq!(b.region(0x1800), Region::InfoMem);
        assert_eq!(b.region(0x1C00), Region::Sram);
        assert_eq!(b.region(0x2400), Region::Unmapped);
        assert_eq!(b.region(0x4400), Region::Fram);
        assert_eq!(b.region(0xFF7F), Region::Fram);
        assert_eq!(b.region(0xFF80), Region::InterruptVectors);
    }

    #[test]
    fn sram_and_fram_read_write_roundtrip() {
        let mut b = bus();
        b.write(0x1C00, 2, 0xBEEF).unwrap();
        assert_eq!(b.read(0x1C00, 2).unwrap(), 0xBEEF);
        b.write(0x4400, 2, 0x1234).unwrap();
        assert_eq!(b.read(0x4400, 2).unwrap(), 0x1234);
        b.write(0x4403, 1, 0xAB).unwrap();
        assert_eq!(b.read(0x4403, 1).unwrap(), 0xAB);
    }

    #[test]
    fn little_endian_byte_order() {
        let mut b = bus();
        b.write(0x1C10, 2, 0x1234).unwrap();
        assert_eq!(b.read(0x1C10, 1).unwrap(), 0x34);
        assert_eq!(b.read(0x1C11, 1).unwrap(), 0x12);
    }

    #[test]
    fn unmapped_and_readonly_accesses_fault() {
        let mut b = bus();
        assert_eq!(
            b.read(0x3000, 2).unwrap_err().cause,
            BusFaultCause::Unmapped
        );
        assert_eq!(
            b.write(0x1000, 2, 1).unwrap_err().cause,
            BusFaultCause::ReadOnly
        );
        assert_eq!(
            b.write(0x4401, 2, 1).unwrap_err().cause,
            BusFaultCause::Misaligned
        );
    }

    #[test]
    fn mpu_registers_are_reachable_through_the_bus() {
        let mut b = bus();
        b.write(MPUSEGB1, 2, 0x600).unwrap();
        b.write(MPUSEGB2, 2, 0x800).unwrap();
        b.write(MPUSAM, 2, 0x0124).unwrap();
        b.write(MPUCTL0, 2, 0xA501).unwrap();
        assert!(b.mpu.enabled);
        assert_eq!(b.mpu.boundary1, 0x6000);
        assert_eq!(b.mpu.boundary2, 0x8000);
        // Bad password surfaces as a protocol fault.
        let err = b.write(MPUCTL0, 2, 0x0001).unwrap_err();
        assert!(matches!(err.cause, BusFaultCause::MpuRegisterProtocol(_)));
    }

    #[test]
    fn enabled_mpu_blocks_fram_but_not_sram() {
        let mut b = bus();
        b.write(MPUSEGB1, 2, 0x600).unwrap();
        b.write(MPUSEGB2, 2, 0x800).unwrap();
        // seg1 X, seg2 RW, seg3 none.
        b.write(MPUSAM, 2, 0x0024).unwrap();
        b.write(MPUCTL0, 2, 0xA501).unwrap();

        // Write into seg2: fine.
        b.write(0x7000, 2, 1).unwrap();
        // Write into seg1 (execute-only): MPU violation.
        assert_eq!(
            b.write(0x5000, 2, 1).unwrap_err().cause,
            BusFaultCause::MpuViolation
        );
        // Read from seg3 (no access): MPU violation.
        assert_eq!(
            b.read(0x9000, 2).unwrap_err().cause,
            BusFaultCause::MpuViolation
        );
        // SRAM is not covered by the MPU: still writable.
        b.write(0x1C00, 2, 7).unwrap();
        // Execute check in seg1 passes, in seg3 fails.
        assert!(b.check_execute(0x5000).is_ok());
        assert!(b.check_execute(0x9000).is_err());
        assert!(b.stats.denied >= 3);
    }

    #[test]
    fn misaligned_instruction_fetches_fault() {
        // Instructions are word-aligned: an odd PC is rejected with the
        // same cause word accesses use, on the cached and direct paths
        // alike, and before the check is even counted.
        let mut b = bus();
        assert!(b.check_execute(0x4400).is_ok());
        assert_eq!(
            b.check_execute(0x4401).unwrap_err().cause,
            BusFaultCause::Misaligned
        );
        let checks_counted = b.stats.exec_checks;
        assert_eq!(checks_counted, 1, "the misaligned fetch is not counted");
        let mut d = bus();
        d.set_attr_cache_enabled(false);
        assert_eq!(
            d.check_execute(0x4401).unwrap_err().cause,
            BusFaultCause::Misaligned
        );
    }

    #[test]
    fn attr_cache_disabled_bus_behaves_identically_on_the_basics() {
        let drive = |cache: bool| {
            let mut b = bus();
            b.set_attr_cache_enabled(cache);
            b.write(MPUSEGB1, 2, 0x600).unwrap();
            b.write(MPUSEGB2, 2, 0x800).unwrap();
            b.write(MPUSAM, 2, 0x0034).unwrap();
            b.write(MPUCTL0, 2, 0xA501).unwrap();
            let outcomes = (
                b.write(0x7000, 2, 7),
                b.read(0x7000, 2),
                b.write(0x5000, 2, 1).unwrap_err().cause,
                b.check_execute(0x5000),
                b.check_execute(0x9000).unwrap_err().cause,
            );
            (outcomes, b.stats)
        };
        assert_eq!(drive(true), drive(false));
    }

    #[test]
    fn timer_is_reachable_through_the_bus() {
        let mut b = bus();
        b.write(TIMER_CONTROL, 2, 0x0020).unwrap();
        b.timer.tick(100);
        let v = b.read(TIMER_COUNTER, 2).unwrap();
        assert_eq!(v, 96, "quantised to 16 cycles");
    }

    #[test]
    fn loader_bypasses_protection() {
        let mut b = bus();
        b.write(MPUSEGB1, 2, 0x600).unwrap();
        b.write(MPUSEGB2, 2, 0x800).unwrap();
        b.write(MPUSAM, 2, 0x0000).unwrap();
        b.write(MPUCTL0, 2, 0xA501).unwrap();
        b.load_bytes(0x9000, &[1, 2, 3, 4]);
        assert_eq!(
            b.dump_bytes(AddrRange::new(0x9000, 0x9004)),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn fill_zeroes_a_region() {
        let mut b = bus();
        b.load_bytes(0x1C00, &[9; 16]);
        b.fill(AddrRange::new(0x1C00, 0x1C10), 0);
        assert!(b
            .dump_bytes(AddrRange::new(0x1C00, 0x1C10))
            .iter()
            .all(|&x| x == 0));
    }

    #[test]
    fn stats_count_fram_writes_separately() {
        let mut b = bus();
        b.write(0x1C00, 2, 1).unwrap();
        b.write(0x4400, 2, 1).unwrap();
        b.write(0x4402, 2, 1).unwrap();
        assert_eq!(b.stats.writes, 3);
        assert_eq!(b.stats.fram_writes, 2);
    }

    #[test]
    fn extended_mpu_takes_precedence_when_enabled() {
        let mut b = bus();
        b.ext_mpu.enabled = true;
        b.ext_mpu.segments = vec![(AddrRange::new(0x5000, 0x6000), amulet_core::perm::Perm::RW)];
        assert!(b.write(0x5800, 2, 1).is_ok());
        assert_eq!(
            b.write(0x7000, 2, 1).unwrap_err().cause,
            BusFaultCause::ExtendedMpuViolation
        );
    }
}
